//! Quickstart: feed QB5000 a cyclic query stream and forecast the next hour.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qb5000::{JobSpan, Qb5000Config, QueryBot5000, Recorder};
use qb_forecast::{Forecaster, LinearRegression};
use qb_timeseries::{Interval, MINUTES_PER_DAY};

fn main() {
    // A shared recorder makes every pipeline stage report counters and
    // stage timings; leave it out (the default) for zero overhead.
    let recorder = Recorder::new();
    let config = Qb5000Config::builder()
        .recorder(recorder.clone())
        .build()
        .expect("default tuning is valid");
    let mut bot = QueryBot5000::new(config);

    // Simulate six days of an application with a strong day/night cycle:
    // a dashboard query that is hot during business hours and a batch
    // report that runs overnight. Constants differ on every invocation —
    // the Pre-Processor folds them into two templates.
    println!("Feeding 6 days of synthetic traffic...");
    for minute in 0..6 * MINUTES_PER_DAY {
        let hour = (minute / 60) % 24;
        let daytime = (8..20).contains(&hour);

        let dashboard_volume = if daytime { 50 } else { 5 };
        let sql = format!(
            "SELECT order_id, total FROM orders WHERE customer_id = {} AND total > {}",
            minute % 1000,
            (minute % 90) * 10
        );
        bot.ingest_weighted(minute, &sql, dashboard_volume).expect("valid SQL");

        let batch_volume = if daytime { 2 } else { 30 };
        let sql = format!(
            "SELECT SUM(total) FROM orders WHERE created_at BETWEEN {} AND {}",
            minute - 1440,
            minute
        );
        bot.ingest_weighted(minute, &sql, batch_volume).expect("valid SQL");
    }

    let now = 6 * MINUTES_PER_DAY;
    let report = bot.update_clusters(now);
    println!(
        "Pre-Processor: {} queries -> {} templates",
        bot.preprocessor().stats().total_queries,
        bot.preprocessor().num_templates()
    );
    println!(
        "Clusterer: {} clusters ({} new templates assigned this round)",
        bot.clusterer().num_clusters(),
        report.new_templates
    );

    // Train a one-hour-ahead model over the tracked clusters and predict.
    let job = bot
        .forecast_job_with(now, Interval::HOUR, /*window=1 day*/ 24, /*horizon*/ 1, JobSpan::Auto)
        .expect("clusters are tracked after update_clusters");
    let mut model = LinearRegression::default();
    let prediction = job.fit_predict(&mut model).expect("enough history");

    println!("\nForecast for the next hour (model: {}):", model.name());
    for (cluster, pred) in job.clusters.iter().zip(&prediction) {
        println!(
            "  cluster {:?} ({} templates, recent volume {:.0}): ~{:.0} queries/hour expected",
            cluster.id,
            cluster.members.len(),
            cluster.volume,
            pred
        );
    }
    println!("\nPipeline metrics collected along the way:");
    print!("{}", recorder.snapshot().render_table());

    println!("\nA self-driving DBMS would now prepare for the predicted load (see the auto_indexing example).");
}
