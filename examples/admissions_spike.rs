//! Spike prediction: why QB5000 needs kernel regression (§7.3).
//!
//! Replays ~14 months of the Admissions trace — including last year's
//! Dec 1 / Dec 15 application deadlines — and asks each model to predict
//! this year's deadline window one week ahead. Only KR (and therefore
//! HYBRID) anticipates the spike, because its prediction is a distance-
//! weighted average over historical inputs and last year's pre-deadline
//! ramp sits right next to this year's in input space (Appendix B).
//!
//! ```text
//! cargo run --release --example admissions_spike
//! ```

use qb_forecast::{Forecaster, WindowSpec};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

fn main() {
    // Nov 6 of year 1 through Dec 31 of year 2.
    let start = 310 * MINUTES_PER_DAY;
    let days = 420;
    println!("Generating {days} days of the Admissions trace (two deadline seasons)...");
    let cfg = TraceConfig { start, days, scale: 0.01, seed: 99 };

    // Aggregate the total workload into hourly buckets directly (this
    // example skips clustering to focus on the Forecaster; see the
    // bus_tracker_forecast example for the full pipeline).
    let end = start + days as i64 * MINUTES_PER_DAY;
    let hours = ((end - start) / 60) as usize;
    let mut hourly = vec![0.0f64; hours];
    for ev in Workload::Admissions.generator(cfg) {
        hourly[((ev.minute - start) / 60) as usize] += ev.count as f64;
    }
    let series = vec![hourly];

    // Test window: Nov 15 of year 2 onward.
    let test_start = (((365 + 319) * MINUTES_PER_DAY - start) / 60) as usize;
    let horizon = 168; // predict one week ahead
    let actual: Vec<f64> = series[0][test_start..].to_vec();
    let peak = actual.iter().copied().fold(0.0f64, f64::max);
    println!(
        "Deadline window: {} hours, actual peak {:.0} queries/h vs mean {:.0}",
        actual.len(),
        peak,
        actual.iter().sum::<f64>() / actual.len() as f64
    );

    let fit_roll = |model: &mut dyn Forecaster, window: usize| -> Vec<f64> {
        let spec = WindowSpec { window, horizon };
        let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
        model.fit(&train, spec).expect("enough data");
        let (_, pred) = qb_forecast::rolling_forecast(model, &series, spec, test_start);
        pred[0].clone()
    };

    let mut lr = qb_forecast::LinearRegression::default();
    let lr_pred = fit_roll(&mut lr, 24);
    let mut kr = qb_forecast::KernelRegression::default();
    // KR looks at the last three weeks of history (§6.2).
    let kr_pred = fit_roll(&mut kr, 504);

    println!("\n{:<10} {:>14} {:>18} {:>12}", "model", "predicted peak", "% of actual peak", "MSE(log)");
    for (name, pred) in [("LR", &lr_pred), ("KR", &kr_pred)] {
        let p_peak = pred.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{name:<10} {p_peak:>14.0} {:>17.0}% {:>12.2}",
            100.0 * p_peak / peak.max(1.0),
            qb_timeseries::mse_log_space(&actual, pred)
        );
    }

    // HYBRID: KR overrides when it forecasts >150% of the baseline model.
    let gamma = 1.5;
    let hybrid: Vec<f64> = lr_pred
        .iter()
        .zip(&kr_pred)
        .map(|(&e, &k)| if k > gamma * e { k } else { e })
        .collect();
    let h_peak = hybrid.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{:<10} {h_peak:>14.0} {:>17.0}% {:>12.2}   (gamma = {gamma})",
        "HYBRID",
        100.0 * h_peak / peak.max(1.0),
        qb_timeseries::mse_log_space(&actual, &hybrid)
    );
    println!("\nExpected shape: LR misses the spike; KR and HYBRID approach the actual peak.");

    let _ = Interval::HOUR; // (kept so the example shows the interval type exists)
}
