//! Continuous self-monitoring on a live forecast-driven AUTO run.
//!
//! Runs a fault-injected index-selection experiment with the monitor
//! attached: a deterministic SLO rule set watches the forecast-quality
//! band, degradation dwell, and quarantine share, while a scrape endpoint
//! serves `/metrics`, `/health`, `/alerts`, and `/dashboard` over HTTP.
//! The main thread plays Prometheus — it scrapes the endpoint while the
//! experiment runs, validates every `/metrics` body with the bundled
//! conformance checker, then explains the fired quality alert's causal
//! lineage through the flight recorder.
//!
//! ```text
//! cargo run --release --example monitored_pipeline
//! ```
//!
//! `QB_MONITOR_PORT` overrides the scrape port (default 9184). Exits
//! non-zero if no scrape succeeded, any scrape was non-conformant, or the
//! injected regression failed to fire the quality alert.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use qb5000::{
    check_prometheus, AlertChange, ControllerConfig, IndexSelectionExperiment, MonitorConfig,
    Strategy, Tracer,
};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{FaultPlan, Workload};

/// One blocking HTTP GET against the local scrape endpoint; `None` until
/// the endpoint is up (the monitor binds inside the run), or on any
/// non-200 answer.
fn http_get(port: u16, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    if !response.starts_with("HTTP/1.1 200") {
        return None;
    }
    response.split_once("\r\n\r\n").map(|(_, body)| body.to_string())
}

fn main() {
    let port: u16 = std::env::var("QB_MONITOR_PORT")
        .ok()
        .and_then(|p| p.parse().ok())
        .unwrap_or(9184);

    // Heavy deterministic corruption: malformed SQL inflates the
    // quarantine share and arrival spikes poison the histories the
    // forecaster trains on — enough to push the rolling log-space MSE
    // past the 0.5 quality band (a clean run of this config ends ≈0.21).
    let faults = FaultPlan {
        malformed_sql: 0.10,
        arrival_spike: 0.05,
        spike_factor: 40,
        ..FaultPlan::none(5)
    };
    let tracer = Tracer::enabled();
    let config = ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.06)
        .history_days(2)
        // Ten hourly rounds: the rolling MSE needs a report window to
        // settle (the gauge reads 0 for the first ~3 rounds), and the
        // stock quality band averages a 4-round window — a shorter run
        // ends before two consecutive violating rounds can accrue.
        .run_hours(10)
        .trace_scale(0.08)
        .index_budget(6)
        .build_period(60)
        .report_window(60)
        .run_start(14 * MINUTES_PER_DAY + 7 * 60)
        .seed(0xE2E)
        .threads(qb_parallel::configured_threads())
        .fault_plan(faults)
        .trace(tracer.clone())
        .monitor(MonitorConfig::with_default_slos(2, 0.5).http_port(port))
        .build()
        .expect("example config is valid");

    println!("Scrape endpoint: http://127.0.0.1:{port}/metrics (also /health /alerts /dashboard)");
    println!("Running the monitored AUTO experiment with injected faults...\n");
    let worker = std::thread::spawn(move || IndexSelectionExperiment::new(config).run());

    // Play Prometheus while the experiment runs: scrape, validate, note
    // any firing alerts the moment they appear on the wire.
    let mut scrapes = 0usize;
    let mut conformance_errors: Vec<String> = Vec::new();
    let mut wire_alert: Option<String> = None;
    while !worker.is_finished() {
        if let Some(metrics) = http_get(port, "/metrics") {
            scrapes += 1;
            let errors = check_prometheus(&metrics);
            if !errors.is_empty() && conformance_errors.is_empty() {
                conformance_errors = errors;
            }
        }
        if wire_alert.is_none() {
            if let Some(alerts) = http_get(port, "/alerts") {
                // The pre-first-round default state serves an empty body.
                if !alerts.is_empty() && alerts != "[]" {
                    wire_alert = Some(alerts);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let result = worker.join().expect("monitored run completes");

    println!("Scraped /metrics {scrapes} times while the run was live.");
    if let Some(alerts) = &wire_alert {
        println!("Caught a firing alert on the wire: {alerts}\n");
    }
    println!("Alert transition log:");
    for line in &result.alert_log {
        println!("  {line}");
    }

    // The injected regression must have tripped the quality band; walk
    // the alert back to the forecast blend that fed the violating MSE.
    let quality = result.alert_transitions.iter().find_map(|c| match c {
        AlertChange::Fired(a) if a.rule.starts_with("forecast-quality") => Some(a),
        _ => None,
    });
    match quality {
        Some(alert) => {
            let fired = alert.fired_event.expect("tracing is on");
            println!("\nWhy is {} firing?\n{}", alert.rule, tracer.view().explain(fired));
        }
        None => {
            eprintln!("FAIL: the injected regression never fired the quality alert");
            std::process::exit(1);
        }
    }

    if scrapes == 0 {
        eprintln!("FAIL: no /metrics scrape succeeded while the run was live");
        std::process::exit(1);
    }
    if !conformance_errors.is_empty() {
        eprintln!("FAIL: non-conformant /metrics exposition:");
        for e in &conformance_errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("\nAll {scrapes} scrapes were Prometheus-conformant.");
}
