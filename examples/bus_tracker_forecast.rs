//! BusTracker forecasting: the paper's §7.2 scenario end-to-end.
//!
//! Generates the synthetic BusTracker trace (rush-hour cycles, weekend
//! dips), runs it through the full Pre-Processor → Clusterer pipeline with
//! the paper's daily clustering cadence, then compares LR against the
//! LR+RNN ensemble at one-hour and one-day horizons.
//!
//! ```text
//! cargo run --release --example bus_tracker_forecast
//! ```

use qb5000::{Qb5000Config, QueryBot5000};
use qb_forecast::{Forecaster, WindowSpec};
use qb_timeseries::{mse_log_space, Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

fn main() {
    let days = 12;
    println!("Generating {days} days of the BusTracker trace...");
    let cfg = TraceConfig { start: 0, days, scale: 0.08, seed: 7 };

    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let mut next_daily = MINUTES_PER_DAY;
    for ev in Workload::BusTracker.generator(cfg) {
        if ev.minute >= next_daily {
            bot.update_clusters(next_daily);
            next_daily += MINUTES_PER_DAY;
        }
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("trace SQL parses");
    }
    let end = days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(end);

    println!(
        "{} queries -> {} templates -> {} clusters ({} tracked covering {:.1}% of volume)",
        bot.preprocessor().stats().total_queries,
        bot.preprocessor().num_templates(),
        bot.clusterer().num_clusters(),
        bot.tracked_clusters().len(),
        100.0 * bot.coverage_ratio(bot.tracked_clusters().len()),
    );

    // Build hourly cluster series and evaluate with a clean temporal split.
    let series: Vec<Vec<f64>> = bot
        .tracked_clusters()
        .iter()
        .map(|c| bot.cluster_series(c, 0, end, Interval::HOUR))
        .collect();
    let len = series[0].len();
    let test_start = len - 48; // last two days held out

    for (label, horizon) in [("1 hour", 1usize), ("1 day", 24)] {
        let spec = WindowSpec { window: 24, horizon };
        let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();

        let mut lr = qb_forecast::LinearRegression::default();
        lr.fit(&train, spec).expect("enough data");
        let (actual, lr_pred) = qb_forecast::rolling_forecast(&lr, &series, spec, test_start);

        let mut rnn = qb_forecast::Rnn::new(qb_forecast::RnnConfig {
            epochs: 30,
            ..qb_forecast::RnnConfig::default()
        });
        rnn.fit(&train, spec).expect("enough data");
        let (_, rnn_pred) = qb_forecast::rolling_forecast(&rnn, &series, spec, test_start);

        let mse = |pred: &Vec<Vec<f64>>| {
            let per: Vec<f64> = actual
                .iter()
                .zip(pred)
                .filter(|(a, _)| !a.is_empty())
                .map(|(a, p)| mse_log_space(a, p))
                .collect();
            per.iter().sum::<f64>() / per.len().max(1) as f64
        };
        let ens: Vec<Vec<f64>> = lr_pred
            .iter()
            .zip(&rnn_pred)
            .map(|(l, r)| l.iter().zip(r).map(|(a, b)| 0.5 * (a + b)).collect())
            .collect();

        println!(
            "\nhorizon {label}: MSE(log)  LR {:.3} | RNN {:.3} | ENSEMBLE {:.3}",
            mse(&lr_pred),
            mse(&rnn_pred),
            mse(&ens),
        );
        // Show a sample of the largest cluster's trajectory.
        let n = actual[0].len().min(6);
        print!("  largest cluster, last {n} test points — actual:");
        for a in &actual[0][actual[0].len() - n..] {
            print!(" {a:>6.0}");
        }
        print!("\n                                  ensemble pred:");
        for p in &ens[0][ens[0].len() - n..] {
            print!(" {p:>6.0}");
        }
        println!();
    }
    println!("\n(Per the paper: LR is competitive at 1 hour; the ensemble helps at longer horizons.)");
}
