//! Automatic index selection driven by forecasts (§7.6, Figures 11–12).
//!
//! Runs the BusTracker workload against the `qb-dbsim` engine three times —
//! forecast-driven AUTO, a fixed STATIC index set, and the AUTO-LOGICAL
//! clustering ablation — and prints the throughput/latency trajectories.
//!
//! ```text
//! cargo run --release --example auto_indexing
//! ```

use qb5000::{ControllerConfig, IndexSelectionExperiment, Strategy};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::Workload;

fn main() {
    let base = ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.15)
        .history_days(4)
        .run_hours(10)
        .trace_scale(0.04)
        .index_budget(10)
        .build_period(60)
        .report_window(60)
        .run_start(21 * MINUTES_PER_DAY)
        .seed(0x1D7)
        .threads(qb_parallel::configured_threads())
        .build()
        .expect("example config is valid");

    let mut results = Vec::new();
    for strategy in [Strategy::Static, Strategy::Auto, Strategy::AutoLogical] {
        println!("Running {}...", strategy.name());
        let result =
            IndexSelectionExperiment::new(ControllerConfig { strategy, ..base.clone() }).run();
        results.push(result);
    }

    println!("\nThroughput over the run (queries/simulated second):");
    println!("{:>6} {:>12} {:>12} {:>14}", "hour", "STATIC", "AUTO", "AUTO-LOGICAL");
    let n = results.iter().map(|r| r.samples.len()).min().unwrap_or(0);
    for i in 0..n {
        println!(
            "{:>6} {:>12.0} {:>12.0} {:>14.0}",
            results[0].samples[i].minute / 60,
            results[0].samples[i].throughput_qps,
            results[1].samples[i].throughput_qps,
            results[2].samples[i].throughput_qps,
        );
    }

    println!("\nFinal-quarter averages:");
    for r in &results {
        println!(
            "  {:<13} throughput {:>9.0} qps | p99 {:>7.3} ms | indexes built: {}",
            r.strategy.name(),
            r.final_throughput(),
            r.final_latency(),
            r.indexes.len()
        );
    }

    println!("\nIndexes AUTO chose (build minute, index):");
    for (minute, ix) in &results[1].indexes {
        println!("  t+{minute:>4}min  {ix}");
    }
    println!("\nExpected shape (paper §7.6/§7.7): AUTO starts slower than STATIC but");
    println!("catches up as forecast-driven indexes land; AUTO-LOGICAL trails AUTO.");
}
