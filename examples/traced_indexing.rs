//! Decision lineage for automatic index selection.
//!
//! Runs a short forecast-driven AUTO experiment with the flight recorder
//! enabled, then answers "why did the controller build that index?" with
//! `TraceView::explain` and writes the whole trace as Chrome trace-event
//! JSON — load it at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example traced_indexing [trace.json]
//! ```

use qb5000::{ControllerConfig, EventKind, IndexSelectionExperiment, Strategy, Tracer};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::Workload;

fn main() {
    let tracer = Tracer::enabled();
    let config = ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.05)
        .history_days(2)
        .run_hours(4)
        .trace_scale(0.02)
        .index_budget(4)
        .build_period(60)
        .report_window(60)
        .run_start(7 * MINUTES_PER_DAY)
        .seed(9)
        .threads(qb_parallel::configured_threads())
        .trace(tracer.clone())
        .build()
        .expect("example config is valid");

    println!("Running the traced AUTO experiment...");
    let result = IndexSelectionExperiment::new(config).run();
    println!(
        "  built {} indexes | final throughput {:.0} qps\n",
        result.indexes.len(),
        result.final_throughput()
    );

    let view = tracer.view();
    println!("Flight recorder retained {} events.", view.events().len());

    // Decision lineage: walk the latest index build back to its causes —
    // the horizon blend, the per-horizon forecasts and model fits, and
    // the cluster snapshot they were trained on.
    let built = view.latest(EventKind::IndexBuilt).expect("AUTO built at least one index");
    println!("\nWhy was the last index built?\n{}", view.explain(built.id));

    // Chrome trace export: one complete span per pipeline stage, plus
    // instants for every recorded decision.
    let chrome = view.to_chrome_json();
    let spans = qb5000::parse_json(&chrome)
        .expect("export is valid JSON")
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .map(<[qb5000::Json]>::len)
        .unwrap_or(0);
    let path = std::env::args().nth(1).unwrap_or_else(|| "trace.json".into());
    std::fs::write(&path, &chrome).expect("write trace file");
    println!("Wrote {spans} trace events to {path} — open it in Perfetto to see the timeline.");
}
