//! Durability integration suite (ISSUE 6).
//!
//! Three layers of evidence that crash-restart is invisible:
//!
//! * **Codec round-trips** — proptest drives every versioned record type
//!   through `encode → decode` and demands equality, both on synthetic
//!   leaf values ([`Literal`], [`ArrivalHistoryState`], [`WalRecord`]) and
//!   on [`FullState`]s exported from real pipelines fed proptest-generated
//!   workloads (which exercises every nested record: quarantine ring,
//!   clusterer state, accuracy tracker, manager, tracer ring).
//! * **WAL corruption fuzz** — a finished WAL segment is damaged with
//!   every [`StorageFaultKind`] (torn write, short write, bit flip,
//!   crash-before/after-fsync); recovery must come back up on the longest
//!   valid frame prefix and, after resuming the op list at `durable_seq`,
//!   land bit-identical to the never-corrupted run.
//! * **Crash-point matrix** — `qb_testkit::crash` sweeps workload ×
//!   [`IoPoint`] (plus nth-I/O samples) × thread width {1, 4}; every
//!   crashed-and-recovered run must match the uninterrupted reference in
//!   [`PipelineState`], `PipelineHealth`, forecasts (raw bits), and the
//!   deterministic trace stream. Failures print a `QB_CRASH_HOOK=…` repro
//!   command that `crash_point_repro` below replays.

use proptest::prelude::*;
use qb5000::durable::{
    decode_full_state, decode_history, decode_literal, decode_wal_record, encode_full_state,
    encode_history, encode_literal, encode_wal_record, FullState, WalRecord,
};
use qb5000::{
    Dec, DurabilityConfig, DurablePipeline, Enc, ForecastManager, HorizonSpec,
    Qb5000Config, QueryBot5000, Tracer,
};
use qb_forecast::LinearRegression;
use qb_sqlparse::Literal;
use qb_testkit::crash::{
    hook_from_label, materialize_ops, reference_run, run_crash_matrix, run_with_crash, CrashCase,
    DurableOp,
};
use qb_timeseries::ArrivalHistoryState;
use qb_workloads::{StorageFaultKind, StorageFaultPlan, Workload};

use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qb-durtest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Codec round-trips (proptest)
// ---------------------------------------------------------------------------

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i64>().prop_map(Literal::Integer),
        any::<f64>().prop_filter("NaN breaks PartialEq, not the codec", |f| !f.is_nan())
            .prop_map(Literal::Float),
        ".{0,40}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Boolean),
        Just(Literal::Null),
    ]
}

fn history_strategy() -> impl Strategy<Value = ArrivalHistoryState> {
    fn pairs() -> impl Strategy<Value = Vec<(i64, u64)>> {
        proptest::collection::vec((any::<i64>(), 1u64..1_000_000), 0..16).prop_map(|mut v| {
            v.sort_by_key(|&(m, _)| m);
            v.dedup_by_key(|&mut (m, _)| m);
            v
        })
    }
    (pairs(), pairs(), proptest::option::of(1i64..100_000), any::<u64>()).prop_map(
        |(raw, compacted, compacted_width_minutes, total)| ArrivalHistoryState {
            raw,
            compacted,
            compacted_width_minutes,
            total,
        },
    )
}

fn wal_record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<i64>(), any::<u64>(), ".{0,60}")
            .prop_map(|(minute, count, sql)| WalRecord::Ingest { minute, count, sql }),
        any::<i64>().prop_map(|now| WalRecord::ClusterUpdate { now }),
        Just(WalRecord::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn literal_round_trips(lit in literal_strategy()) {
        let mut e = Enc::new();
        encode_literal(&mut e, &lit);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let back = decode_literal(&mut d).expect("decode what we encoded");
        d.finish().expect("no trailing bytes");
        prop_assert_eq!(back, lit);
    }

    #[test]
    fn history_round_trips(h in history_strategy()) {
        let mut e = Enc::new();
        encode_history(&mut e, &h);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let back = decode_history(&mut d).expect("decode what we encoded");
        d.finish().expect("no trailing bytes");
        prop_assert_eq!(back, h);
    }

    #[test]
    fn wal_record_round_trips(rec in wal_record_strategy()) {
        let (kind, payload) = encode_wal_record(&rec);
        let back = decode_wal_record(kind, &payload).expect("decode what we encoded");
        prop_assert_eq!(back, rec);
    }
}

/// A tiny op grammar for driving a *real* pipeline inside proptest: the
/// exported [`FullState`] then contains realistic quarantine rings,
/// clusterer state, accuracy state, and trace events — every nested
/// record type — without hand-building any of those structs.
#[derive(Debug, Clone)]
enum MiniOp {
    Ingest { step: i64, template: usize, count: u64 },
    Update,
}

fn mini_ops() -> impl Strategy<Value = Vec<MiniOp>> {
    // ~1 update per 7 ops, the rest weighted sightings.
    let op = (0u8..7, 1i64..90, 0usize..5, 1u64..40).prop_map(|(sel, step, template, count)| {
        if sel == 6 {
            MiniOp::Update
        } else {
            MiniOp::Ingest { step, template, count }
        }
    });
    proptest::collection::vec(op, 1..60)
}

const MINI_SQL: [&str; 5] = [
    "SELECT a FROM t WHERE id = 1",
    "SELECT b FROM u WHERE id = 2",
    "INSERT INTO t VALUES (3, 'x')",
    "DELETE FROM u WHERE id = 4",
    "SELEC broken (",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// `FullState` (pipeline + manager + tracer) survives
    /// `encode_full_state → decode_full_state` for arbitrary small runs.
    #[test]
    fn full_state_round_trips(ops in mini_ops()) {
        let cfg = Qb5000Config::builder()
            .trace(Tracer::enabled())
            .build()
            .expect("default traced config is valid");
        let mut bot = QueryBot5000::new(cfg);
        let mut now = 0i64;
        for op in &ops {
            match op {
                MiniOp::Ingest { step, template, count } => {
                    now += step;
                    let _ = bot.ingest_weighted(now, MINI_SQL[*template], *count);
                }
                MiniOp::Update => {
                    bot.update_clusters(now);
                }
            }
        }
        bot.update_clusters(now + 1);

        let mut manager =
            ForecastManager::new(vec![HorizonSpec::hourly(1)], || {
                Box::new(LinearRegression::default())
            });
        let _ = manager.ensure_trained(&bot, now + 1);

        let full = FullState {
            pipeline: bot.export_state(),
            manager: Some(manager.export_state()),
            tracer: bot.tracer().export_state(),
        };
        let bytes = encode_full_state(&full);
        let back = decode_full_state(&bytes).expect("decode what we encoded");
        prop_assert_eq!(back, full);
    }
}

// ---------------------------------------------------------------------------
// WAL corruption fuzz (satellite: torn/short/bit-flip tails)
// ---------------------------------------------------------------------------

fn plain_durable_config(dir: &PathBuf) -> Qb5000Config {
    Qb5000Config::builder()
        // No snapshot inside the run: everything lives in one WAL segment.
        .durability(DurabilityConfig::new(dir).snapshot_every_rounds(u64::MAX))
        .build()
        .expect("durable config is valid")
}

/// Damages a finished WAL segment with every [`StorageFaultKind`] at
/// several seeded split points. Recovery must (a) open cleanly, (b) keep
/// only a prefix of the op list, and (c) after resuming the rest of the
/// ops, match the never-corrupted final state bit for bit.
#[test]
fn wal_corruption_recovers_to_last_valid_frame() {
    let ops: Vec<(i64, &str, u64)> = (0..40)
        .map(|k| {
            let sql = MINI_SQL[k % MINI_SQL.len()];
            (10 * k as i64, sql, 1 + (k as u64 % 7))
        })
        .collect();

    // Clean run: final state + the pristine WAL bytes.
    let clean_dir = tmp_dir("walfuzz-clean");
    let (mut clean, _) =
        DurablePipeline::open(plain_durable_config(&clean_dir)).expect("clean open");
    for (minute, sql, count) in &ops {
        let _ = clean.ingest_weighted(*minute, sql, *count);
    }
    let clean_state = clean.bot().export_state();
    drop(clean);
    let wal_file = std::fs::read_dir(&clean_dir)
        .expect("durable dir listable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "qbw"))
        .expect("exactly one WAL segment after a snapshot-free run");
    let pristine = std::fs::read(&wal_file).expect("WAL readable");
    assert!(!pristine.is_empty(), "40 ingests must have produced WAL frames");

    for kind in StorageFaultKind::ALL {
        for seed in 0..4u64 {
            let mut plan = StorageFaultPlan::new(seed);
            // Model the crash as interrupting the last portion of the file:
            // everything before `split` had been fsynced, the rest was the
            // in-flight write the fault mangles.
            let split = pristine.len() * (1 + seed as usize % 3) / 4;
            let image = plan.apply(kind, &pristine[..split], &pristine[split..]);

            let dir = tmp_dir(&format!("walfuzz-{kind:?}-{seed}"));
            std::fs::create_dir_all(&dir).expect("fuzz dir creatable");
            std::fs::write(dir.join(wal_file.file_name().expect("wal name")), &image)
                .expect("corrupted WAL writable");

            let (mut p, report) = DurablePipeline::open(plain_durable_config(&dir))
                .unwrap_or_else(|e| panic!("recovery must absorb {kind:?} (seed {seed}): {e}"));
            let resume = p.durable_seq() as usize;
            assert!(
                resume <= ops.len(),
                "{kind:?}/{seed}: recovery cannot invent frames ({resume} > {})",
                ops.len()
            );
            if kind == StorageFaultKind::CrashAfterFsync {
                assert_eq!(resume, ops.len(), "a fully-fsynced image loses nothing");
            }
            assert_eq!(
                report.frames_replayed, resume as u64,
                "{kind:?}/{seed}: every surviving frame replays"
            );
            for (minute, sql, count) in &ops[resume..] {
                let _ = p.ingest_weighted(*minute, sql, *count);
            }
            assert_eq!(
                p.bot().export_state(),
                clean_state,
                "{kind:?}/{seed}: resumed state must be bit-identical to the clean run"
            );
            drop(p);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

// ---------------------------------------------------------------------------
// Crash-point matrix (tentpole acceptance)
// ---------------------------------------------------------------------------

/// BusTracker, traced, snapshot every round: every IoPoint + nth samples,
/// widths 1 and 4, trace streams compared byte-for-byte.
#[test]
fn crash_matrix_bustracker_traced() {
    let mut case = CrashCase::new(Workload::BusTracker, 0xB05_7EC);
    case.days = 2;
    case.scale = 0.004;
    case.traced = true;
    let hooks = run_crash_matrix(&case, &[1, 8], &[1, 4], 4)
        .unwrap_or_else(|failure| panic!("{failure}"));
    assert!(hooks > qb5000::IoPoint::ALL.len() as u64, "nth samples must extend the sweep");
}

/// MOOC (evolving template population), untraced, snapshot every 2 rounds
/// so the sweep crosses snapshot-present and WAL-tail-only recoveries.
#[test]
fn crash_matrix_mooc_multi_round_snapshots() {
    let mut case = CrashCase::new(Workload::Mooc, 0x300C);
    case.days = 2;
    case.scale = 0.004;
    case.update_every = 8 * 60;
    case.snapshot_every_rounds = 2;
    run_crash_matrix(&case, &[1], &[1, 4], 3).unwrap_or_else(|failure| panic!("{failure}"));
}

/// Satellite 2 pinned down explicitly: a stream salted with
/// quarantine-bound statements keeps its rejection accounting exactly
/// across a crash-restart at WAL and snapshot boundaries — replayed
/// rejections re-derive, snapshot-covered rejections are skipped by
/// sequence number, and nothing is ever counted twice.
#[test]
fn quarantine_accounting_survives_crash_restart() {
    let mut case = CrashCase::new(Workload::BusTracker, 0x0BAD_5EED);
    case.days = 1;
    let mut ops = Vec::new();
    for k in 0..120i64 {
        let minute = k * 7;
        if k % 5 == 0 {
            ops.push(DurableOp::Ingest {
                minute,
                sql: format!("SELEC broken {k} ("),
                count: 2,
            });
        }
        ops.push(DurableOp::Ingest {
            minute,
            sql: "SELECT a FROM t WHERE id = 1".into(),
            count: 3 + (k as u64 % 4),
        });
        if k % 40 == 39 {
            ops.push(DurableOp::UpdateClusters { now: minute + 1 });
        }
    }
    ops.push(DurableOp::UpdateClusters { now: case.end() });

    let horizons = [1];
    let widths = [1];
    let (reference, _) = reference_run(&case, &ops, &horizons, &widths);
    assert!(
        reference.health.rejected_statements > 0,
        "the salted stream must actually exercise the quarantine"
    );
    for label in ["point:WalFsync", "point:SnapshotTempSynced", "point:WalRotated", "nth:40"] {
        let recovered = run_with_crash(&case, &ops, label, &horizons, &widths);
        assert_eq!(
            recovered.health, reference.health,
            "{label}: rejection accounting must not double-count across restart"
        );
        assert_eq!(recovered.state, reference.state, "{label}: full state must match");
    }
}

/// Replays one crash hook from the environment — the target of the
/// `QB_CRASH_HOOK=… cargo test …` repro line a matrix failure prints.
#[test]
#[ignore = "repro entry point; driven by QB_CRASH_HOOK / QB_SIM_* env vars"]
fn crash_point_repro() {
    let hook = std::env::var("QB_CRASH_HOOK").expect("set QB_CRASH_HOOK=point:<IoPoint>|nth:<k>");
    hook_from_label(&hook); // validate early, with a clear panic
    let seed = std::env::var("QB_SIM_SEED")
        .map(|s| {
            let s = s.trim_start_matches("0x");
            u64::from_str_radix(s, 16).or_else(|_| s.parse()).expect("QB_SIM_SEED parses")
        })
        .unwrap_or(0xB05_7EC);
    let workload = match std::env::var("QB_SIM_WORKLOAD").as_deref() {
        Ok("Admissions") => Workload::Admissions,
        Ok("MOOC") => Workload::Mooc,
        _ => Workload::BusTracker,
    };
    let mut case = CrashCase::new(workload, seed);
    if let Ok(days) = std::env::var("QB_SIM_DAYS") {
        case.days = days.parse().expect("QB_SIM_DAYS parses");
    }
    case.scale = 0.004;
    case.traced = true;
    let ops = materialize_ops(&case);
    let horizons = [1, 8];
    let widths = [1, 4];
    let (reference, _) = reference_run(&case, &ops, &horizons, &widths);
    let recovered = run_with_crash(&case, &ops, &hook, &horizons, &widths);
    if let Err(detail) = qb_testkit::crash::diff(&reference, &recovered) {
        panic!("repro confirms divergence under {hook}: {detail}");
    }
    eprintln!("hook {hook}: recovery is bit-identical");
}
