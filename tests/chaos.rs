//! Chaos suite: the full pipeline and the §7.6 closed loop under
//! deterministic fault injection.
//!
//! Escalating [`FaultPlan`]s corrupt the BusTracker trace with malformed
//! SQL, duplicate/out-of-order delivery, dropped minutes, and arrival
//! spikes. The resilience layer must (a) keep exact ingest accounting
//! (nothing silently dropped), (b) keep forecasts finite with bounded
//! cluster counts, (c) degrade a poisoned model instead of panicking, and
//! (d) still let AUTO index selection beat the no-index baseline at the
//! acceptance corruption level (5 % malformed / 2 % duplicates / 1 %
//! out-of-order — `FaultPlan::with_intensity(seed, 1.0)`).

use qb5000::{
    ControllerConfig, ForecastManager, HorizonSpec, IndexSelectionExperiment, JobSpan,
    Qb5000Config, QueryBot5000, Strategy,
};
use qb_forecast::{DegradationLevel, Ensemble, RnnConfig};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{ChurnScenario, FaultPlan, FaultStats, TraceConfig, Workload, CHURN_SCENARIOS};

fn bus_trace(days: u32) -> TraceConfig {
    TraceConfig { start: 0, days, scale: 0.02, seed: 0xB5 }
}

/// Replays a faulted BusTracker trace into a fresh pipeline, returning the
/// pipeline, the injector's delivery stats, and the generated event count.
fn faulted_bot(plan: FaultPlan, days: u32) -> (QueryBot5000, FaultStats, u64) {
    let mut events = plan.inject(Workload::BusTracker.generator(bus_trace(days)));
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let mut generated = 0u64;
    for ev in events.by_ref() {
        generated += 1;
        // Rejections are quarantined and counted; the replay keeps going.
        let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    (bot, events.stats().clone(), generated)
}

#[test]
fn accounting_identity_at_acceptance_intensity() {
    // 3-day BusTracker trace at the acceptance fault mix.
    let (bot, stats, generated) = faulted_bot(FaultPlan::with_intensity(7, 1.0), 3);
    let h = bot.health();

    // Nothing is silently dropped: every delivered event was either
    // ingested or rejected into quarantine.
    assert_eq!(stats.events_out, generated);
    assert_eq!(
        h.ingested_statements + h.rejected_statements,
        generated,
        "ingested + rejected must equal generated"
    );

    // The faults actually fired, and the health report saw them.
    assert!(stats.malformed > 0 && stats.duplicated > 0 && stats.reordered > 0);
    assert!(h.rejected_statements > 0, "malformed SQL must be quarantined");
    assert!(h.reordered > 0, "backdated/delayed events must be flagged");
    assert!(h.deduplicated > 0, "duplicate delivery must be flagged");
    assert!(
        h.last_errors.iter().any(|(stage, _)| *stage == "pre-processor"),
        "quarantine exposes the pre-processor's last error"
    );

    // Quarantine keeps evidence of what was rejected.
    let q = bot.preprocessor().quarantine();
    assert_eq!(q.rejected_statements(), h.rejected_statements);
    assert!(q.samples().next().is_some());
}

#[test]
fn forecasts_stay_finite_under_escalating_faults() {
    for (i, intensity) in [0.5, 1.0, 2.0].into_iter().enumerate() {
        let plan = FaultPlan::with_intensity(11 + i as u64, intensity);
        let (mut bot, _, _) = faulted_bot(plan, 3);
        let now = 3 * MINUTES_PER_DAY;
        bot.update_clusters(now);
        assert!(
            bot.tracked_clusters().len() <= Qb5000Config::default().max_clusters,
            "cluster count stays bounded at intensity {intensity}"
        );
        assert!(!bot.tracked_clusters().is_empty(), "traffic still clusters");

        let mut mgr = ForecastManager::new(
            vec![HorizonSpec {
                interval: Interval::HOUR,
                window: 24,
                horizon: 1,
                train_steps: 48,
            }],
            || Box::new(qb_forecast::LinearRegression::default()),
        );
        mgr.ensure_trained(&bot, now).expect("training survives the corrupted series");
        let pred = mgr.predict(&bot, now, 0);
        assert_eq!(pred.len(), bot.tracked_clusters().len());
        assert!(
            pred.iter().all(|v| v.is_finite() && *v >= 0.0),
            "forecasts stay finite at intensity {intensity}: {pred:?}"
        );
    }
}

#[test]
fn churn_bursts_composed_with_faults_keep_the_accounting_identity() {
    // Template churn and trace corruption at once: a feature-launch burst
    // (and every other churn shape) through the acceptance fault mix must
    // preserve the exact ingest accounting and the degradation chain —
    // the same invariants the stable-population chaos cases assert.
    for (i, &scenario) in CHURN_SCENARIOS.iter().enumerate() {
        let trace = TraceConfig { start: 0, days: 3, scale: 0.02, seed: 0xB5 + i as u64 };
        let plan = FaultPlan::with_intensity(7 + i as u64, 1.0);
        let mut events = plan.inject(scenario.generator(trace, 1.5));
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        let mut generated = 0u64;
        for ev in events.by_ref() {
            generated += 1;
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        let stats = events.stats().clone();
        let h = bot.health();
        assert_eq!(stats.events_out, generated, "{scenario:?}: injector accounting");
        assert_eq!(
            h.ingested_statements + h.rejected_statements,
            generated,
            "{scenario:?}: ingested + rejected must equal generated"
        );
        assert!(
            h.rejected_statements <= stats.max_possible_rejections(),
            "{scenario:?}: quarantine exceeds what the plan corrupted"
        );

        let now = 3 * MINUTES_PER_DAY;
        bot.update_clusters(now);
        assert!(!bot.tracked_clusters().is_empty(), "{scenario:?}: traffic still clusters");
        assert!(bot.tracked_clusters().len() <= Qb5000Config::default().max_clusters);
        let mut mgr = ForecastManager::new(
            vec![HorizonSpec {
                interval: Interval::HOUR,
                window: 24,
                horizon: 1,
                train_steps: 48,
            }],
            || Box::new(qb_forecast::LinearRegression::default()),
        );
        mgr.ensure_trained(&bot, now).expect("training survives churn plus corruption");
        assert_eq!(
            mgr.degradation(0),
            Some(DegradationLevel::Full),
            "{scenario:?}: a fault-free LR fit stays on the top of the chain"
        );
        let pred = mgr.predict(&bot, now, 0);
        assert!(
            pred.iter().all(|v| v.is_finite() && *v >= 0.0),
            "{scenario:?}: forecasts stay finite: {pred:?}"
        );
    }
}

#[test]
fn poisoned_model_degrades_instead_of_panicking() {
    // Corrupted data + an optimizer forced to NaN: the ensemble must fall
    // back to its healthy member, observably, with finite predictions.
    let (mut bot, _, _) = faulted_bot(FaultPlan::with_intensity(13, 1.0), 3);
    let now = 3 * MINUTES_PER_DAY;
    bot.update_clusters(now);
    let job =
        bot.forecast_job_with(now, Interval::HOUR, 24, 1, JobSpan::Auto).expect("clusters tracked");

    let mut model = Ensemble::new(RnnConfig {
        embedding: 6,
        hidden: 6,
        epochs: 4,
        learning_rate: f64::NAN,
        ..RnnConfig::default()
    });
    let pred = job.fit_predict(&mut model).expect("fit degrades, not fails");
    assert_eq!(model.degradation(), DegradationLevel::Single);
    assert!(
        model.member_failures().iter().any(|(name, e)| *name == "RNN" && e.is_model_failure()),
        "the RNN's divergence is recorded: {:?}",
        model.member_failures()
    );
    assert!(pred.iter().all(|v| v.is_finite()), "no NaN leaks into predictions: {pred:?}");
}

fn chaos_controller_cfg(index_budget: usize) -> ControllerConfig {
    ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.06)
        .history_days(3)
        .run_hours(6)
        .trace_scale(0.08)
        .index_budget(index_budget)
        .build_period(60)
        .report_window(60)
        .run_start(14 * MINUTES_PER_DAY + 7 * 60)
        .seed(0xE2E)
        .fault_plan(FaultPlan::with_intensity(5, 1.0))
        .threads(qb_parallel::configured_threads())
        .build()
        .expect("chaos config is valid")
}

#[test]
fn auto_beats_no_index_baseline_at_5pct_corruption() {
    let auto = IndexSelectionExperiment::new(chaos_controller_cfg(6)).run();
    assert!(!auto.samples.is_empty(), "AUTO completes with samples under faults");
    assert!(!auto.indexes.is_empty(), "AUTO still builds indexes under faults");
    assert!(auto.health.rejected_statements > 0, "faults reached the pipeline");
    assert!(auto.samples.iter().all(|s| s.throughput_qps.is_finite()));

    let baseline = IndexSelectionExperiment::new(chaos_controller_cfg(0)).run();
    let mean = |r: &qb5000::ExperimentResult| {
        r.samples.iter().map(|s| s.throughput_qps).sum::<f64>() / r.samples.len() as f64
    };
    assert!(
        mean(&auto) > mean(&baseline),
        "AUTO should beat the no-index baseline under 5% corruption: {} vs {}",
        mean(&auto),
        mean(&baseline)
    );
}
