//! Cross-crate integration: pipeline series → forecasting models.
//!
//! These tests assert the *paper-shape* claims on small synthetic runs:
//! short horizons are easier than long ones, the ensemble is competitive,
//! and KR alone anticipates recurring spikes.

use qb5000::{Qb5000Config, QueryBot5000};
use qb_forecast::{Forecaster, WindowSpec};
use qb_timeseries::{mse_log_space, Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

/// Feeds a trace and returns hourly series of the tracked clusters.
fn hourly_series(workload: Workload, days: u32, scale: f64, start: i64) -> Vec<Vec<f64>> {
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let cfg = TraceConfig { start, days, scale, seed: 0xF0 };
    for ev in workload.generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    let end = start + days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(end);
    bot.tracked_clusters()
        .iter()
        .map(|c| bot.cluster_series(c, start, end, Interval::HOUR))
        .collect()
}

fn eval(model: &mut dyn Forecaster, series: &[Vec<f64>], spec: WindowSpec, test_start: usize) -> f64 {
    let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
    model.fit(&train, spec).expect("enough data");
    let (actual, pred) = qb_forecast::rolling_forecast(model, series, spec, test_start);
    let per: Vec<f64> = actual
        .iter()
        .zip(&pred)
        .filter(|(a, _)| !a.is_empty())
        .map(|(a, p)| mse_log_space(a, p))
        .collect();
    per.iter().sum::<f64>() / per.len().max(1) as f64
}

#[test]
fn lr_short_horizon_beats_long_horizon() {
    let series = hourly_series(Workload::BusTracker, 10, 0.05, 0);
    assert!(!series.is_empty());
    let len = series[0].len();
    let test_start = len - 48;
    let short = eval(
        &mut qb_forecast::LinearRegression::default(),
        &series,
        WindowSpec { window: 24, horizon: 1 },
        test_start,
    );
    let long = eval(
        &mut qb_forecast::LinearRegression::default(),
        &series,
        WindowSpec { window: 24, horizon: 72 },
        test_start,
    );
    assert!(
        short < long * 1.2,
        "1h horizon ({short:.3}) should not be clearly worse than 3d ({long:.3})"
    );
    assert!(short < 1.0, "cyclic workload should be predictable at 1h: {short:.3}");
}

#[test]
fn ensemble_competitive_with_members() {
    let series = hourly_series(Workload::BusTracker, 10, 0.05, 0);
    let len = series[0].len();
    let test_start = len - 48;
    let spec = WindowSpec { window: 24, horizon: 24 };

    let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
    let mut lr = qb_forecast::LinearRegression::default();
    lr.fit(&train, spec).unwrap();
    let mut rnn = qb_forecast::Rnn::new(qb_forecast::RnnConfig {
        epochs: 25,
        hidden: 12,
        embedding: 10,
        ..qb_forecast::RnnConfig::default()
    });
    rnn.fit(&train, spec).unwrap();

    let (actual, lr_pred) = qb_forecast::rolling_forecast(&lr, &series, spec, test_start);
    let (_, rnn_pred) = qb_forecast::rolling_forecast(&rnn, &series, spec, test_start);
    let mse_of = |pred: &Vec<Vec<f64>>| {
        let per: Vec<f64> = actual
            .iter()
            .zip(pred)
            .filter(|(a, _)| !a.is_empty())
            .map(|(a, p)| mse_log_space(a, p))
            .collect();
        per.iter().sum::<f64>() / per.len().max(1) as f64
    };
    let ens: Vec<Vec<f64>> = lr_pred
        .iter()
        .zip(&rnn_pred)
        .map(|(l, r)| l.iter().zip(r).map(|(a, b)| 0.5 * (a + b)).collect())
        .collect();
    let (m_lr, m_rnn, m_ens) = (mse_of(&lr_pred), mse_of(&rnn_pred), mse_of(&ens));
    // §7.2: the ensemble "never has the worst performance".
    assert!(
        m_ens <= m_lr.max(m_rnn) + 0.05,
        "ensemble {m_ens:.3} vs LR {m_lr:.3} / RNN {m_rnn:.3}"
    );
}

#[test]
fn kr_predicts_annual_admissions_spike_lr_does_not() {
    // ~14 months covering two deadline seasons, aggregated hourly without
    // clustering (keeps the test fast; the spike lives in the total).
    let start = 310 * MINUTES_PER_DAY;
    let days = 420u32;
    let cfg = TraceConfig { start, days, scale: 0.004, seed: 0xAD };
    let end = start + days as i64 * MINUTES_PER_DAY;
    let hours = ((end - start) / 60) as usize;
    let mut hourly = vec![0.0f64; hours];
    for ev in Workload::Admissions.generator(cfg) {
        hourly[((ev.minute - start) / 60) as usize] += ev.count as f64;
    }
    let series = vec![hourly];
    let test_start = (((365 + 319) * MINUTES_PER_DAY - start) / 60) as usize;
    let horizon = 168;

    let actual: Vec<f64> = series[0][test_start..].to_vec();
    let actual_peak = actual.iter().copied().fold(0.0f64, f64::max);

    let roll = |model: &mut dyn Forecaster, window: usize| -> Vec<f64> {
        let spec = WindowSpec { window, horizon };
        let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
        model.fit(&train, spec).expect("enough data");
        qb_forecast::rolling_forecast(model, &series, spec, test_start).1[0].clone()
    };
    let lr_peak = roll(&mut qb_forecast::LinearRegression::default(), 24)
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    let kr_peak = roll(&mut qb_forecast::KernelRegression::default(), 504)
        .iter()
        .copied()
        .fold(0.0f64, f64::max);

    assert!(
        kr_peak > actual_peak * 0.5,
        "KR should approach the spike: {kr_peak:.0} vs actual {actual_peak:.0}"
    );
    assert!(
        kr_peak > lr_peak * 1.5,
        "KR ({kr_peak:.0}) must beat LR ({lr_peak:.0}) at spike anticipation"
    );
}
