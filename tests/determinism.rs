//! End-to-end determinism of the parallel train/score engine.
//!
//! The hard requirement of the worker-pool work: forecasts computed on a
//! multi-threaded pool must be **bit-identical** to the sequential path.
//! Each fit is self-contained (models seed their own RNGs from config),
//! results join in fixed task order, and no reduction depends on
//! completion order — so thread count must be unobservable in the output.
//!
//! The `#[ignore]`d companion measures the retrain-all-horizons speedup on
//! 4 workers (run with `cargo test --release -- --ignored speedup`).

use qb5000::{ForecastManager, HorizonSpec, Qb5000Config, QueryBot5000, Recorder, RetrainOutcome};
use qb_forecast::{Hybrid, HybridConfig, RnnConfig};
use qb_parallel::Parallelism;
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

/// Feeds a one-week Admissions trace slice and clusters it.
fn admissions_bot() -> QueryBot5000 {
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let cfg = TraceConfig { start: 0, days: 7, scale: 0.02, seed: 0xD2 };
    for ev in Workload::Admissions.generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    bot.update_clusters(7 * MINUTES_PER_DAY);
    bot
}

fn quick_specs() -> Vec<HorizonSpec> {
    // Four horizons so the fan-out actually spans the 4-worker pool.
    [1usize, 6, 12, 24]
        .into_iter()
        .map(|h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: 5 * 24,
        })
        .collect()
}

/// A HYBRID factory pinned to `par` for its internal member-level joins.
fn hybrid_manager(par: Parallelism) -> ForecastManager {
    let cfg = HybridConfig {
        rnn: RnnConfig {
            epochs: 8,
            hidden: 8,
            embedding: 6,
            ..RnnConfig::default()
        },
        ..HybridConfig::default()
    };
    ForecastManager::new(quick_specs(), move || {
        let mut model = Hybrid::new(cfg.clone());
        model.set_parallelism(par);
        Box::new(model)
    })
}

/// Trains on the bot with the given pool width and returns every horizon's
/// prediction as raw bits.
fn forecast_bits(bot: &QueryBot5000, threads: usize) -> Vec<Vec<u64>> {
    let par = if threads == 1 { Parallelism::sequential() } else { Parallelism::new(threads) };
    let mut mgr = hybrid_manager(par);
    mgr.set_threads(threads);
    let now = 7 * MINUTES_PER_DAY;
    let outcome = mgr.ensure_trained(bot, now).expect("training succeeds");
    assert!(
        matches!(outcome, RetrainOutcome::Retrained { horizons: 4 }),
        "expected a full retrain, got {outcome:?}"
    );
    (0..4)
        .map(|h| mgr.predict(bot, now, h).iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn forecasts_bit_identical_across_thread_counts() {
    let bot = admissions_bot();
    let seq = forecast_bits(&bot, 1);
    let par = forecast_bits(&bot, 4);
    assert!(
        seq.iter().all(|p| !p.is_empty()),
        "sequential run produced empty predictions"
    );
    assert_eq!(seq, par, "4-worker forecasts diverged from the sequential path");
}

/// Runs ingest → cluster → train → predict with metrics on and returns the
/// deterministic subset of the collected metrics.
fn metrics_view(threads: usize) -> String {
    let recorder = Recorder::new();
    let config = Qb5000Config::builder()
        .recorder(recorder.clone())
        .build()
        .expect("default tuning is valid");
    let mut bot = QueryBot5000::new(config);
    let cfg = TraceConfig { start: 0, days: 7, scale: 0.02, seed: 0xD2 };
    for ev in Workload::Admissions.generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    bot.update_clusters(7 * MINUTES_PER_DAY);

    let par = if threads == 1 { Parallelism::sequential() } else { Parallelism::new(threads) };
    let mut mgr = hybrid_manager(par);
    mgr.set_threads(threads);
    mgr.set_recorder(&recorder);
    let now = 7 * MINUTES_PER_DAY;
    mgr.ensure_trained(&bot, now).expect("training succeeds");
    for h in 0..4 {
        let _ = mgr.predict_tracked(&bot, now, h);
    }
    recorder.snapshot().deterministic_view()
}

/// The observability layer inherits the determinism contract: counters,
/// gauge bits, and histogram event counts must not see the pool width.
/// (Durations legitimately vary and are excluded from the view.)
#[test]
fn metric_snapshots_bit_identical_across_thread_counts() {
    let seq = metrics_view(1);
    let par = metrics_view(4);
    assert!(
        seq.contains("counter preprocessor.ingested_statements"),
        "recorder saw the pipeline:\n{seq}"
    );
    assert!(seq.contains("events forecast.fit.h0"), "recorder saw the fits:\n{seq}");
    assert_eq!(seq, par, "4-worker metrics diverged from the sequential path");
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    // Thread scheduling noise across runs of the *same* width must not
    // leak into the output either.
    let bot = admissions_bot();
    let a = forecast_bits(&bot, 4);
    let b = forecast_bits(&bot, 4);
    assert_eq!(a, b, "two 4-worker runs disagreed");
}

/// Acceptance measurement: retraining all horizons on 4 workers should be
/// at least ~2x faster than sequential. Timing-sensitive, so not part of
/// the default suite; run explicitly with `--ignored` on a quiet machine.
#[test]
#[ignore = "wall-clock measurement; run explicitly"]
fn retrain_speedup_on_four_workers() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!("skipping speedup measurement: only {cores} core(s) available");
        return;
    }
    let bot = admissions_bot();
    let now = 7 * MINUTES_PER_DAY;
    let time = |threads: usize| {
        let par =
            if threads == 1 { Parallelism::sequential() } else { Parallelism::new(threads) };
        let mut mgr = hybrid_manager(par);
        mgr.set_threads(threads);
        let start = std::time::Instant::now();
        mgr.ensure_trained(&bot, now).expect("training succeeds");
        start.elapsed()
    };
    // Warm-up evens out allocator/page-cache effects.
    let _ = time(1);
    let seq = time(1);
    let par = time(4);
    let speedup = seq.as_secs_f64() / par.as_secs_f64().max(1e-9);
    println!("sequential {seq:?}  4-workers {par:?}  speedup {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "expected >=2x retrain speedup on 4 workers, measured {speedup:.2}x ({seq:?} vs {par:?})"
    );
}
