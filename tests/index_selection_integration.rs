//! Cross-crate integration: the §7.6 closed loop over the dbsim engine.

use qb5000::{ControllerConfig, IndexSelectionExperiment, Strategy};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::Workload;

fn base(workload: Workload) -> ControllerConfig {
    ControllerConfig::builder()
        .workload(workload)
        .strategy(Strategy::Auto)
        .db_scale(0.06)
        .history_days(2)
        .run_hours(6)
        .trace_scale(0.08)
        .index_budget(6)
        .build_period(60)
        .report_window(60)
        // Start mid-morning so the 6-hour run covers the daytime load.
        .run_start(match workload {
            Workload::Admissions => 325 * MINUTES_PER_DAY + 7 * 60,
            _ => 14 * MINUTES_PER_DAY + 7 * 60,
        })
        .seed(0xE2E)
        .threads(qb_parallel::configured_threads())
        .build()
        .expect("integration config is valid")
}

#[test]
fn auto_improves_over_the_run_bustracker() {
    let result =
        IndexSelectionExperiment::new(base(Workload::BusTracker)).run();
    assert!(result.total_queries > 1_000);
    assert!(!result.indexes.is_empty(), "AUTO should build indexes");
    let first = result.samples.first().expect("samples").throughput_qps;
    assert!(
        result.final_throughput() > first,
        "throughput should improve from {first} to {}",
        result.final_throughput()
    );
}

#[test]
fn auto_improves_over_the_run_admissions() {
    let result =
        IndexSelectionExperiment::new(base(Workload::Admissions)).run();
    assert!(!result.indexes.is_empty());
    let first = result.samples.first().expect("samples").throughput_qps;
    assert!(result.final_throughput() > first);
}

#[test]
fn static_and_auto_both_beat_no_indexes() {
    // A zero-budget run is the no-index baseline.
    let mut no_ix = base(Workload::BusTracker);
    no_ix.index_budget = 0;
    let baseline = IndexSelectionExperiment::new(no_ix).run();

    let auto = IndexSelectionExperiment::new(base(Workload::BusTracker)).run();
    let static_ = IndexSelectionExperiment::new(ControllerConfig {
        strategy: Strategy::Static,
        ..base(Workload::BusTracker)
    })
    .run();

    assert!(baseline.indexes.is_empty());
    assert!(
        auto.final_throughput() > baseline.final_throughput(),
        "AUTO {} vs baseline {}",
        auto.final_throughput(),
        baseline.final_throughput()
    );
    assert!(static_.final_throughput() > baseline.final_throughput());
}

#[test]
fn static_builds_everything_up_front_auto_incrementally() {
    let auto = IndexSelectionExperiment::new(base(Workload::BusTracker)).run();
    let static_ = IndexSelectionExperiment::new(ControllerConfig {
        strategy: Strategy::Static,
        ..base(Workload::BusTracker)
    })
    .run();
    assert!(static_.indexes.iter().all(|(t, _)| *t == 0));
    assert!(
        auto.indexes.iter().any(|(t, _)| *t > 0),
        "AUTO should keep building during the run: {:?}",
        auto.indexes
    );
}

#[test]
fn latency_drops_as_indexes_land() {
    let result = IndexSelectionExperiment::new(base(Workload::BusTracker)).run();
    let first_p99 = result.samples.first().expect("samples").p99_latency_ms;
    let final_p99 = result.final_latency();
    assert!(
        final_p99 < first_p99,
        "p99 should drop: {first_p99} -> {final_p99}"
    );
}

#[test]
fn auto_logical_completes_with_indexes_or_not() {
    // The ablation must at least run the full loop; whether it finds good
    // indexes depends on the logical clusters (usually worse than AUTO).
    let result = IndexSelectionExperiment::new(ControllerConfig {
        strategy: Strategy::AutoLogical,
        ..base(Workload::BusTracker)
    })
    .run();
    assert!(result.total_queries > 1_000);
    assert!(!result.samples.is_empty());
}
