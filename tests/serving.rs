//! Integration tests for the lock-free forecast serving layer.
//!
//! The contracts under test:
//!
//! * pipeline publications — cluster updates and manager retrains land in
//!   reader-visible snapshots at monotonically increasing epochs;
//! * served curves are **bit-identical** to a synchronous
//!   [`QueryBot5000::forecast_job_with`] pull at the same cut;
//! * concurrent readers racing a publisher only ever observe fully
//!   consistent snapshots (no torn reads, no stale epoch mixing);
//! * incremental patch publication is semantically equal to a full
//!   republish of the same logical state (property-based);
//! * the serving epoch is part of the pipeline health report and the
//!   metrics renderings.

use proptest::prelude::*;
use qb5000::{
    ForecastManager, ForecastQuery, ForecastService, ForecastSnapshot, HorizonMeta, HorizonSpec,
    JobSpan, Membership, Outcome, Qb5000Config, QueryBot5000, Recorder, RetrainOutcome,
    SnapshotBuilder, StalenessBound,
};
use qb_forecast::{Forecaster, LinearRegression};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{TraceConfig, Workload};

fn lr_factory() -> Box<dyn Forecaster> {
    Box::new(LinearRegression::default())
}

/// A pipeline with serving enabled, warmed with a deterministic trace.
fn served_bot(days: u32, service: &ForecastService) -> (QueryBot5000, i64) {
    let config = Qb5000Config::builder()
        .serve(service.clone())
        .build()
        .expect("default config is valid");
    let mut bot = QueryBot5000::new(config);
    let cfg = TraceConfig { start: 0, days, scale: 0.05, seed: 0xF0 };
    for ev in Workload::BusTracker.generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    let now = days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(now);
    (bot, now)
}

#[test]
fn pipeline_publications_reach_readers() {
    let service = ForecastService::for_specs(&[HorizonSpec::hourly(1), HorizonSpec::hourly(12)]);
    let reader = service.reader();
    assert_eq!(service.epoch(), 0, "nothing published before the pipeline runs");

    let (bot, now) = served_bot(8, &service);
    // The cluster update published a membership patch.
    let after_update = service.epoch();
    assert!(after_update >= 1, "update_clusters publishes membership");
    let tracked = bot.tracked_clusters();
    assert!(!tracked.is_empty());
    // Tracked but unfit: routing is visible, curves are not.
    let t = tracked[0].members[0].0;
    let unfit = reader.answer(&ForecastQuery::template(t, 0));
    assert_eq!(unfit.epoch, after_update);
    assert!(matches!(unfit.outcome, Outcome::NotFound(qb5000::Missing::Unfit { .. })));

    // A manager retrain publishes per-horizon curves.
    let mut mgr =
        ForecastManager::new(vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)], lr_factory);
    let outcome = mgr.ensure_trained(&bot, now).expect("training succeeds");
    assert!(matches!(outcome, RetrainOutcome::Retrained { horizons: 2 }));
    assert!(service.epoch() > after_update, "retrain publishes a fresh epoch");

    let answer = reader.answer(&ForecastQuery::cluster(tracked[0].id.0, 0));
    let curve = answer.curve().expect("fitted cluster serves a curve");
    assert_eq!(curve.start, now + 60, "1-hour horizon starts one bucket past the cut");
    assert!(curve.values[0].is_finite());
    // Health summary rode along with the publication.
    let snap = reader.snapshot();
    assert_eq!(snap.health.models.len(), 2);
    assert!(snap.health.models.iter().all(|m| m.as_deref() == Some("LR")));

    // Staleness bounds: the snapshot admits a satisfied bound and rejects
    // an unsatisfiable one.
    let fresh = ForecastQuery::cluster(tracked[0].id.0, 0)
        .with_staleness(StalenessBound::AtLeastEpoch(service.epoch()));
    assert!(reader.answer(&fresh).curve().is_some());
    let impossible = ForecastQuery::cluster(tracked[0].id.0, 0)
        .with_staleness(StalenessBound::AtLeastEpoch(service.epoch() + 1));
    assert!(matches!(reader.answer(&impossible).outcome, Outcome::TooStale));
}

#[test]
fn served_curves_bit_identical_to_synchronous_pull() {
    let specs = vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)];
    let service = ForecastService::for_specs(&specs);
    let reader = service.reader();
    let (bot, now) = served_bot(8, &service);
    let mut mgr = ForecastManager::new(specs.clone(), lr_factory);
    mgr.ensure_trained(&bot, now).expect("training succeeds");
    let epoch = service.epoch();

    for (i, spec) in specs.iter().enumerate() {
        // The synchronous pull the serving layer replaces: fit the same
        // model shape on the same span and predict at the same cut.
        let job = bot
            .forecast_job_with(
                now,
                spec.interval,
                spec.window,
                spec.horizon,
                JobSpan::Steps(spec.train_steps),
            )
            .expect("enough history");
        let pulled = job.fit_predict(&mut LinearRegression::default()).expect("fit succeeds");
        for (ci, cluster) in job.clusters.iter().enumerate() {
            let answer = reader.answer(&ForecastQuery::cluster(cluster.id.0, i));
            assert_eq!(answer.epoch, epoch, "reader answers at the published epoch");
            let curve = answer.curve().unwrap_or_else(|| {
                panic!("cluster {} horizon {i} must serve a curve", cluster.id.0)
            });
            assert_eq!(
                curve.values[0].to_bits(),
                pulled[ci].to_bits(),
                "served curve for cluster {} horizon {i} must be bit-identical \
                 to the synchronous pull",
                cluster.id.0
            );
        }
    }
}

#[test]
fn concurrent_readers_race_publisher_without_torn_reads() {
    let service = ForecastService::with_horizons(vec![HorizonMeta {
        interval_minutes: 60,
        window: 24,
        horizon: 1,
    }]);
    const PUBLISHES: u64 = 1_500;
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let reader = service.reader();
            std::thread::spawn(move || {
                let mut last_epoch = 0;
                let mut reads = 0u64;
                // Race the publisher until the final epoch is visible —
                // every reader is guaranteed to observe at least that one.
                while last_epoch < PUBLISHES {
                    let answer = reader.answer(&ForecastQuery::cluster(7, 0));
                    // Epochs never go backwards through one handle.
                    assert!(answer.epoch >= last_epoch, "epoch regressed");
                    last_epoch = answer.epoch;
                    if answer.epoch == 0 {
                        continue;
                    }
                    // Every published snapshot encodes its epoch into both
                    // the timestamp and the curve value; a torn read would
                    // mix them.
                    assert_eq!(answer.built_at as u64, answer.epoch, "built_at torn");
                    let curve = answer.curve().expect("published snapshots carry the curve");
                    assert_eq!(curve.values[0] as u64, answer.epoch, "curve torn");
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    let cluster = [qb5000::ClusterInfo {
        id: qb_clusterer::ClusterId(7),
        volume: 10.0,
        members: vec![qb_preprocessor::TemplateId(1)],
    }];
    for epoch in 1..=PUBLISHES {
        let published = service.publish_forecasts(
            epoch as i64,
            &cluster,
            &[(0, vec![epoch as f64])],
            None,
            &[],
        );
        assert_eq!(published, epoch);
    }
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(total >= 4, "every reader observes at least the final snapshot");
    assert_eq!(service.epoch(), PUBLISHES);
}

#[test]
fn cold_start_serves_unrouted_templates_without_touching_warm_curves() {
    let specs = vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)];
    // The same trace through two pipelines: cold start on and off. A
    // template that first appears after the cluster update is unrouted at
    // retrain time — the classic new-template gap.
    let run = |cold: bool| {
        let recorder = Recorder::new();
        let mut service = ForecastService::for_specs(&specs);
        service.set_recorder(&recorder);
        let reader = service.reader();
        let config = Qb5000Config::builder()
            .serve(service.clone())
            .recorder(recorder.clone())
            .cold_start(cold)
            .build()
            .expect("config is valid");
        let mut bot = QueryBot5000::new(config);
        let cfg = TraceConfig { start: 0, days: 8, scale: 0.05, seed: 0xF0 };
        for ev in Workload::BusTracker.generator(cfg) {
            bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
        }
        let now = 8 * MINUTES_PER_DAY;
        bot.update_clusters(now);
        for m in 0..10 {
            bot.ingest_weighted(
                now - 10 + m,
                "SELECT flags FROM launch_gates WHERE feature = 7",
                1,
            )
            .expect("valid SQL");
        }
        let new_template = bot
            .preprocessor()
            .templates()
            .last()
            .expect("template table is non-empty")
            .id;
        assert!(
            !bot.tracked_clusters().iter().any(|c| c.members.contains(&new_template)),
            "the late template must not be routed yet"
        );
        let mut mgr = ForecastManager::new(specs.clone(), lr_factory);
        mgr.set_recorder(&recorder);
        mgr.ensure_trained(&bot, now).expect("training succeeds");
        (reader, recorder, new_template, bot)
    };

    let (cold_reader, cold_recorder, template, cold_bot) = run(true);
    let (warm_reader, warm_recorder, warm_template, _warm_bot) = run(false);
    assert_eq!(template, warm_template, "identical traces produce identical template tables");

    // Off: the unrouted template is Missing, as before this feature.
    let off = warm_reader.answer(&ForecastQuery::template(template.0, 0));
    assert!(matches!(off.outcome, Outcome::NotFound(qb5000::Missing::Template(_))));
    assert_eq!(warm_recorder.snapshot().counters.get("forecast.cold_starts"), Some(&0));

    // On: the same query gets a typed seeded estimate with provenance.
    let on = cold_reader.answer(&ForecastQuery::template(template.0, 0));
    let origin = on.cold_origin().expect("cold start answers with provenance");
    let curve = on.any_curve().expect("seeded curve served");
    assert!(curve.values[0].is_finite() && curve.values[0] >= 0.0);
    assert!(on.curve().is_none(), "warm accessor stays warm-only");
    // The population prior is the mean predicted per-member rate; a
    // cluster-share seed scales its cluster's forecast. Either way the
    // estimate derives from this round's warm predictions.
    match origin {
        qb5000::ColdStartOrigin::ClusterShare { share, .. } => assert!(share > 0.0),
        qb5000::ColdStartOrigin::PopulationPrior => {}
    }
    let snap = cold_recorder.snapshot();
    assert!(snap.counters.get("forecast.cold_starts").copied().unwrap_or(0) >= 1);
    assert!(snap.gauges.get("serve.cold_starts").copied().unwrap_or(0.0) >= 1.0);

    // Warm curves are bit-identical whether or not cold start is on.
    for (i, _) in specs.iter().enumerate() {
        for cluster in cold_bot.tracked_clusters() {
            let a = cold_reader.answer(&ForecastQuery::cluster(cluster.id.0, i));
            let b = warm_reader.answer(&ForecastQuery::cluster(cluster.id.0, i));
            match (a.curve(), b.curve()) {
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.values[0].to_bits(), cb.values[0].to_bits());
                    assert_eq!((ca.start, ca.interval_minutes), (cb.start, cb.interval_minutes));
                }
                (None, None) => {}
                other => panic!("warm availability diverged: {other:?}"),
            }
        }
    }
}

#[test]
fn serve_epoch_lands_in_health_and_metrics() {
    let recorder = Recorder::new();
    let mut service = ForecastService::for_specs(&[HorizonSpec::hourly(1)]);
    service.set_recorder(&recorder);
    let config = Qb5000Config::builder()
        .serve(service.clone())
        .recorder(recorder.clone())
        .build()
        .expect("config is valid");
    let mut bot = QueryBot5000::new(config);
    let cfg = TraceConfig { start: 0, days: 2, scale: 0.05, seed: 0xF0 };
    for ev in Workload::BusTracker.generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    bot.update_clusters(2 * MINUTES_PER_DAY);

    let health = bot.health();
    assert_eq!(health.serve_epoch, Some(service.epoch()), "health mirrors the served epoch");
    assert!(service.epoch() >= 1);

    // A pipeline without serving reports no epoch.
    let plain = QueryBot5000::new(Qb5000Config::default());
    assert_eq!(plain.health().serve_epoch, None);

    // The gauges reach both metric renderings.
    let snap = recorder.snapshot();
    assert_eq!(snap.gauges.get("serve.epoch"), Some(&(service.epoch() as f64)));
    assert!(snap.render_table().contains("serve.epoch"), "table rendering carries the gauge");
    assert!(
        snap.to_prometheus().contains("serve_epoch"),
        "prometheus rendering carries the gauge"
    );
    assert!(
        snap.histograms.get("serve.publish").map(|h| h.count).unwrap_or(0) >= 1,
        "publications are timed"
    );
}

// --- Property: incremental patches equal a full republish. -----------------

/// A plain-Rust model of the reconcile semantics: per cluster, its volume,
/// members, and surviving per-slot curve values.
#[derive(Clone, Debug)]
struct ModelEntry {
    cluster: u64,
    volume: f64,
    members: Vec<u32>,
    curves: Vec<Option<f64>>,
}

#[derive(Clone, Debug)]
enum Op {
    /// Reconcile the tracked set to these `(cluster, volume, members)` rows.
    Members(Vec<(u64, u32, Vec<u32>)>),
    /// Patch one cluster's curve at one slot.
    Curve { cluster: u64, slot: usize, value: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(
            (0u64..4, 0u32..100, proptest::collection::vec(0u32..8, 0..3)),
            0..4
        )
        .prop_map(|mut rows| {
            // Cluster ids are unique in any real tracked set.
            rows.sort_by_key(|r| r.0);
            rows.dedup_by_key(|r| r.0);
            Op::Members(rows)
        }),
        (0u64..4, 0usize..2, 0u32..1000)
            .prop_map(|(cluster, slot, value)| Op::Curve { cluster, slot, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn incremental_publish_equals_full_republish(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let horizons = vec![
            HorizonMeta { interval_minutes: 60, window: 24, horizon: 1 },
            HorizonMeta { interval_minutes: 60, window: 24, horizon: 12 },
        ];
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut current = ForecastSnapshot::empty(horizons.clone());
        for (i, op) in ops.iter().enumerate() {
            let at = i as i64;
            let epoch = current.epoch() + 1;
            match op {
                Op::Members(rows) => {
                    let members: Vec<Membership> = rows
                        .iter()
                        .map(|(c, v, m)| Membership {
                            cluster: *c,
                            volume: f64::from(*v),
                            members: m.clone(),
                        })
                        .collect();
                    current =
                        current.rebuild().built_at(at).set_membership(&members).build(epoch);
                    // Model the reconcile: same members keep curves, changed
                    // members (or a fresh cluster) start unfit.
                    model = rows
                        .iter()
                        .map(|(c, v, m)| {
                            let curves = model
                                .iter()
                                .find(|e| e.cluster == *c && e.members == *m)
                                .map_or(vec![None; 2], |e| e.curves.clone());
                            ModelEntry {
                                cluster: *c,
                                volume: f64::from(*v),
                                members: m.clone(),
                                curves,
                            }
                        })
                        .collect();
                }
                Op::Curve { cluster, slot, value } => {
                    let curve = qb5000::Curve {
                        start: at * 60,
                        interval_minutes: 60,
                        values: vec![f64::from(*value)],
                    };
                    current =
                        current.rebuild().built_at(at).set_curve(*cluster, *slot, curve).build(epoch);
                    if let Some(e) = model.iter_mut().find(|e| e.cluster == *cluster) {
                        e.curves[*slot] = Some(f64::from(*value));
                    }
                }
            }
        }

        // Full republish of the modeled final state, in one build.
        let memberships: Vec<Membership> = model
            .iter()
            .map(|e| Membership { cluster: e.cluster, volume: e.volume, members: e.members.clone() })
            .collect();
        let mut b = SnapshotBuilder::fresh(current.built_at, horizons)
            .set_membership(&memberships);
        for e in &model {
            for (slot, v) in e.curves.iter().enumerate() {
                if let Some(v) = v {
                    // Reconstruct each curve exactly as the surviving patch
                    // wrote it (the curve's own timestamps ride along).
                    let incremental = current
                        .cluster(e.cluster)
                        .and_then(|c| c.curves[slot].clone())
                        .expect("model says this curve survived");
                    prop_assert_eq!(incremental.values[0], *v, "model diverged from snapshot");
                    b = b.set_curve(e.cluster, slot, (*incremental).clone());
                }
            }
        }
        let full = b.build(current.epoch());
        prop_assert_eq!(&full, &current, "incremental patches must equal a full republish");
    }
}
