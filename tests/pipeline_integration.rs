//! Cross-crate integration: trace generators → Pre-Processor → Clusterer.

use qb5000::{Qb5000Config, QueryBot5000};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

fn feed(workload: Workload, days: u32, scale: f64, start: i64) -> QueryBot5000 {
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let cfg = TraceConfig { start, days, scale, seed: 0xFEED };
    let mut next_daily = start + MINUTES_PER_DAY;
    for ev in workload.generator(cfg) {
        if ev.minute >= next_daily {
            bot.update_clusters(next_daily);
            next_daily += MINUTES_PER_DAY;
        }
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("trace SQL parses");
    }
    bot.update_clusters(start + days as i64 * MINUTES_PER_DAY);
    bot
}

#[test]
fn bustracker_full_pipeline() {
    let bot = feed(Workload::BusTracker, 3, 0.05, 0);
    let stats = bot.preprocessor().stats();
    assert!(stats.total_queries > 3_000);
    // Millions→templates→clusters reduction (Table 2's shape).
    let templates = bot.preprocessor().num_templates();
    assert!((10..=40).contains(&templates), "{templates} templates");
    let clusters = bot.clusterer().num_clusters();
    assert!(clusters <= templates);
    assert!(clusters >= 2, "cyclic + steady patterns should separate");
    // SELECT-dominated mix.
    assert!(stats.selects as f64 / stats.total_queries as f64 > 0.9);
    // The tracked clusters cover nearly all the volume.
    assert!(bot.coverage_ratio(5) > 0.9);
}

#[test]
fn rush_hour_visible_in_largest_cluster_series() {
    let bot = feed(Workload::BusTracker, 3, 0.05, 0);
    let largest = bot.tracked_clusters()[0].clone();
    let series = bot.cluster_series(&largest, 0, 3 * MINUTES_PER_DAY, Interval::HOUR);
    // Compare 8am vs 3am averaged across the three days.
    let rush: f64 = (0..3).map(|d| series[d * 24 + 8]).sum();
    let night: f64 = (0..3).map(|d| series[d * 24 + 3]).sum();
    assert!(rush > night * 2.0, "rush {rush} vs night {night}");
}

#[test]
fn mooc_evolution_creates_new_clusters() {
    // Span the MOOC feature release (day 30): template count must grow.
    let bot_early = feed(Workload::Mooc, 3, 0.05, 0);
    let early_templates = bot_early.preprocessor().num_templates();
    let bot_late = feed(Workload::Mooc, 33, 0.02, 0);
    let late_templates = bot_late.preprocessor().num_templates();
    assert!(
        late_templates > early_templates + 5,
        "evolution: {early_templates} -> {late_templates}"
    );
}

#[test]
fn noisy_workload_phase_switches_trigger_reclustering() {
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let cfg = TraceConfig { start: 0, days: 2, scale: 0.2, seed: 5 };
    for ev in qb_workloads::noisy::generator(cfg) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid");
    }
    // 48h = 4+ phases; each switch floods unseen templates.
    assert!(bot.shift_triggers >= 3, "got {} shift triggers", bot.shift_triggers);
}

#[test]
fn deterministic_replay() {
    let a = feed(Workload::BusTracker, 2, 0.05, 0);
    let b = feed(Workload::BusTracker, 2, 0.05, 0);
    assert_eq!(a.preprocessor().stats(), b.preprocessor().stats());
    assert_eq!(a.clusterer().num_clusters(), b.clusterer().num_clusters());
}

#[test]
fn admissions_deadline_growth_in_series() {
    // Trace the final two weeks before Dec 1 (day 334).
    let start = 320 * MINUTES_PER_DAY;
    let bot = feed(Workload::Admissions, 14, 0.05, start);
    let largest = bot.tracked_clusters()[0].clone();
    let series =
        bot.cluster_series(&largest, start, start + 14 * MINUTES_PER_DAY, Interval::DAY);
    let first_week: f64 = series[..7].iter().sum();
    let second_week: f64 = series[7..].iter().sum();
    assert!(
        second_week > first_week * 1.5,
        "deadline growth: {first_week} -> {second_week}"
    );
}
