//! Continuous self-monitoring over the §7.6 closed loop: SLO alerts fire
//! on fault-injected regressions, carry trace lineage, and the alert
//! stream is bit-identical across worker-pool widths.

use qb5000::{
    AlertChange, AlertCondition, AlertRule, ControllerConfig, IndexSelectionExperiment,
    MonitorConfig, Severity, Strategy, Tracer,
};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{FaultPlan, Workload};

/// A short monitored AUTO run. The fault plan (when given) corrupts the
/// trace with malformed SQL and arrival spikes — a quarantine-share
/// regression and a forecast-accuracy regression in one plan.
fn monitored_cfg(
    threads: usize,
    fault: Option<FaultPlan>,
    monitor: MonitorConfig,
    tracer: Tracer,
) -> ControllerConfig {
    let mut b = ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.06)
        .history_days(2)
        .run_hours(6)
        .trace_scale(0.08)
        .index_budget(6)
        .build_period(60)
        .report_window(60)
        .run_start(14 * MINUTES_PER_DAY + 7 * 60)
        .seed(0xE2E)
        .threads(threads)
        .trace(tracer)
        .monitor(monitor);
    if let Some(plan) = fault {
        b = b.fault_plan(plan);
    }
    b.build().expect("monitoring config is valid")
}

/// Heavy deterministic corruption: enough malformed SQL to push the
/// quarantine share well past the rule threshold, plus arrival spikes
/// that poison the arrival-rate histories the forecaster trains on.
fn heavy_faults() -> FaultPlan {
    FaultPlan {
        malformed_sql: 0.10,
        arrival_spike: 0.05,
        spike_factor: 40,
        ..FaultPlan::none(5)
    }
}

/// Deterministic rules only (counters + gauges — no wall-time
/// quantiles), so the alert stream is comparable across runs and widths.
fn regression_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::new(
            "quarantine-spike",
            Severity::Warning,
            AlertCondition::RatioAbove {
                numerator: "preprocessor.quarantined_statements".into(),
                denominator: "preprocessor.ingested_statements".into(),
                above: 0.02,
                window: 4,
            },
        ),
        AlertRule::new(
            "forecast-quality-h0",
            Severity::Critical,
            // Calibrated between the clean run's rolling MSE (≈0.21 by
            // run end) and the spiked run's (≈0.99).
            AlertCondition::GaugeAbove {
                gauge: "forecast.mse.h0".into(),
                above: 0.5,
                window: 2,
            },
        )
        .for_rounds(2)
        .clear_rounds(2),
    ]
}

#[test]
fn faulted_regression_fires_typed_alert_with_trace_lineage() {
    let tracer = Tracer::enabled();
    let cfg = monitored_cfg(
        1,
        Some(heavy_faults()),
        MonitorConfig::default().rules(regression_rules()),
        tracer.clone(),
    );
    let result = IndexSelectionExperiment::new(cfg).run();

    // The corruption produced typed Fired transitions.
    let fired: Vec<_> = result
        .alert_transitions
        .iter()
        .filter_map(|c| match c {
            AlertChange::Fired(a) => Some(a),
            AlertChange::Resolved { .. } => None,
        })
        .collect();
    assert!(
        fired.iter().any(|a| a.rule == "quarantine-spike"),
        "10% malformed SQL must trip the quarantine-share rule: {:?}",
        result.alert_log
    );
    let quality = fired
        .iter()
        .find(|a| a.rule == "forecast-quality-h0")
        .expect("spiked arrivals must trip the forecast-quality band");
    assert_eq!(quality.severity, Severity::Critical);

    // Lineage: the firing event explains back through the round's
    // forecast-blend evidence.
    let fired_event = quality.fired_event.expect("tracing is on");
    let view = tracer.view();
    let lineage = view.explain(fired_event);
    assert!(lineage.contains("AlertFired"), "{lineage}");
    assert!(
        lineage.contains("ForecastBlended"),
        "alert evidence must reach the blend event:\n{lineage}"
    );

    // The log and the typed stream describe the same transitions.
    assert_eq!(result.alert_log.len(), result.alert_transitions.len());
    assert!(result.alert_log.iter().any(|l| l.contains("fired rule=forecast-quality-h0")));

    // Firing alerts surface through the health report too.
    for alert in &result.health.active_alerts {
        assert!(fired.iter().any(|f| f.rule == alert.rule));
    }
}

#[test]
fn clean_run_fires_no_regression_alerts() {
    let cfg = monitored_cfg(
        1,
        None,
        MonitorConfig::default().rules(regression_rules()),
        Tracer::disabled(),
    );
    let result = IndexSelectionExperiment::new(cfg).run();
    assert!(
        result.alert_log.iter().all(|l| !l.contains("rule=quarantine-spike")),
        "a clean replay must not trip the quarantine rule: {:?}",
        result.alert_log
    );
    // Monitoring forced metrics on even though the config left the
    // recorder disabled.
    assert!(result.metrics.counters["controller.rounds"] > 0);
}

#[test]
fn alert_stream_is_bit_identical_across_widths() {
    let run = |threads: usize| {
        let cfg = monitored_cfg(
            threads,
            Some(heavy_faults()),
            MonitorConfig::default().rules(regression_rules()),
            Tracer::disabled(),
        );
        IndexSelectionExperiment::new(cfg).run()
    };
    let one = run(1);
    let four = run(4);
    assert!(!one.alert_log.is_empty(), "the faulted run must produce transitions");
    assert_eq!(
        one.alert_log, four.alert_log,
        "alert transition log must be bit-identical at widths 1 and 4"
    );
    assert_eq!(one.alert_transitions, four.alert_transitions);
    assert_eq!(one.health.active_alerts, four.health.active_alerts);
    // Same-width re-run is byte-stable too.
    let again = run(4);
    assert_eq!(four.alert_log, again.alert_log);
}
