//! Property-based tests for arrival-history storage and metrics.

use proptest::prelude::*;
use qb_timeseries::{
    expm1_series, log1p_series, mse_log_space, ArrivalHistory, CompactionPolicy, Interval,
};

fn records() -> impl Strategy<Value = Vec<(i64, u64)>> {
    proptest::collection::vec((0i64..50_000, 1u64..100), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total count equals the sum of recorded counts, before and after
    /// compaction, at any read interval.
    #[test]
    fn totals_survive_compaction(recs in records(), retention in 10i64..5_000) {
        let mut h = ArrivalHistory::new();
        let expected: u64 = recs.iter().map(|(_, c)| c).sum();
        for (t, c) in &recs {
            h.record(*t, *c);
        }
        prop_assert_eq!(h.total(), expected);
        prop_assert_eq!(h.count_range(0, 50_000), expected);

        let policy = CompactionPolicy { raw_retention: retention, compacted_interval: Interval::HOUR };
        h.compact(&policy);
        prop_assert_eq!(h.total(), expected);
        prop_assert_eq!(h.count_range(0, 50_000), expected);

        // Hourly reads agree with the raw series summed per hour.
        let dense = h.dense_series(0, 50_000, Interval::HOUR);
        prop_assert!((dense.iter().sum::<f64>() - expected as f64).abs() < 1e-6);
    }

    /// Dense series at any interval sums to the range total.
    #[test]
    fn dense_series_sums_match(recs in records(), k in 1i64..500) {
        let mut h = ArrivalHistory::new();
        for (t, c) in &recs {
            h.record(*t, *c);
        }
        let interval = Interval::minutes(k);
        let dense = h.dense_series(0, 50_000, interval);
        let total: f64 = dense.iter().sum();
        prop_assert!((total - h.count_range(0, 50_000) as f64).abs() < 1e-6);
    }

    /// Compaction never loses first/last-seen ordering information beyond
    /// bucket granularity.
    #[test]
    fn compaction_preserves_bounds(recs in records()) {
        prop_assume!(!recs.is_empty());
        let mut h = ArrivalHistory::new();
        for (t, c) in &recs {
            h.record(*t, *c);
        }
        let first = h.first_seen().expect("non-empty");
        let last = h.last_seen().expect("non-empty");
        let policy = CompactionPolicy { raw_retention: 60, compacted_interval: Interval::HOUR };
        h.compact(&policy);
        let f2 = h.first_seen().expect("still non-empty");
        let l2 = h.last_seen().expect("still non-empty");
        // Bucket starts may round down by at most an hour.
        prop_assert!(f2 <= first && first - f2 < 60);
        prop_assert!(l2 <= last && last - l2 < 60);
    }

    /// Interval bucket arithmetic: every timestamp lands in exactly the
    /// bucket whose start it floors to.
    #[test]
    fn bucket_start_consistent(t in -100_000i64..100_000, k in 1i64..10_000) {
        let iv = Interval::minutes(k);
        let b = iv.bucket_start(t);
        prop_assert!(b <= t);
        prop_assert!(t - b < k);
        prop_assert_eq!(b.rem_euclid(k), 0, "bucket start aligned to the interval");
        prop_assert_eq!(iv.bucket_start(b), b, "bucket starts are fixed points");
    }

    /// log1p/expm1 are inverse on the valid domain.
    #[test]
    fn log_roundtrip(xs in proptest::collection::vec(0.0f64..1e9, 1..50)) {
        let back = expm1_series(&log1p_series(&xs));
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
    }

    /// MSE in log space is non-negative and zero iff series are equal.
    #[test]
    fn mse_nonnegative(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
        prop_assert_eq!(mse_log_space(&xs, &xs), 0.0);
        let shifted: Vec<f64> = xs.iter().map(|v| v + 1.0).collect();
        prop_assert!(mse_log_space(&xs, &shifted) > 0.0);
    }
}
