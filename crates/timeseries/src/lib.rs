//! # qb-timeseries
//!
//! Arrival-rate time-series infrastructure shared by the QB5000 components:
//!
//! * [`ArrivalHistory`] — the per-template arrival-rate record the
//!   Pre-Processor maintains (§4): per-minute counts with tiered compaction
//!   of stale intervals into coarser buckets to bound storage.
//! * [`Interval`] — prediction/recording interval arithmetic (§6.2). The
//!   base recording granularity is one minute, the finest prediction level
//!   QB5000 offers.
//! * [`metrics`] — the paper's accuracy metric (MSE in log space) plus the
//!   `ln(1+x)` transform pair applied around model training (§7.2).
//!
//! Timestamps throughout the workspace are [`Minute`]s: whole minutes since
//! the simulation epoch. Real deployments would anchor this to wall-clock
//! time; the synthetic traces define their own epoch.

pub mod history;
pub mod metrics;

pub use history::{ArrivalHistory, ArrivalHistoryState, CompactionPolicy};
pub use metrics::{expm1_series, log1p_series, mse, mse_log_space};

/// Whole minutes since the simulation epoch.
pub type Minute = i64;

/// Minutes per hour.
pub const MINUTES_PER_HOUR: i64 = 60;
/// Minutes per day.
pub const MINUTES_PER_DAY: i64 = 24 * MINUTES_PER_HOUR;
/// Minutes per (7-day) week.
pub const MINUTES_PER_WEEK: i64 = 7 * MINUTES_PER_DAY;

/// A recording/prediction interval: a positive whole number of minutes.
///
/// QB5000 records at one-minute granularity and lets the planning module
/// aggregate into coarser intervals for training (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval(i64);

impl Interval {
    pub const MINUTE: Interval = Interval(1);
    pub const TEN_MINUTES: Interval = Interval(10);
    pub const TWENTY_MINUTES: Interval = Interval(20);
    pub const THIRTY_MINUTES: Interval = Interval(30);
    pub const HOUR: Interval = Interval(MINUTES_PER_HOUR);
    pub const TWO_HOURS: Interval = Interval(2 * MINUTES_PER_HOUR);
    pub const DAY: Interval = Interval(MINUTES_PER_DAY);

    /// Creates an interval of `minutes` minutes.
    ///
    /// # Panics
    /// Panics if `minutes <= 0`.
    pub fn minutes(minutes: i64) -> Self {
        assert!(minutes > 0, "Interval must be positive, got {minutes}");
        Interval(minutes)
    }

    /// Length in minutes.
    #[inline]
    pub fn as_minutes(self) -> i64 {
        self.0
    }

    /// Floors a timestamp to the start of its bucket.
    #[inline]
    pub fn bucket_start(self, t: Minute) -> Minute {
        t.div_euclid(self.0) * self.0
    }

    /// Number of buckets covering the half-open range `[start, end)`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn buckets_between(self, start: Minute, end: Minute) -> usize {
        assert!(end >= start, "buckets_between: end before start");
        (((end - start) + self.0 - 1) / self.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_start_floors() {
        let h = Interval::HOUR;
        assert_eq!(h.bucket_start(0), 0);
        assert_eq!(h.bucket_start(59), 0);
        assert_eq!(h.bucket_start(60), 60);
        assert_eq!(h.bucket_start(61), 60);
    }

    #[test]
    fn bucket_start_negative_timestamps() {
        let h = Interval::HOUR;
        assert_eq!(h.bucket_start(-1), -60);
        assert_eq!(h.bucket_start(-60), -60);
        assert_eq!(h.bucket_start(-61), -120);
    }

    #[test]
    fn buckets_between_counts() {
        let h = Interval::HOUR;
        assert_eq!(h.buckets_between(0, 0), 0);
        assert_eq!(h.buckets_between(0, 1), 1);
        assert_eq!(h.buckets_between(0, 60), 1);
        assert_eq!(h.buckets_between(0, 61), 2);
        assert_eq!(h.buckets_between(0, MINUTES_PER_DAY), 24);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_panics() {
        Interval::minutes(0);
    }
}
