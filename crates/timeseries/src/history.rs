//! Per-template arrival-rate history with tiered compaction.

use std::collections::BTreeMap;

use crate::{Interval, Minute};

/// How stale records are aggregated into coarser buckets (§4: "the system
/// aggregates stale arrival rate records into larger intervals to save
/// storage space").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Records older than this many minutes (relative to the newest record)
    /// are rolled up.
    pub raw_retention: i64,
    /// Bucket width stale records are rolled up into.
    pub compacted_interval: Interval,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        // Keep one month of raw per-minute data — the Clusterer's feature
        // window (§5.1) — and roll anything older into hourly buckets, which
        // is all the KR spike model needs (§6.2).
        Self {
            raw_retention: 31 * crate::MINUTES_PER_DAY,
            compacted_interval: Interval::HOUR,
        }
    }
}

/// The exported durable state of one [`ArrivalHistory`], produced by
/// [`ArrivalHistory::export_state`] and consumed by
/// [`ArrivalHistory::from_state`]. All plain data: the durability layer
/// owns the byte encoding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalHistoryState {
    /// Sorted recent per-minute `(minute, count)` pairs.
    pub raw: Vec<(Minute, u64)>,
    /// Sorted compacted `(bucket_start, count)` pairs.
    pub compacted: Vec<(Minute, u64)>,
    /// Width of compacted buckets in minutes (`None` before the first
    /// compaction).
    pub compacted_width_minutes: Option<i64>,
    /// Total arrivals ever recorded.
    pub total: u64,
}

/// The arrival-rate record for one query template.
///
/// Counts are stored sparsely: a minute with no arrivals occupies no space.
/// Two tiers exist — a raw per-minute map for the recent window, and a
/// compacted map at [`CompactionPolicy::compacted_interval`] granularity for
/// older history. Reads transparently merge both tiers.
#[derive(Debug, Clone, Default)]
pub struct ArrivalHistory {
    /// Recent per-minute counts, keyed by minute.
    raw: BTreeMap<Minute, u64>,
    /// Compacted counts, keyed by bucket start.
    compacted: BTreeMap<Minute, u64>,
    /// Width of compacted buckets (None until first compaction).
    compacted_width: Option<Interval>,
    /// Total arrivals ever recorded.
    total: u64,
}

impl ArrivalHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` arrivals at minute `t`.
    pub fn record(&mut self, t: Minute, count: u64) {
        if count == 0 {
            return;
        }
        *self.raw.entry(t).or_insert(0) += count;
        self.total += count;
    }

    /// Total arrivals ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Timestamp of the most recent arrival (raw or compacted bucket start).
    pub fn last_seen(&self) -> Option<Minute> {
        let raw_last = self.raw.keys().next_back().copied();
        let compacted_last = self.compacted.keys().next_back().copied();
        raw_last.max(compacted_last)
    }

    /// Timestamp of the earliest arrival.
    pub fn first_seen(&self) -> Option<Minute> {
        let raw_first = self.raw.keys().next().copied();
        let compacted_first = self.compacted.keys().next().copied();
        match (raw_first, compacted_first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of stored entries across both tiers (the storage footprint
    /// measured in Table 4).
    pub fn stored_entries(&self) -> usize {
        self.raw.len() + self.compacted.len()
    }

    /// Rolls raw records older than the policy's retention window into
    /// compacted buckets. Idempotent; call periodically.
    ///
    /// If the policy's interval differs from the width used by earlier
    /// compactions, existing buckets are re-bucketed into the new width
    /// first. Widening is exact (counts move to the enclosing coarser
    /// bucket); narrowing keeps each count at its bucket-start minute,
    /// since sub-bucket resolution was already discarded.
    pub fn compact(&mut self, policy: &CompactionPolicy) {
        if self.compacted_width.is_some_and(|w| w != policy.compacted_interval) {
            let old = std::mem::take(&mut self.compacted);
            for (t, c) in old {
                let bucket = policy.compacted_interval.bucket_start(t);
                *self.compacted.entry(bucket).or_insert(0) += c;
            }
            self.compacted_width = Some(policy.compacted_interval);
        }
        let Some(newest) = self.raw.keys().next_back().copied() else { return };
        let cutoff = newest - policy.raw_retention;
        self.compacted_width = Some(policy.compacted_interval);
        // Split off everything strictly older than the cutoff.
        let keep = self.raw.split_off(&cutoff);
        let stale = std::mem::replace(&mut self.raw, keep);
        for (t, c) in stale {
            let bucket = policy.compacted_interval.bucket_start(t);
            *self.compacted.entry(bucket).or_insert(0) += c;
        }
    }

    /// Total arrivals in the half-open range `[start, end)`.
    pub fn count_range(&self, start: Minute, end: Minute) -> u64 {
        let raw: u64 = self.raw.range(start..end).map(|(_, c)| *c).sum();
        // Compacted buckets are attributed entirely to their start minute;
        // after compaction sub-bucket resolution is intentionally lost.
        let compacted: u64 = self.compacted.range(start..end).map(|(_, c)| *c).sum();
        raw + compacted
    }

    /// Materializes a dense series over `[start, end)` aggregated at
    /// `interval`, one `f64` per bucket, zeros where nothing arrived.
    ///
    /// This is the input format the Clusterer and Forecaster consume.
    pub fn dense_series(&self, start: Minute, end: Minute, interval: Interval) -> Vec<f64> {
        let n = interval.buckets_between(start, end);
        let mut out = vec![0.0; n];
        let step = interval.as_minutes();
        for (&t, &c) in self.raw.range(start..end) {
            let idx = ((t - start) / step) as usize;
            out[idx] += c as f64;
        }
        for (&t, &c) in self.compacted.range(start..end) {
            let idx = ((t - start) / step) as usize;
            out[idx] += c as f64;
        }
        out
    }

    /// Exports the full record for durable serialization. Maps become
    /// sorted `(key, count)` pairs, so identical histories export to
    /// identical state — the basis of byte-stable snapshots.
    pub fn export_state(&self) -> ArrivalHistoryState {
        ArrivalHistoryState {
            raw: self.raw.iter().map(|(&t, &c)| (t, c)).collect(),
            compacted: self.compacted.iter().map(|(&t, &c)| (t, c)).collect(),
            compacted_width_minutes: self.compacted_width.map(Interval::as_minutes),
            total: self.total,
        }
    }

    /// Rebuilds a history from exported state. Inverse of
    /// [`ArrivalHistory::export_state`]: the rebuilt record answers every
    /// read identically and continues recording/compacting from the same
    /// point.
    pub fn from_state(state: ArrivalHistoryState) -> Self {
        Self {
            raw: state.raw.into_iter().collect(),
            compacted: state.compacted.into_iter().collect(),
            compacted_width: state
                .compacted_width_minutes
                .filter(|&m| m > 0)
                .map(Interval::minutes),
            total: state.total,
        }
    }

    /// Arrival counts sampled at specific minutes, aggregated at `interval`
    /// around each sample (the Clusterer's feature extraction: "QB5000 takes
    /// the subset of values at those timestamps to form a vector", §5.1).
    pub fn sample_at(&self, timestamps: &[Minute], interval: Interval) -> Vec<f64> {
        timestamps
            .iter()
            .map(|&t| {
                let b = interval.bucket_start(t);
                self.count_range(b, b + interval.as_minutes()) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut h = ArrivalHistory::new();
        h.record(5, 3);
        h.record(5, 2);
        h.record(9, 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count_range(0, 10), 6);
        assert_eq!(h.count_range(6, 10), 1);
    }

    #[test]
    fn zero_count_is_noop() {
        let mut h = ArrivalHistory::new();
        h.record(1, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.stored_entries(), 0);
    }

    #[test]
    fn first_last_seen() {
        let mut h = ArrivalHistory::new();
        assert_eq!(h.last_seen(), None);
        h.record(10, 1);
        h.record(100, 1);
        assert_eq!(h.first_seen(), Some(10));
        assert_eq!(h.last_seen(), Some(100));
    }

    #[test]
    fn dense_series_minute_buckets() {
        let mut h = ArrivalHistory::new();
        h.record(0, 2);
        h.record(2, 5);
        assert_eq!(h.dense_series(0, 4, Interval::MINUTE), vec![2.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn dense_series_hour_aggregation() {
        let mut h = ArrivalHistory::new();
        h.record(0, 1);
        h.record(59, 2);
        h.record(60, 4);
        assert_eq!(h.dense_series(0, 120, Interval::HOUR), vec![3.0, 4.0]);
    }

    #[test]
    fn compaction_preserves_totals_and_hourly_series() {
        let mut h = ArrivalHistory::new();
        // Two days of arrivals, one per minute.
        for t in 0..2 * crate::MINUTES_PER_DAY {
            h.record(t, 1);
        }
        let before_hourly =
            h.dense_series(0, 2 * crate::MINUTES_PER_DAY, Interval::HOUR);
        let policy = CompactionPolicy {
            raw_retention: crate::MINUTES_PER_DAY,
            compacted_interval: Interval::HOUR,
        };
        let entries_before = h.stored_entries();
        h.compact(&policy);
        assert!(h.stored_entries() < entries_before, "compaction should shrink storage");
        assert_eq!(h.total(), 2 * crate::MINUTES_PER_DAY as u64);
        // Hourly reads are unaffected because the compacted width divides
        // the read interval.
        let after_hourly = h.dense_series(0, 2 * crate::MINUTES_PER_DAY, Interval::HOUR);
        assert_eq!(before_hourly, after_hourly);
    }

    #[test]
    fn compaction_is_idempotent() {
        let mut h = ArrivalHistory::new();
        for t in 0..3000 {
            h.record(t, 2);
        }
        let policy =
            CompactionPolicy { raw_retention: 100, compacted_interval: Interval::HOUR };
        h.compact(&policy);
        let entries = h.stored_entries();
        let series = h.dense_series(0, 3000, Interval::HOUR);
        h.compact(&policy);
        assert_eq!(h.stored_entries(), entries);
        assert_eq!(h.dense_series(0, 3000, Interval::HOUR), series);
    }

    /// Regression: changing the compaction interval mid-stream used to
    /// panic. Widening must re-bucket existing compacted entries exactly.
    #[test]
    fn interval_change_rebuckets_instead_of_panicking() {
        let mut h = ArrivalHistory::new();
        for t in 0..3 * crate::MINUTES_PER_DAY {
            h.record(t, 1);
        }
        let daily_before = h.dense_series(0, 3 * crate::MINUTES_PER_DAY, Interval::DAY);
        let hourly = CompactionPolicy {
            raw_retention: crate::MINUTES_PER_DAY,
            compacted_interval: Interval::HOUR,
        };
        h.compact(&hourly);
        // Operator retunes the policy to daily buckets: re-compact instead
        // of panicking. Hour starts land exactly on enclosing day buckets,
        // so daily reads are unchanged.
        let daily = CompactionPolicy {
            raw_retention: crate::MINUTES_PER_DAY,
            compacted_interval: Interval::DAY,
        };
        h.compact(&daily);
        assert_eq!(h.total(), 3 * crate::MINUTES_PER_DAY as u64);
        assert_eq!(h.dense_series(0, 3 * crate::MINUTES_PER_DAY, Interval::DAY), daily_before);
        // The old hourly buckets collapsed into at most one entry per day.
        assert!(h.stored_entries() <= crate::MINUTES_PER_DAY as usize + 3);
    }

    /// Narrowing the interval keeps counts at their (coarse) bucket starts
    /// — no panic, totals preserved.
    #[test]
    fn interval_narrowing_preserves_totals() {
        let mut h = ArrivalHistory::new();
        for t in 0..3000 {
            h.record(t, 2);
        }
        h.compact(&CompactionPolicy { raw_retention: 100, compacted_interval: Interval::DAY });
        h.compact(&CompactionPolicy { raw_retention: 100, compacted_interval: Interval::HOUR });
        assert_eq!(h.total(), 6000);
        assert_eq!(h.count_range(0, 3000), 6000);
    }

    #[test]
    fn sample_at_uses_bucket() {
        let mut h = ArrivalHistory::new();
        h.record(61, 7);
        h.record(62, 3);
        // Sampling any minute within the hour bucket [60,120) at hourly
        // interval returns the full bucket.
        assert_eq!(h.sample_at(&[75], Interval::HOUR), vec![10.0]);
        assert_eq!(h.sample_at(&[61], Interval::MINUTE), vec![7.0]);
        assert_eq!(h.sample_at(&[0, 61], Interval::MINUTE), vec![0.0, 7.0]);
    }

    #[test]
    fn empty_history_dense_series_is_zero() {
        let h = ArrivalHistory::new();
        assert_eq!(h.dense_series(0, 120, Interval::HOUR), vec![0.0, 0.0]);
    }

    /// Round-trip through every hourly-or-coarser read path: a compacted
    /// history must answer `count_range`, `dense_series`, and `sample_at`
    /// (the Clusterer's feature reads) exactly as the uncompacted one did.
    #[test]
    fn compaction_roundtrips_all_read_paths() {
        // Deterministic pseudo-random arrivals: bursty, with gaps.
        let mut h = ArrivalHistory::new();
        let mut x: u64 = 0x9E37_79B9;
        let span = 2 * crate::MINUTES_PER_DAY;
        for t in 0..span {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x % 5 == 0 {
                h.record(t, x % 7 + 1);
            }
        }
        let uncompacted = h.clone();
        h.compact(&CompactionPolicy {
            raw_retention: crate::MINUTES_PER_DAY / 2,
            compacted_interval: Interval::HOUR,
        });

        assert_eq!(h.total(), uncompacted.total());
        // A compacted first arrival is attributed to its bucket start, so
        // `first_seen` is preserved at bucket granularity only.
        assert_eq!(
            h.first_seen().map(|t| Interval::HOUR.bucket_start(t)),
            uncompacted.first_seen().map(|t| Interval::HOUR.bucket_start(t))
        );
        // Hour-aligned range counts are exact (sub-bucket resolution is
        // only lost *within* a compacted bucket).
        for start_h in (0..span).step_by(60 * 7) {
            let start = Interval::HOUR.bucket_start(start_h);
            assert_eq!(
                h.count_range(start, span),
                uncompacted.count_range(start, span),
                "count_range from {start}"
            );
        }
        assert_eq!(
            h.dense_series(0, span, Interval::HOUR),
            uncompacted.dense_series(0, span, Interval::HOUR)
        );
        assert_eq!(
            h.dense_series(0, span, Interval::DAY),
            uncompacted.dense_series(0, span, Interval::DAY)
        );
        let sample_points: Vec<Minute> = (0..span).step_by(97).collect();
        assert_eq!(
            h.sample_at(&sample_points, Interval::HOUR),
            uncompacted.sample_at(&sample_points, Interval::HOUR)
        );
    }

    /// Export → rebuild must be invisible to every read path and to
    /// further writes (the durable-snapshot contract).
    #[test]
    fn state_round_trip_is_exact() {
        let mut h = ArrivalHistory::new();
        for t in 0..3000 {
            h.record(t, (t as u64 % 5) + 1);
        }
        h.compact(&CompactionPolicy { raw_retention: 500, compacted_interval: Interval::HOUR });
        let mut rebuilt = ArrivalHistory::from_state(h.export_state());
        assert_eq!(rebuilt.total(), h.total());
        assert_eq!(rebuilt.stored_entries(), h.stored_entries());
        assert_eq!(rebuilt.first_seen(), h.first_seen());
        assert_eq!(
            rebuilt.dense_series(0, 3000, Interval::MINUTE),
            h.dense_series(0, 3000, Interval::MINUTE)
        );
        assert_eq!(rebuilt.export_state(), h.export_state());
        // Writes and compactions continue identically after the rebuild.
        h.record(3100, 9);
        rebuilt.record(3100, 9);
        let policy = CompactionPolicy { raw_retention: 400, compacted_interval: Interval::HOUR };
        h.compact(&policy);
        rebuilt.compact(&policy);
        assert_eq!(rebuilt.export_state(), h.export_state());
        // An empty history round-trips too.
        let empty = ArrivalHistory::from_state(ArrivalHistory::new().export_state());
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.last_seen(), None);
    }

    /// A second compaction with an *older* newest-record does not resurrect
    /// or double-count anything (records keep arriving between compactions).
    #[test]
    fn compaction_roundtrip_with_interleaved_records() {
        let mut h = ArrivalHistory::new();
        for t in 0..2000 {
            h.record(t, 1);
        }
        let policy = CompactionPolicy { raw_retention: 500, compacted_interval: Interval::HOUR };
        h.compact(&policy);
        for t in 2000..4000 {
            h.record(t, 1);
        }
        h.compact(&policy);
        assert_eq!(h.total(), 4000);
        assert_eq!(h.count_range(0, 4000), 4000);
        let hourly = h.dense_series(0, 4020, Interval::HOUR);
        assert_eq!(hourly.iter().sum::<f64>(), 4000.0);
        assert!(hourly.iter().all(|&v| v <= 60.0), "no bucket can exceed one arrival/minute");
    }
}
