//! Accuracy metrics and the log-space transform pair.
//!
//! §7.2: "We take the log of the input before training the models, and
//! convert them back by taking the exponentials of the output. ... We use
//! the log of the mean squared error (MSE) as the metric."
//!
//! We follow the NoisePage reference implementation in using `ln(1+x)`
//! rather than `ln(x)` so zero-arrival intervals stay finite.

/// `ln(1 + x)` applied element-wise. Negative inputs are clamped to 0 first
/// (arrival rates are counts; a model should never be fed negatives, but the
/// clamp keeps the transform total).
pub fn log1p_series(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|&x| x.max(0.0).ln_1p()).collect()
}

/// Inverse of [`log1p_series`]: `exp(y) - 1`, clamped at zero so a model can
/// never predict a negative arrival rate.
pub fn expm1_series(ys: &[f64]) -> Vec<f64> {
    ys.iter().map(|&y| (y.exp_m1()).max(0.0)).collect()
}

/// Plain mean squared error.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mse: length mismatch");
    assert!(!actual.is_empty(), "mse: empty input");
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64
}

/// The paper's accuracy metric: MSE computed between `ln(1+actual)` and
/// `ln(1+predicted)`. Lower is better. Both inputs are raw (linear-space)
/// arrival rates.
pub fn mse_log_space(actual: &[f64], predicted: &[f64]) -> f64 {
    let a = log1p_series(actual);
    let p = log1p_series(predicted);
    mse(&a, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_expm1_roundtrip() {
        let xs = vec![0.0, 1.0, 10.0, 12345.0];
        let back = expm1_series(&log1p_series(&xs));
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "{a} vs {b}");
        }
    }

    #[test]
    fn negative_input_clamped() {
        assert_eq!(log1p_series(&[-3.0]), vec![0.0]);
        assert_eq!(expm1_series(&[-10.0]), vec![0.0]);
    }

    #[test]
    fn mse_zero_for_perfect_prediction() {
        let xs = vec![1.0, 2.0, 3.0];
        assert_eq!(mse(&xs, &xs), 0.0);
        assert_eq!(mse_log_space(&xs, &xs), 0.0);
    }

    #[test]
    fn mse_known_value() {
        assert!((mse(&[0.0, 0.0], &[1.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn log_space_dampens_large_errors() {
        // A 10% relative error at large scale scores tiny in log space.
        let a = vec![10_000.0];
        let p = vec![11_000.0];
        assert!(mse_log_space(&a, &p) < 0.01);
        assert!(mse(&a, &p) > 1e5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn mse_empty_panics() {
        mse(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn mse_log_space_empty_panics() {
        mse_log_space(&[], &[]);
    }

    #[test]
    fn single_point_mse() {
        // One observation: MSE is just the squared error of that point.
        assert_eq!(mse(&[3.0], &[5.0]), 4.0);
        let expected = (4.0f64.ln_1p() - 2.0f64.ln_1p()).powi(2);
        assert!((mse_log_space(&[4.0], &[2.0]) - expected).abs() < 1e-15);
    }

    #[test]
    fn zero_rate_series_is_finite() {
        // An all-zero actual series (a cluster that went quiet) must score
        // finitely — this is why the transform is ln(1+x), not ln(x).
        let zeros = vec![0.0; 24];
        assert_eq!(mse_log_space(&zeros, &zeros), 0.0);
        let m = mse_log_space(&zeros, &[1.0; 24].to_vec());
        assert!(m.is_finite() && m > 0.0);
        // And a model predicting zero against real traffic is also finite.
        assert!(mse_log_space(&[100.0; 24], &zeros).is_finite());
    }
}
