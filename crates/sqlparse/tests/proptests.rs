//! Property-based tests: the canonical-form law.
//!
//! For any statement the parser accepts, `format(parse(s))` must be a fixed
//! point: re-parsing yields an identical AST and re-formatting yields an
//! identical string. Statements are generated structurally (random ASTs
//! rendered to SQL) so the space covers joins, nested predicates, and every
//! literal kind.

use proptest::prelude::*;
use qb_sqlparse::{format_statement, parse_statement};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "and" | "or" | "not" | "in" | "between" | "like"
                | "is" | "null" | "as" | "on" | "join" | "left" | "right" | "inner" | "cross"
                | "group" | "by" | "having" | "order" | "asc" | "desc" | "limit" | "offset"
                | "insert" | "into" | "values" | "update" | "set" | "delete" | "true"
                | "false" | "exists" | "case" | "when" | "then" | "else" | "end" | "outer"
                | "distinct" | "union" | "all"
        )
    })
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<i32>().prop_map(|v| v.to_string()),
        (0u32..10_000, 1u32..1000).prop_map(|(a, b)| format!("{a}.{b}")),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| format!("'{s}'")),
        Just("NULL".to_string()),
        Just("TRUE".to_string()),
        Just("FALSE".to_string()),
    ]
}

fn comparison() -> impl Strategy<Value = String> {
    (ident(), prop_oneof![
        Just("="), Just("<"), Just(">"), Just("<="), Just(">="), Just("<>")
    ], literal())
        .prop_map(|(c, op, l)| format!("{c} {op} {l}"))
}

fn predicate() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        comparison(),
        (ident(), literal(), literal())
            .prop_map(|(c, a, b)| format!("{c} BETWEEN {a} AND {b}")),
        (ident(), proptest::collection::vec(literal(), 1..4))
            .prop_map(|(c, ls)| format!("{c} IN ({})", ls.join(", "))),
        ident().prop_map(|c| format!("{c} IS NULL")),
        ident().prop_map(|c| format!("{c} IS NOT NULL")),
        (ident(), "[a-z%_]{1,6}").prop_map(|(c, p)| format!("{c} LIKE '{p}'")),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), prop_oneof![Just("AND"), Just("OR")], inner)
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn select_stmt() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(ident(), 1..4),
        ident(),
        proptest::option::of(predicate()),
        proptest::option::of((ident(), prop_oneof![Just("ASC"), Just("DESC")])),
        proptest::option::of(1u32..100),
    )
        .prop_map(|(cols, table, pred, order, limit)| {
            let mut s = format!("SELECT {} FROM {table}", cols.join(", "));
            if let Some(p) = pred {
                s.push_str(&format!(" WHERE {p}"));
            }
            if let Some((c, d)) = order {
                s.push_str(&format!(" ORDER BY {c} {d}"));
            }
            if let Some(l) = limit {
                s.push_str(&format!(" LIMIT {l}"));
            }
            s
        })
}

fn dml_stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        select_stmt(),
        (ident(), proptest::collection::vec((ident(), literal()), 1..4))
            .prop_map(|(t, cols)| {
                let names: Vec<_> = cols.iter().map(|(c, _)| c.clone()).collect();
                let vals: Vec<_> = cols.iter().map(|(_, v)| v.clone()).collect();
                format!("INSERT INTO {t} ({}) VALUES ({})", names.join(", "), vals.join(", "))
            }),
        (ident(), ident(), literal(), proptest::option::of(predicate()))
            .prop_map(|(t, c, v, pred)| {
                let mut s = format!("UPDATE {t} SET {c} = {v}");
                if let Some(p) = pred {
                    s.push_str(&format!(" WHERE {p}"));
                }
                s
            }),
        (ident(), proptest::option::of(predicate())).prop_map(|(t, pred)| {
            let mut s = format!("DELETE FROM {t}");
            if let Some(p) = pred {
                s.push_str(&format!(" WHERE {p}"));
            }
            s
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// format ∘ parse is idempotent and AST-preserving.
    #[test]
    fn canonical_form_is_fixed_point(sql in dml_stmt()) {
        let ast1 = parse_statement(&sql)
            .unwrap_or_else(|e| panic!("generated SQL must parse: `{sql}`: {e}"));
        let text1 = format_statement(&ast1);
        let ast2 = parse_statement(&text1)
            .unwrap_or_else(|e| panic!("canonical text must re-parse: `{text1}`: {e}"));
        prop_assert_eq!(&ast1, &ast2, "AST changed: `{}` vs `{}`", sql, text1);
        let text2 = format_statement(&ast2);
        prop_assert_eq!(text1, text2);
    }

    /// Upper/lower case and whitespace never change the parsed AST.
    #[test]
    fn case_and_space_insensitive(sql in select_stmt()) {
        let a = parse_statement(&sql).expect("parses");
        let shouty = sql.to_uppercase();
        // Uppercasing string literals changes them; skip if quotes present.
        prop_assume!(!sql.contains('\''));
        let b = parse_statement(&shouty).expect("uppercase parses");
        prop_assert_eq!(&a, &b);
        let spaced = sql.replace(' ', "  ");
        let c = parse_statement(&spaced).expect("spaced parses");
        prop_assert_eq!(&a, &c);
    }

    /// Full lex → parse → format round trip: the canonical text's *token
    /// stream* is a fixed point. Stronger than string equality alone — it
    /// pins down that canonicalization is decided at the token level
    /// (keyword casing, literal spelling, operator splitting), so a
    /// formatter change that happens to produce equal strings through
    /// different tokenization cannot sneak past.
    #[test]
    fn lex_parse_format_roundtrip_is_stable(sql in dml_stmt()) {
        let canonical = format_statement(
            &parse_statement(&sql).unwrap_or_else(|e| panic!("must parse: `{sql}`: {e}")),
        );
        let kinds = |s: &str| -> Vec<qb_sqlparse::TokenKind> {
            qb_sqlparse::Lexer::new(s)
                .tokenize()
                .unwrap_or_else(|e| panic!("canonical text must lex: `{s}`: {e}"))
                .into_iter()
                .map(|t| t.kind)
                .collect()
        };
        let first = kinds(&canonical);
        let again = format_statement(
            &parse_statement(&canonical)
                .unwrap_or_else(|e| panic!("canonical text must re-parse: `{canonical}`: {e}")),
        );
        prop_assert_eq!(first, kinds(&again), "token stream drifted for `{}`", sql);
    }

    /// The lexer never panics on arbitrary bytes-as-strings.
    #[test]
    fn lexer_total_on_arbitrary_input(s in ".{0,120}") {
        let _ = qb_sqlparse::Lexer::new(&s).tokenize();
    }

    /// The parser never panics on arbitrary input either.
    #[test]
    fn parser_total_on_arbitrary_input(s in ".{0,120}") {
        let _ = parse_statement(&s);
    }
}
