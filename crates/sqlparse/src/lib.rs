//! # qb-sqlparse
//!
//! A self-contained SQL lexer, parser, and canonical formatter for the DML
//! subset that the QB5000 traces exercise (`SELECT` / `INSERT` / `UPDATE` /
//! `DELETE`, joins, grouping, ordering, nested predicates, batched inserts).
//!
//! Two QB5000 components sit on top of this crate:
//!
//! * the **Pre-Processor** (`qb-preprocessor`) walks the AST to strip
//!   constants into placeholders, producing the query *templates* of §4, and
//!   uses the canonical formatter to normalize spacing/case/parentheses;
//! * the **dbsim engine** (`qb-dbsim`) evaluates parsed predicates against
//!   its stored tables for the index-selection experiment (§7.6).
//!
//! The parser is a hand-written recursive-descent parser with precedence
//! climbing for expressions. It is deliberately strict: anything outside the
//! supported grammar produces a [`ParseError`] with the offending position,
//! mirroring how QB5000 skips statements its template extractor cannot
//! understand.

pub mod ast;
pub mod format;
pub mod lexer;
pub mod parser;

pub use ast::{
    Assignment, BinaryOp, DeleteStatement, Expr, InsertStatement, JoinClause, JoinKind, Literal,
    OrderByItem, OrderDirection, SelectItem, SelectStatement, Statement, TableRef, UnaryOp,
    UpdateStatement,
};
pub use format::format_statement;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_statement, ParseError, Parser};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_parse_and_format() {
        let sql = "select  A.x ,  b.y from  a join b ON a.id = b.id where a.x > 5";
        let stmt = parse_statement(sql).unwrap();
        let formatted = format_statement(&stmt);
        // Formatting is canonical: re-parsing yields an identical AST.
        let stmt2 = parse_statement(&formatted).unwrap();
        assert_eq!(stmt, stmt2);
    }
}
