//! Abstract syntax tree for the supported SQL DML subset.
//!
//! Identifiers are stored lowercased so that AST equality implements the
//! case-normalization the Pre-Processor needs (§4): two spellings of the
//! same query produce identical trees.

/// A literal constant appearing in a query. These are exactly the values the
/// Pre-Processor extracts into placeholders when templating.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Integer(i64),
    Float(f64),
    String(String),
    Boolean(bool),
    Null,
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                // Keep a decimal point so the canonical text re-parses as a
                // float (plain `{}` prints `5` for 5.0, which would re-parse
                // as Integer and change template identity).
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    Like,
}

impl BinaryOp {
    /// The canonical SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Like => "LIKE",
        }
    }

    /// True for comparison operators usable as index-sargable predicates.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant literal.
    Literal(Literal),
    /// A `?` placeholder (either from a prepared statement in the input or
    /// produced by the Pre-Processor's constant extraction).
    Placeholder,
    /// A possibly-qualified column reference: `col` or `table.col`.
    Column { table: Option<String>, column: String },
    /// `*` in a select list or `COUNT(*)`.
    Wildcard,
    /// Binary operation.
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Function call: `name(args)`, with optional DISTINCT (for aggregates).
    Function { name: String, distinct: bool, args: Vec<Expr> },
    /// `expr IN (list...)` or `expr NOT IN (list...)`.
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    /// `expr IN (SELECT ...)`.
    InSubquery { expr: Box<Expr>, subquery: Box<SelectStatement>, negated: bool },
    /// `EXISTS (SELECT ...)`.
    Exists { subquery: Box<SelectStatement>, negated: bool },
    /// `expr BETWEEN low AND high`.
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// Scalar subquery.
    Subquery(Box<SelectStatement>),
    /// `CASE WHEN cond THEN val ... [ELSE val] END`.
    Case { branches: Vec<(Expr, Expr)>, else_expr: Option<Box<Expr>> },
}

impl Expr {
    /// Convenience constructor for a bare column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, column: name.to_ascii_lowercase() }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_ascii_lowercase()),
            column: name.to_ascii_lowercase(),
        }
    }

    /// Walks the expression tree, invoking `f` on every node (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Between { expr, low, high, .. } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Exists { .. }
            | Expr::Subquery(_)
            | Expr::Literal(_)
            | Expr::Placeholder
            | Expr::Column { .. }
            | Expr::Wildcard => {}
        }
    }
}

/// A table reference in FROM: `name [AS alias]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Cross,
}

/// `JOIN table ON condition`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: TableRef,
    /// `None` only for CROSS joins.
    pub on: Option<Expr>,
}

/// One item of a select list: expression plus optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderDirection {
    Asc,
    Desc,
}

/// `ORDER BY expr [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub direction: OrderDirection,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

/// An `INSERT` statement. `rows.len() > 1` for batched inserts; the
/// Pre-Processor records the batch size separately (§4).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    pub table: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Expr>>,
}

/// `SET column = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub column: String,
    pub value: Expr,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    pub table: String,
    pub assignments: Vec<Assignment>,
    pub where_clause: Option<Expr>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStatement),
    Insert(InsertStatement),
    Update(UpdateStatement),
    Delete(DeleteStatement),
}

impl Statement {
    /// The statement verb, used for Table 1's query-type breakdown and the
    /// logical feature vector of §7.7.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Statement::Select(_) => "SELECT",
            Statement::Insert(_) => "INSERT",
            Statement::Update(_) => "UPDATE",
            Statement::Delete(_) => "DELETE",
        }
    }

    /// All table names the statement touches (FROM, JOINs, or the DML
    /// target), lowercased, in first-appearance order.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |name: &str| {
            if !out.iter().any(|t| t == name) {
                out.push(name.to_string());
            }
        };
        match self {
            Statement::Select(s) => {
                if let Some(t) = &s.from {
                    push(&t.name);
                }
                for j in &s.joins {
                    push(&j.table.name);
                }
                // Tables referenced by subqueries anywhere in the statement
                // count toward the semantic fingerprint.
                let mut sub_tables = Vec::new();
                for item in &s.items {
                    collect_subquery_tables(&item.expr, &mut sub_tables);
                }
                for j in &s.joins {
                    if let Some(on) = &j.on {
                        collect_subquery_tables(on, &mut sub_tables);
                    }
                }
                if let Some(w) = &s.where_clause {
                    collect_subquery_tables(w, &mut sub_tables);
                }
                if let Some(h) = &s.having {
                    collect_subquery_tables(h, &mut sub_tables);
                }
                for t in sub_tables {
                    push(&t);
                }
            }
            Statement::Insert(i) => push(&i.table),
            Statement::Update(u) => {
                push(&u.table);
                let mut sub_tables = Vec::new();
                if let Some(w) = &u.where_clause {
                    collect_subquery_tables(w, &mut sub_tables);
                }
                for t in sub_tables {
                    push(&t);
                }
            }
            Statement::Delete(d) => {
                push(&d.table);
                let mut sub_tables = Vec::new();
                if let Some(w) = &d.where_clause {
                    collect_subquery_tables(w, &mut sub_tables);
                }
                for t in sub_tables {
                    push(&t);
                }
            }
        }
        out
    }
}

fn collect_subquery_tables(expr: &Expr, out: &mut Vec<String>) {
    expr.walk(&mut |e| {
        let sub = match e {
            Expr::InSubquery { subquery, .. } => Some(subquery),
            Expr::Exists { subquery, .. } => Some(subquery),
            Expr::Subquery(subquery) => Some(subquery),
            _ => None,
        };
        if let Some(s) = sub {
            let stmt = Statement::Select((**s).clone());
            for t in stmt.tables() {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Integer(5).to_string(), "5");
        assert_eq!(Literal::String("a'b".into()).to_string(), "'a''b'");
        assert_eq!(Literal::Null.to_string(), "NULL");
        assert_eq!(Literal::Boolean(true).to_string(), "TRUE");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::And,
            right: Box::new(Expr::Between {
                expr: Box::new(Expr::col("b")),
                low: Box::new(Expr::Literal(Literal::Integer(1))),
                high: Box::new(Expr::Literal(Literal::Integer(2))),
                negated: false,
            }),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn statement_tables_dedup() {
        let s = SelectStatement {
            distinct: false,
            items: vec![SelectItem { expr: Expr::Wildcard, alias: None }],
            from: Some(TableRef { name: "t".into(), alias: None }),
            joins: vec![JoinClause {
                kind: JoinKind::Inner,
                table: TableRef { name: "t".into(), alias: Some("t2".into()) },
                on: None,
            }],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert_eq!(Statement::Select(s).tables(), vec!["t".to_string()]);
    }

    #[test]
    fn binary_op_comparison_classification() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(BinaryOp::GtEq.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
