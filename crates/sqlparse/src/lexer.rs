//! SQL lexer.
//!
//! Converts a raw SQL string into a token stream. Keywords are recognized
//! case-insensitively; identifiers preserve their original spelling but
//! compare case-insensitively downstream (the canonical formatter lowercases
//! them, which implements the "normalize case" step of the Pre-Processor).

use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A SQL keyword (`SELECT`, `FROM`, ...), stored uppercase.
    Keyword(String),
    /// An identifier (table, column, alias, function name).
    Identifier(String),
    /// A numeric literal. Stored as the raw spelling; the parser decides
    /// whether it is integral or fractional.
    Number(String),
    /// A single-quoted string literal with quotes removed and `''` unescaped.
    StringLit(String),
    /// A `?` positional placeholder (already-prepared statements).
    Placeholder,
    /// `=`, `<`, `>`, `<=`, `>=`, `<>` / `!=`, `+`, `-`, `*`, `/`, `%`, `||`.
    Operator(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Identifier(i) => write!(f, "{i}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Placeholder => write!(f, "?"),
            TokenKind::Operator(o) => write!(f, "{o}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its byte offset in the source, for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The reserved words the parser gives special meaning to.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "JOIN",
    "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE",
    "IS", "NULL", "AS", "DISTINCT", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "OFFSET", "TRUE", "FALSE", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "UNION", "ALL",
];

/// Streaming lexer over a SQL source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

/// Lexing failure: an unexpected byte or an unterminated literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0 }
    }

    /// Lexes the entire input into a vector ending with an `Eof` token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                // `-- line comment`
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // `/* block comment */`
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError {
                                    offset: start,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_whitespace_and_comments()?;
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token { kind: TokenKind::Eof, offset });
        };

        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'?' => {
                self.pos += 1;
                TokenKind::Placeholder
            }
            b'\'' => self.lex_string(offset)?,
            b'0'..=b'9' => self.lex_number(),
            b'.' => {
                if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                    self.lex_number()
                } else {
                    self.pos += 1;
                    TokenKind::Dot
                }
            }
            b'`' | b'"' => self.lex_quoted_identifier(offset)?,
            b'=' => {
                self.pos += 1;
                TokenKind::Operator("=".into())
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        TokenKind::Operator("<=".into())
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        TokenKind::Operator("<>".into())
                    }
                    _ => TokenKind::Operator("<".into()),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Operator(">=".into())
                } else {
                    TokenKind::Operator(">".into())
                }
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    // Normalize to the standard spelling.
                    TokenKind::Operator("<>".into())
                } else {
                    return Err(LexError { offset, message: "expected `=` after `!`".into() });
                }
            }
            b'|' => {
                self.pos += 1;
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    TokenKind::Operator("||".into())
                } else {
                    return Err(LexError { offset, message: "expected `|` after `|`".into() });
                }
            }
            b'+' | b'-' | b'*' | b'/' | b'%' => {
                self.pos += 1;
                TokenKind::Operator((b as char).to_string())
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_word(),
            other => {
                return Err(LexError {
                    offset,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_string(&mut self, start: usize) -> Result<TokenKind, LexError> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.pos += 1;
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // `''` is an escaped quote inside a string literal.
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        bytes.push(b'\'');
                    } else {
                        // Accumulated as raw bytes so multi-byte UTF-8
                        // characters survive intact.
                        return String::from_utf8(bytes)
                            .map(TokenKind::StringLit)
                            .map_err(|_| LexError {
                                offset: start,
                                message: "invalid UTF-8 in string literal".into(),
                            });
                    }
                }
                Some(b) => bytes.push(b),
                None => {
                    return Err(LexError {
                        offset: start,
                        message: "unterminated string literal".into(),
                    })
                }
            }
        }
    }

    fn lex_quoted_identifier(&mut self, start: usize) -> Result<TokenKind, LexError> {
        let quote = self.bump().expect("caller checked");
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                Some(b) if b == quote => {
                    return String::from_utf8(bytes)
                        .map(TokenKind::Identifier)
                        .map_err(|_| LexError {
                            offset: start,
                            message: "invalid UTF-8 in quoted identifier".into(),
                        })
                }
                Some(b) => bytes.push(b),
                None => {
                    return Err(LexError {
                        offset: start,
                        message: "unterminated quoted identifier".into(),
                    })
                }
            }
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.pos;
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !seen_exp => {
                    // Only treat as exponent when followed by digit or sign+digit.
                    let next = self.peek2();
                    let after_sign = self.src.get(self.pos + 2).copied();
                    let is_exp = matches!(next, Some(c) if c.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(after_sign, Some(c) if c.is_ascii_digit()));
                    if !is_exp {
                        break;
                    }
                    seen_exp = true;
                    self.pos += 2; // consume `e` and the digit/sign
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("numeric bytes are ASCII")
            .to_string();
        TokenKind::Number(text)
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word =
            std::str::from_utf8(&self.src[start..self.pos]).expect("word bytes are ASCII");
        let upper = word.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            TokenKind::Keyword(upper)
        } else {
            TokenKind::Identifier(word.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let k = kinds("SELECT a FROM t");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Identifier("a".into()),
                TokenKind::Keyword("FROM".into()),
                TokenKind::Identifier("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn string_literal_with_escape() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn numbers_integer_float_exponent() {
        assert_eq!(kinds("42")[0], TokenKind::Number("42".into()));
        assert_eq!(kinds("3.14")[0], TokenKind::Number("3.14".into()));
        assert_eq!(kinds("1e5")[0], TokenKind::Number("1e5".into()));
        assert_eq!(kinds("2.5E-3")[0], TokenKind::Number("2.5E-3".into()));
    }

    #[test]
    fn dot_vs_decimal() {
        // `t.c` is ident-dot-ident, `.5` is a number.
        assert_eq!(
            kinds("t.c"),
            vec![
                TokenKind::Identifier("t".into()),
                TokenKind::Dot,
                TokenKind::Identifier("c".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds(".5")[0], TokenKind::Number(".5".into()));
    }

    #[test]
    fn operators() {
        assert_eq!(kinds("<=")[0], TokenKind::Operator("<=".into()));
        assert_eq!(kinds("<>")[0], TokenKind::Operator("<>".into()));
        // `!=` normalizes to `<>`.
        assert_eq!(kinds("!=")[0], TokenKind::Operator("<>".into()));
        assert_eq!(kinds("||")[0], TokenKind::Operator("||".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- trailing\n a /* block */ FROM t");
        assert_eq!(k.len(), 5);
    }

    #[test]
    fn placeholder_token() {
        assert_eq!(kinds("?")[0], TokenKind::Placeholder);
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds("`weird name`")[0], TokenKind::Identifier("weird name".into()));
        assert_eq!(kinds("\"Quoted\"")[0], TokenKind::Identifier("Quoted".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(Lexer::new("SELECT #").tokenize().is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::new("SELECT a").tokenize().unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 7);
    }
}
