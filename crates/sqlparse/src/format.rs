//! Canonical SQL formatter.
//!
//! Renders an AST back into a single normalized spelling: uppercase
//! keywords, lowercase identifiers, single spaces, canonical parenthesis
//! placement. Combined with the parser this implements the Pre-Processor's
//! normalization step (§4): any two textual spellings of the same statement
//! format to byte-identical strings, which is what template identity is
//! keyed on.

use crate::ast::*;
use std::fmt::Write;

/// Formats a statement into its canonical textual form.
pub fn format_statement(stmt: &Statement) -> String {
    let mut out = String::new();
    match stmt {
        Statement::Select(s) => write_select(&mut out, s),
        Statement::Insert(i) => write_insert(&mut out, i),
        Statement::Update(u) => write_update(&mut out, u),
        Statement::Delete(d) => write_delete(&mut out, d),
    }
    out
}

fn write_select(out: &mut String, s: &SelectStatement) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_expr(out, &item.expr);
        if let Some(alias) = &item.alias {
            let _ = write!(out, " AS {alias}");
        }
    }
    if let Some(from) = &s.from {
        out.push_str(" FROM ");
        write_table_ref(out, from);
    }
    for j in &s.joins {
        let kw = match j.kind {
            JoinKind::Inner => " JOIN ",
            JoinKind::Left => " LEFT JOIN ",
            JoinKind::Right => " RIGHT JOIN ",
            JoinKind::Cross => " CROSS JOIN ",
        };
        out.push_str(kw);
        write_table_ref(out, &j.table);
        if let Some(on) = &j.on {
            out.push_str(" ON ");
            write_expr(out, on);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, g);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h);
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &o.expr);
            if o.direction == OrderDirection::Desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(l) = &s.limit {
        out.push_str(" LIMIT ");
        write_expr(out, l);
    }
    if let Some(o) = &s.offset {
        out.push_str(" OFFSET ");
        write_expr(out, o);
    }
}

fn write_table_ref(out: &mut String, t: &TableRef) {
    out.push_str(&t.name);
    if let Some(a) = &t.alias {
        let _ = write!(out, " AS {a}");
    }
}

fn write_insert(out: &mut String, i: &InsertStatement) {
    let _ = write!(out, "INSERT INTO {}", i.table);
    if !i.columns.is_empty() {
        out.push_str(" (");
        out.push_str(&i.columns.join(", "));
        out.push(')');
    }
    out.push_str(" VALUES ");
    for (ri, row) in i.rows.iter().enumerate() {
        if ri > 0 {
            out.push_str(", ");
        }
        out.push('(');
        for (ci, v) in row.iter().enumerate() {
            if ci > 0 {
                out.push_str(", ");
            }
            write_expr(out, v);
        }
        out.push(')');
    }
}

fn write_update(out: &mut String, u: &UpdateStatement) {
    let _ = write!(out, "UPDATE {} SET ", u.table);
    for (i, a) in u.assignments.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} = ", a.column);
        write_expr(out, &a.value);
    }
    if let Some(w) = &u.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
}

fn write_delete(out: &mut String, d: &DeleteStatement) {
    let _ = write!(out, "DELETE FROM {}", d.table);
    if let Some(w) = &d.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
}

/// Operator precedence for minimal-parenthesis rendering.
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Or => 1,
        BinaryOp::And => 2,
        BinaryOp::Eq
        | BinaryOp::NotEq
        | BinaryOp::Lt
        | BinaryOp::LtEq
        | BinaryOp::Gt
        | BinaryOp::GtEq
        | BinaryOp::Like => 3,
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 4,
        BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 5,
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    write_expr_prec(out, e, 0)
}

fn write_expr_prec(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Literal(l) => {
            let _ = write!(out, "{l}");
        }
        Expr::Placeholder => out.push('?'),
        Expr::Column { table, column } => {
            if let Some(t) = table {
                let _ = write!(out, "{t}.{column}");
            } else {
                out.push_str(column);
            }
        }
        Expr::Wildcard => out.push('*'),
        Expr::Binary { left, op, right } => {
            let prec = precedence(*op);
            let need_parens = prec < parent_prec;
            if need_parens {
                out.push('(');
            }
            // Comparisons are non-associative in the grammar: a comparison
            // operand of another comparison must keep its parentheses.
            let left_prec = if op.is_comparison() { prec + 1 } else { prec };
            write_expr_prec(out, left, left_prec);
            let _ = write!(out, " {} ", op.as_str());
            // Right operand binds one level tighter to keep left-assoc shape.
            write_expr_prec(out, right, prec + 1);
            if need_parens {
                out.push(')');
            }
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                out.push_str("NOT ");
                write_expr_prec(out, expr, 6);
            }
            UnaryOp::Neg => {
                out.push('-');
                // `--x` would lex as a line comment; parenthesize a negative
                // operand so negation stays parseable.
                let needs_parens = match &**expr {
                    Expr::Unary { op: UnaryOp::Neg, .. } => true,
                    Expr::Literal(crate::ast::Literal::Integer(i)) => *i < 0,
                    Expr::Literal(crate::ast::Literal::Float(v)) => *v < 0.0,
                    _ => false,
                };
                if needs_parens {
                    out.push('(');
                    write_expr_prec(out, expr, 0);
                    out.push(')');
                } else {
                    write_expr_prec(out, expr, 6);
                }
            }
        },
        Expr::Function { name, distinct, args } => {
            let _ = write!(out, "{name}(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        Expr::InList { expr, list, negated } => {
            write_expr_prec(out, expr, 6);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, x) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, x);
            }
            out.push(')');
        }
        Expr::InSubquery { expr, subquery, negated } => {
            write_expr_prec(out, expr, 6);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_select(out, subquery);
            out.push(')');
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_select(out, subquery);
            out.push(')');
        }
        Expr::Between { expr, low, high, negated } => {
            write_expr_prec(out, expr, 6);
            out.push_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " });
            write_expr_prec(out, low, 6);
            out.push_str(" AND ");
            write_expr_prec(out, high, 6);
        }
        Expr::IsNull { expr, negated } => {
            write_expr_prec(out, expr, 6);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Subquery(s) => {
            out.push('(');
            write_select(out, s);
            out.push(')');
        }
        Expr::Case { branches, else_expr } => {
            out.push_str("CASE");
            for (cond, val) in branches {
                out.push_str(" WHEN ");
                write_expr(out, cond);
                out.push_str(" THEN ");
                write_expr(out, val);
            }
            if let Some(e) = else_expr {
                out.push_str(" ELSE ");
                write_expr(out, e);
            }
            out.push_str(" END");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    /// The canonical-form property: format(parse(x)) is a fixed point.
    fn roundtrip(sql: &str) -> String {
        let s1 = parse_statement(sql).unwrap();
        let f1 = format_statement(&s1);
        let s2 = parse_statement(&f1).unwrap_or_else(|e| panic!("reparse of `{f1}` failed: {e}"));
        assert_eq!(s1, s2, "AST changed across format/reparse for `{sql}`");
        let f2 = format_statement(&s2);
        assert_eq!(f1, f2, "format not idempotent for `{sql}`");
        f1
    }

    #[test]
    fn normalizes_spacing_and_case() {
        let a = roundtrip("select   A , b FROM   T  where A=1");
        let b = roundtrip("SELECT a, b FROM t WHERE a = 1");
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrips_joins() {
        roundtrip("SELECT u.a FROM users AS u LEFT JOIN orders o ON u.id = o.uid");
        roundtrip("SELECT a FROM t CROSS JOIN s");
    }

    #[test]
    fn roundtrips_insert_update_delete() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        roundtrip("UPDATE t SET a = a + 1 WHERE id = 3");
        roundtrip("DELETE FROM t WHERE ts < 100");
    }

    #[test]
    fn roundtrips_predicates() {
        roundtrip("SELECT a FROM t WHERE a IN (1, 2) AND b NOT BETWEEN 1 AND 2 OR c IS NULL");
        roundtrip("SELECT a FROM t WHERE name LIKE 'x%' AND NOT (a = 1 OR b = 2)");
        roundtrip("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = ?)");
    }

    #[test]
    fn parenthesization_preserves_structure() {
        // (a OR b) AND c must keep its parens; a OR (b AND c) must not gain any.
        let f = roundtrip("SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3");
        assert!(f.contains("("), "needed parens dropped: {f}");
        let f2 = roundtrip("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3");
        assert!(!f2.contains('('), "unneeded parens added: {f2}");
    }

    #[test]
    fn arithmetic_parens() {
        let f = roundtrip("SELECT (a + b) * c FROM t");
        assert!(f.contains("(a + b) * c"), "{f}");
        let f2 = roundtrip("SELECT a + b * c FROM t");
        assert!(f2.contains("a + b * c") && !f2.contains('('), "{f2}");
    }

    #[test]
    fn roundtrips_placeholders() {
        let f = roundtrip("SELECT a FROM t WHERE b = ? AND c IN (?, ?)");
        assert_eq!(f.matches('?').count(), 3);
    }

    #[test]
    fn roundtrips_aggregates_and_case() {
        roundtrip("SELECT COUNT(*), SUM(DISTINCT x) FROM t GROUP BY y HAVING COUNT(*) > 2");
        roundtrip("SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t");
    }

    #[test]
    fn roundtrips_order_limit() {
        let f = roundtrip("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2");
        assert!(f.contains("ORDER BY a DESC, b LIMIT 5 OFFSET 2"), "{f}");
    }

    #[test]
    fn string_escaping_roundtrip() {
        let f = roundtrip("SELECT a FROM t WHERE s = 'it''s'");
        assert!(f.contains("'it''s'"), "{f}");
    }
}
