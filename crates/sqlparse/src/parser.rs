//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::lexer::{LexError, Lexer, Token, TokenKind};

/// A parse failure, carrying the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { offset: e.offset, message: e.message }
    }
}

/// Parses a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut parser = Parser::new(tokens);
    let stmt = parser.statement()?;
    parser.eat_if(&TokenKind::Semicolon);
    parser.expect_eof()?;
    Ok(stmt)
}

/// Token-stream parser. Construct via [`Parser::new`] or use the
/// [`parse_statement`] convenience wrapper.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.offset(), message: msg.into() })
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(format!("expected `{kw}`, found `{}`", self.peek()))
        }
    }

    pub(crate) fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            self.error(format!("expected `{kind}`, found `{}`", self.peek()))
        }
    }

    fn expect_identifier(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Identifier(name) => {
                self.bump();
                Ok(name.to_ascii_lowercase())
            }
            other => self.error(format!("expected identifier, found `{other}`")),
        }
    }

    pub(crate) fn expect_eof(&self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.error(format!("unexpected trailing input `{}`", self.peek()))
        }
    }

    /// Parses one statement.
    pub fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(k) if k == "SELECT" => {
                Ok(Statement::Select(self.select_statement()?))
            }
            TokenKind::Keyword(k) if k == "INSERT" => {
                Ok(Statement::Insert(self.insert_statement()?))
            }
            TokenKind::Keyword(k) if k == "UPDATE" => {
                Ok(Statement::Update(self.update_statement()?))
            }
            TokenKind::Keyword(k) if k == "DELETE" => {
                Ok(Statement::Delete(self.delete_statement()?))
            }
            other => self.error(format!("expected a DML statement, found `{other}`")),
        }
    }

    fn select_statement(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        let mut items = vec![self.select_item()?];
        while self.eat_if(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }

        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_keyword("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_keyword("JOIN") {
                    Some(JoinKind::Inner)
                } else if self.eat_keyword("INNER") {
                    self.expect_keyword("JOIN")?;
                    Some(JoinKind::Inner)
                } else if self.eat_keyword("LEFT") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    Some(JoinKind::Left)
                } else if self.eat_keyword("RIGHT") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    Some(JoinKind::Right)
                } else if self.eat_keyword("CROSS") {
                    self.expect_keyword("JOIN")?;
                    Some(JoinKind::Cross)
                } else {
                    None
                };
                let Some(kind) = kind else { break };
                let table = self.table_ref()?;
                let on = if kind == JoinKind::Cross {
                    None
                } else {
                    self.expect_keyword("ON")?;
                    Some(self.expr()?)
                };
                joins.push(JoinClause { kind, table, on });
            }
        }

        let where_clause =
            if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_if(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_keyword("HAVING") { Some(self.expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let direction = if self.eat_keyword("DESC") {
                    OrderDirection::Desc
                } else {
                    self.eat_keyword("ASC");
                    OrderDirection::Asc
                };
                order_by.push(OrderByItem { expr, direction });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") { Some(self.primary_expr()?) } else { None };
        let offset = if self.eat_keyword("OFFSET") { Some(self.primary_expr()?) } else { None };

        Ok(SelectStatement {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if matches!(self.peek(), TokenKind::Operator(o) if o == "*") {
            self.bump();
            return Ok(SelectItem { expr: Expr::Wildcard, alias: None });
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_identifier()?)
        } else if let TokenKind::Identifier(name) = self.peek().clone() {
            // Bare alias: `SELECT a b FROM ...`.
            self.bump();
            Some(name.to_ascii_lowercase())
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.expect_identifier()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_identifier()?)
        } else if let TokenKind::Identifier(a) = self.peek().clone() {
            self.bump();
            Some(a.to_ascii_lowercase())
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn insert_statement(&mut self) -> Result<InsertStatement, ParseError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_identifier()?;

        let mut columns = Vec::new();
        if self.eat_if(&TokenKind::LParen) {
            columns.push(self.expect_identifier()?);
            while self.eat_if(&TokenKind::Comma) {
                columns.push(self.expect_identifier()?);
            }
            self.expect(&TokenKind::RParen)?;
        }

        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_if(&TokenKind::Comma) {
                row.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            if !columns.is_empty() && row.len() != columns.len() {
                return self.error(format!(
                    "INSERT row has {} values but {} columns were named",
                    row.len(),
                    columns.len()
                ));
            }
            rows.push(row);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(InsertStatement { table, columns, rows })
    }

    fn update_statement(&mut self) -> Result<UpdateStatement, ParseError> {
        self.expect_keyword("UPDATE")?;
        let table = self.expect_identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.expect_identifier()?;
            match self.peek() {
                TokenKind::Operator(o) if o == "=" => {
                    self.bump();
                }
                other => return self.error(format!("expected `=`, found `{other}`")),
            }
            let value = self.expr()?;
            assignments.push(Assignment { column, value });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(UpdateStatement { table, assignments, where_clause })
    }

    fn delete_statement(&mut self) -> Result<DeleteStatement, ParseError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.expect_identifier()?;
        let where_clause = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        Ok(DeleteStatement { table, where_clause })
    }

    // ---- expressions (precedence climbing) ----

    /// Parses a full boolean expression.
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left =
                Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.predicate()
    }

    /// Comparison / IN / BETWEEN / LIKE / IS NULL layer.
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive_expr()?;

        // `IS [NOT] NULL`
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }

        // `[NOT] IN / BETWEEN / LIKE`
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            if self.at_keyword("SELECT") {
                let sub = self.select_statement()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_if(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive_expr()?;
            self.expect_keyword("AND")?;
            let high = self.additive_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive_expr()?;
            let like = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Like,
                right: Box::new(pattern),
            };
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(like) }
            } else {
                like
            });
        }
        if negated {
            return self.error("expected IN, BETWEEN, or LIKE after NOT");
        }

        // Plain comparison.
        if let TokenKind::Operator(op) = self.peek().clone() {
            let bin_op = match op.as_str() {
                "=" => Some(BinaryOp::Eq),
                "<>" => Some(BinaryOp::NotEq),
                "<" => Some(BinaryOp::Lt),
                "<=" => Some(BinaryOp::LtEq),
                ">" => Some(BinaryOp::Gt),
                ">=" => Some(BinaryOp::GtEq),
                _ => None,
            };
            if let Some(bin_op) = bin_op {
                self.bump();
                let right = self.additive_expr()?;
                return Ok(Expr::Binary { left: Box::new(left), op: bin_op, right: Box::new(right) });
            }
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Operator(o) if o == "+" => BinaryOp::Add,
                TokenKind::Operator(o) if o == "-" => BinaryOp::Sub,
                TokenKind::Operator(o) if o == "||" => BinaryOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative_expr()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Operator(o) if o == "*" => BinaryOp::Mul,
                TokenKind::Operator(o) if o == "/" => BinaryOp::Div,
                TokenKind::Operator(o) if o == "%" => BinaryOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Operator(o) if o == "-") {
            self.bump();
            // Fold negation into numeric literals so `-5` templatizes as one
            // constant rather than `-( ? )`.
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Literal(Literal::Integer(v)) => Expr::Literal(Literal::Integer(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(text) => {
                self.bump();
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    match text.parse::<f64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Float(v))),
                        Err(_) => self.error(format!("invalid numeric literal `{text}`")),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Integer(v))),
                        // Overflowing integers degrade to floats.
                        Err(_) => match text.parse::<f64>() {
                            Ok(v) => Ok(Expr::Literal(Literal::Float(v))),
                            Err(_) => self.error(format!("invalid numeric literal `{text}`")),
                        },
                    }
                }
            }
            TokenKind::StringLit(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Placeholder => {
                self.bump();
                Ok(Expr::Placeholder)
            }
            TokenKind::Keyword(k) if k == "NULL" => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(k) if k == "TRUE" => {
                self.bump();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            TokenKind::Keyword(k) if k == "FALSE" => {
                self.bump();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            TokenKind::Keyword(k) if k == "EXISTS" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let sub = self.select_statement()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists { subquery: Box::new(sub), negated: false })
            }
            TokenKind::Keyword(k) if k == "CASE" => self.case_expr(),
            TokenKind::LParen => {
                self.bump();
                if self.at_keyword("SELECT") {
                    let sub = self.select_statement()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Identifier(name) => {
                self.bump();
                // Function call?
                if self.eat_if(&TokenKind::LParen) {
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if !self.eat_if(&TokenKind::RParen) {
                        if matches!(self.peek(), TokenKind::Operator(o) if o == "*") {
                            self.bump();
                            args.push(Expr::Wildcard);
                        } else {
                            args.push(self.expr()?);
                        }
                        while self.eat_if(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: name.to_ascii_lowercase(),
                        distinct,
                        args,
                    });
                }
                // Qualified column?
                if self.eat_if(&TokenKind::Dot) {
                    if matches!(self.peek(), TokenKind::Operator(o) if o == "*") {
                        self.bump();
                        // `t.*` — treat as a wildcard for templating purposes.
                        return Ok(Expr::Wildcard);
                    }
                    let column = self.expect_identifier()?;
                    return Ok(Expr::Column {
                        table: Some(name.to_ascii_lowercase()),
                        column,
                    });
                }
                Ok(Expr::Column { table: None, column: name.to_ascii_lowercase() })
            }
            other => self.error(format!("expected expression, found `{other}`")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword("CASE")?;
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return self.error("CASE requires at least one WHEN branch");
        }
        let else_expr =
            if self.eat_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_keyword("END")?;
        Ok(Expr::Case { branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Statement {
        parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for `{sql}`: {e}"))
    }

    #[test]
    fn simple_select() {
        let s = parse("SELECT a, b FROM t WHERE a = 5");
        let Statement::Select(sel) = s else { panic!("not a select") };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.from.as_ref().unwrap().name, "t");
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn select_star() {
        let s = parse("SELECT * FROM t");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items[0].expr, Expr::Wildcard);
    }

    #[test]
    fn select_with_join_and_aliases() {
        let s = parse(
            "SELECT u.name, o.total FROM users AS u \
             LEFT JOIN orders o ON u.id = o.user_id WHERE o.total > 100.5",
        );
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.joins[0].kind, JoinKind::Left);
        assert_eq!(sel.joins[0].table.alias.as_deref(), Some("o"));
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = parse(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept \
             HAVING COUNT(*) > 3 ORDER BY dept DESC LIMIT 10 OFFSET 5",
        );
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by[0].direction, OrderDirection::Desc);
        assert_eq!(sel.limit, Some(Expr::Literal(Literal::Integer(10))));
        assert_eq!(sel.offset, Some(Expr::Literal(Literal::Integer(5))));
    }

    #[test]
    fn insert_single_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x')");
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.columns, vec!["a", "b"]);
        assert_eq!(ins.rows.len(), 1);
    }

    #[test]
    fn insert_batched() {
        let s = parse("INSERT INTO t (a) VALUES (1), (2), (3)");
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.rows.len(), 3);
    }

    #[test]
    fn insert_column_count_mismatch_rejected() {
        assert!(parse_statement("INSERT INTO t (a, b) VALUES (1)").is_err());
    }

    #[test]
    fn update_with_where() {
        let s = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 7");
        let Statement::Update(u) = s else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.where_clause.is_some());
    }

    #[test]
    fn delete_statement() {
        let s = parse("DELETE FROM t WHERE ts < 100");
        let Statement::Delete(d) = s else { panic!() };
        assert_eq!(d.table, "t");
    }

    #[test]
    fn in_list_and_subquery() {
        let s = parse("SELECT a FROM t WHERE a IN (1, 2, 3)");
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.where_clause, Some(Expr::InList { .. })));

        let s = parse("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = 1)");
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(sel.where_clause, Some(Expr::InSubquery { .. })));
    }

    #[test]
    fn not_in_negated() {
        let s = parse("SELECT a FROM t WHERE a NOT IN (1)");
        let Statement::Select(sel) = s else { panic!() };
        let Some(Expr::InList { negated, .. }) = sel.where_clause else { panic!() };
        assert!(negated);
    }

    #[test]
    fn between_like_isnull() {
        let s = parse(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND name LIKE 'J%' AND x IS NOT NULL",
        );
        let Statement::Select(sel) = s else { panic!() };
        let mut betweens = 0;
        let mut likes = 0;
        let mut nulls = 0;
        sel.where_clause.unwrap().walk(&mut |e| match e {
            Expr::Between { .. } => betweens += 1,
            Expr::Binary { op: BinaryOp::Like, .. } => likes += 1,
            Expr::IsNull { negated: true, .. } => nulls += 1,
            _ => {}
        });
        assert_eq!((betweens, likes, nulls), (1, 1, 1));
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let s = parse("SELECT a + b * c FROM t");
        let Statement::Select(sel) = s else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, right, .. } = &sel.items[0].expr else {
            panic!("expected top-level Add: {:?}", sel.items[0].expr)
        };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
        let Statement::Select(sel) = s else { panic!() };
        let Some(Expr::Binary { op: BinaryOp::Or, right, .. }) = sel.where_clause else {
            panic!()
        };
        assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn negative_literal_folded() {
        let s = parse("SELECT a FROM t WHERE a > -5");
        let Statement::Select(sel) = s else { panic!() };
        let Some(Expr::Binary { right, .. }) = sel.where_clause else { panic!() };
        assert_eq!(*right, Expr::Literal(Literal::Integer(-5)));
    }

    #[test]
    fn aggregates_and_functions() {
        let s = parse("SELECT COUNT(*), SUM(x), COALESCE(a, 0) FROM t");
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(&sel.items[0].expr, Expr::Function { name, .. } if name == "count"));
        assert!(matches!(&sel.items[1].expr, Expr::Function { name, .. } if name == "sum"));
    }

    #[test]
    fn count_distinct() {
        let s = parse("SELECT COUNT(DISTINCT user_id) FROM t");
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(&sel.items[0].expr, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn case_expression() {
        let s = parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t");
        let Statement::Select(sel) = s else { panic!() };
        assert!(matches!(&sel.items[0].expr, Expr::Case { .. }));
    }

    #[test]
    fn exists_subquery() {
        let s = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.t_id = t.id)");
        let Statement::Select(sel) = s else { panic!() };
        let mut found = false;
        sel.where_clause.unwrap().walk(&mut |e| {
            if matches!(e, Expr::Exists { .. }) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn placeholders_accepted() {
        let s = parse("SELECT a FROM t WHERE b = ? AND c IN (?, ?)");
        let Statement::Select(sel) = s else { panic!() };
        let mut n = 0;
        sel.where_clause.unwrap().walk(&mut |e| {
            if matches!(e, Expr::Placeholder) {
                n += 1;
            }
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn identifiers_lowercased() {
        let s = parse("SELECT Foo.Bar FROM FOO");
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.as_ref().unwrap().name, "foo");
        assert_eq!(sel.items[0].expr, Expr::qcol("foo", "bar"));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT 1;").is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1 garbage garbage").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn ddl_rejected() {
        assert!(parse_statement("CREATE TABLE t (a INT)").is_err());
        assert!(parse_statement("DROP TABLE t").is_err());
    }

    #[test]
    fn tables_includes_subqueries() {
        let s = parse("SELECT a FROM t WHERE a IN (SELECT b FROM u)");
        assert_eq!(s.tables(), vec!["t".to_string(), "u".to_string()]);
    }
}
