//! # qb-obs
//!
//! Zero-dependency observability for the QB5000 pipeline (std only,
//! matching `qb-parallel`'s style): counters, gauges, fixed-bucket
//! duration histograms, and lightweight span timers behind a cloneable
//! [`Recorder`] handle.
//!
//! ## Design
//!
//! * **Cheap when disabled.** [`Recorder::disabled`] hands out handles
//!   whose hot-path operations are a single `Option` check — no atomics,
//!   no clock reads. The default everywhere is disabled, so the pipeline
//!   pays nothing unless a caller opts in.
//! * **Thread-safe.** Every handle is `Send + Sync` and backed by atomics,
//!   so `qb-parallel` workers can record from fan-out tasks (per-horizon
//!   model fits, ensemble members) without coordination.
//! * **Handle-cached.** Components resolve their metric names once (at
//!   construction or instrumentation time) into [`Counter`] / [`Gauge`] /
//!   [`Histogram`] handles; the hot path touches only the handle's atomic,
//!   never a name lookup.
//! * **Deterministic snapshots.** [`Recorder::snapshot`] returns a
//!   [`MetricsSnapshot`] with sorted keys. Counter values, gauge values,
//!   and histogram *event counts* are bit-identical across worker-pool
//!   widths (the pipeline's determinism contract); only durations vary,
//!   and [`MetricsSnapshot::deterministic_view`] excludes exactly those.
//!
//! ```
//! use qb_obs::Recorder;
//!
//! let rec = Recorder::new();
//! let ingested = rec.counter("preprocessor.ingested");
//! let span = rec.histogram("preprocessor.ingest");
//! for _ in 0..3 {
//!     let _timer = span.start(); // records its duration on drop
//!     ingested.inc();
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counters["preprocessor.ingested"], 3);
//! assert_eq!(snap.histograms["preprocessor.ingest"].count, 3);
//! ```

pub mod rolling;
pub mod snapshot;

pub use rolling::RollingMean;
pub use snapshot::{HistogramSnapshot, MetricsDelta, MetricsSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default histogram bucket upper bounds, in nanoseconds: 1 µs … 10 s in
/// decades. An implicit +∞ bucket catches the remainder.
pub const DEFAULT_DURATION_BOUNDS_NANOS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// The metric registry behind an enabled recorder.
#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A cloneable handle onto one metric registry — or onto nothing at all
/// ([`Recorder::disabled`]), in which case every operation is a no-op.
///
/// Clones share the registry, so a recorder can be handed down through the
/// pipeline (Pre-Processor, Clusterer, Forecaster, controller) and every
/// stage's metrics land in one [`MetricsSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Registry>>,
}

impl Recorder {
    /// An enabled recorder with an empty registry.
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Registry::default())) }
    }

    /// The no-op recorder: handles it hands out skip all work. This is the
    /// `Default`, so instrumented components cost nothing until a caller
    /// explicitly installs an enabled recorder.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) a monotonically increasing
    /// counter. Resolve once and cache the handle; `inc`/`add` are then a
    /// single atomic op.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|r| {
                Arc::clone(
                    r.counters
                        .lock()
                        .expect("counter registry poisoned")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Resolves a counter carrying Prometheus-style labels. The labels
    /// become part of the registration key (see [`labeled_name`]), so each
    /// distinct label set is its own series and the text exposition emits
    /// one `# TYPE` line per family.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&labeled_name(name, labels))
    }

    /// Resolves (registering on first use) a last-value-wins gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|r| {
                Arc::clone(
                    r.gauges
                        .lock()
                        .expect("gauge registry poisoned")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Labeled variant of [`Recorder::gauge`]; see
    /// [`Recorder::counter_labeled`] for the key scheme.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&labeled_name(name, labels))
    }

    /// Resolves (registering on first use) a fixed-bucket duration
    /// histogram with the default decade bounds.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &DEFAULT_DURATION_BOUNDS_NANOS)
    }

    /// Like [`Recorder::histogram`] with explicit bucket upper bounds in
    /// nanoseconds (ascending). Bounds are fixed at registration; later
    /// calls with different bounds reuse the registered ones.
    pub fn histogram_with_bounds(&self, name: &str, bounds_nanos: &[u64]) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|r| {
                Arc::clone(
                    r.histograms
                        .lock()
                        .expect("histogram registry poisoned")
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistogramCore::new(bounds_nanos))),
                )
            }),
        }
    }

    /// One-shot span timer: resolves the histogram and starts a guard that
    /// records its lifetime on drop. For hot paths, cache the
    /// [`Histogram`] handle and call [`Histogram::start`] instead.
    pub fn span(&self, name: &str) -> SpanTimer {
        self.histogram(name).start()
    }

    /// A point-in-time, sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(r) = &self.inner else { return snap };
        for (k, v) in r.counters.lock().expect("counter registry poisoned").iter() {
            snap.counters.insert(k.clone(), v.load(Ordering::Relaxed));
        }
        for (k, v) in r.gauges.lock().expect("gauge registry poisoned").iter() {
            snap.gauges.insert(k.clone(), f64::from_bits(v.load(Ordering::Relaxed)));
        }
        for (k, h) in r.histograms.lock().expect("histogram registry poisoned").iter() {
            snap.histograms.insert(k.clone(), h.snapshot());
        }
        snap
    }
}

/// Builds the registration key for a labeled metric:
/// `name{k="v",...}`, with label *values* escaped per the Prometheus text
/// exposition format (backslash, double-quote, newline). Escaping happens
/// here — at registration — so hostile text (raw SQL fragments, template
/// bodies) can never corrupt the exposition output, and every exporter
/// sees an already-well-formed label block.
pub fn labeled_name(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&snapshot::escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge handle holding an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Stores `v` (last writer wins).
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.cell {
            c.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled or never set).
    pub fn get(&self) -> f64 {
        self.cell.as_ref().map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Lock-free fixed-bucket histogram over durations.
#[derive(Debug)]
struct HistogramCore {
    /// Ascending bucket upper bounds in nanoseconds; an implicit +∞ bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets (the last is the overflow bucket).
    buckets: Vec<AtomicU64>,
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn record_nanos(&self, nanos: u64) {
        let idx = self.bounds.partition_point(|&b| b < nanos);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds_nanos: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket duration histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        if let Some(h) = &self.cell {
            h.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts a span: the returned guard records its lifetime into this
    /// histogram when dropped. When the recorder is disabled the guard
    /// never reads the clock.
    pub fn start(&self) -> SpanTimer {
        SpanTimer {
            hist: self.cell.clone(),
            start: self.cell.as_ref().map(|_| Instant::now()),
        }
    }

    /// Observations recorded so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

/// RAII span guard: records the elapsed time since [`Histogram::start`]
/// into its histogram on drop. [`SpanTimer::finish`] drops it explicitly
/// for span ends that don't coincide with scope ends.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Option<Arc<HistogramCore>>,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let (Some(h), Some(t0)) = (&self.hist, self.start) {
            h.record_nanos(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = rec.gauge("y");
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = rec.histogram("z");
        h.start().finish();
        assert_eq!(h.count(), 0);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let rec = Recorder::new();
        let c = rec.counter("stage.events");
        c.inc();
        c.add(9);
        rec.gauge("stage.ratio").set(0.25);
        // A second handle onto the same name shares the cell.
        rec.counter("stage.events").add(10);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["stage.events"], 20);
        assert_eq!(snap.gauges["stage.ratio"], 0.25);
    }

    #[test]
    fn histogram_buckets_cumulate_correctly() {
        let rec = Recorder::new();
        let h = rec.histogram_with_bounds("lat", &[100, 1_000]);
        h.record(Duration::from_nanos(50)); // bucket 0 (≤100)
        h.record(Duration::from_nanos(100)); // bucket 0 (bound inclusive)
        h.record(Duration::from_nanos(999)); // bucket 1
        h.record(Duration::from_nanos(5_000)); // overflow bucket
        let s = rec.snapshot();
        let hs = &s.histograms["lat"];
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum_nanos, 50 + 100 + 999 + 5_000);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let rec = Recorder::new();
        let h = rec.histogram("span");
        {
            let _t = h.start();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        let snap = rec.snapshot();
        assert!(snap.histograms["span"].sum_nanos >= 1_000_000);
    }

    #[test]
    fn handles_record_from_worker_threads() {
        let rec = Recorder::new();
        let c = rec.counter("parallel.events");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counters["parallel.events"], 4000);
    }

    #[test]
    fn labeled_metrics_are_distinct_series() {
        let rec = Recorder::new();
        rec.counter_labeled("dumps", &[("reason", "diverged")]).inc();
        rec.counter_labeled("dumps", &[("reason", "degraded")]).add(2);
        rec.gauge_labeled("depth", &[("lane", "0")]).set(4.0);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["dumps{reason=\"diverged\"}"], 1);
        assert_eq!(snap.counters["dumps{reason=\"degraded\"}"], 2);
        assert_eq!(snap.gauges["depth{lane=\"0\"}"], 4.0);
    }

    #[test]
    fn labeled_name_escapes_values() {
        assert_eq!(labeled_name("m", &[]), "m");
        assert_eq!(
            labeled_name("m", &[("sql", "SELECT \"a\\b\"\nFROM t")]),
            "m{sql=\"SELECT \\\"a\\\\b\\\"\\nFROM t\"}"
        );
    }

    #[test]
    fn clones_share_one_registry() {
        let rec = Recorder::new();
        let clone = rec.clone();
        clone.counter("shared").add(7);
        assert_eq!(rec.snapshot().counters["shared"], 7);
    }
}
