//! Rolling windows for forecast-accuracy tracking.
//!
//! The paper evaluates prediction quality as log-space MSE per cluster and
//! horizon (Figure 7). In a continuously running pipeline the equivalent
//! is a *rolling* mean over the last `N` settled squared errors, so the
//! health report reflects recent accuracy rather than an all-time average
//! that a months-old regime change would dominate.

use std::collections::VecDeque;

/// A bounded rolling mean: push values, read the mean of the most recent
/// `capacity` of them.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingMean {
    capacity: usize,
    buf: VecDeque<f64>,
    /// Running sum of `buf`, maintained incrementally (add the arrival,
    /// subtract the eviction) and recomputed in full once per window
    /// turn — see `since_refresh`.
    sum: f64,
    /// Evictions since the last full re-sum. Incremental subtraction
    /// drifts when magnitudes differ wildly (evicting a 1e16 outlier
    /// cancels the small values absorbed into it), so once the window has
    /// fully turned over (`since_refresh == capacity`) the sum is
    /// recomputed from the surviving values. Any drift therefore clears
    /// within one window turn instead of compounding forever, while push
    /// stays O(1) amortized instead of O(capacity) per eviction.
    since_refresh: usize,
}

impl RollingMean {
    /// A window over the most recent `capacity` observations (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: VecDeque::with_capacity(capacity), sum: 0.0, since_refresh: 0 }
    }

    /// Pushes one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, v: f64) {
        self.buf.push_back(v);
        if self.buf.len() > self.capacity {
            let evicted = self.buf.pop_front().unwrap_or(0.0);
            self.since_refresh += 1;
            if self.since_refresh >= self.capacity {
                // Wraparound: the window turned over completely since the
                // last exact sum — recompute to cancel accumulated drift.
                self.sum = self.buf.iter().sum();
                self.since_refresh = 0;
            } else {
                self.sum += v;
                self.sum -= evicted;
            }
        } else {
            self.sum += v;
        }
    }

    /// Mean of the windowed observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The windowed observations, oldest first (for state snapshots).
    pub fn values(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// The current running sum. Exposed alongside [`Self::values`] so a
    /// restored window reproduces the live one bit-for-bit: the running
    /// sum depends on push/eviction history, not just the surviving
    /// values, and re-summing on restore could diverge in the last ulp.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Evictions since the last full re-sum — part of the window's exact
    /// state: it schedules the next wraparound recompute, so a restore
    /// that reset it would re-sum at a different push than the live
    /// window and diverge in the last ulp.
    pub fn since_refresh(&self) -> usize {
        self.since_refresh
    }

    /// Rebuilds a window from a snapshot taken via [`Self::values`] /
    /// [`Self::sum`] / [`Self::since_refresh`]. Values beyond `capacity`
    /// keep only the newest (with an exact re-sum, since the saved sum no
    /// longer describes the surviving values).
    pub fn from_parts(capacity: usize, values: &[f64], sum: f64, since_refresh: usize) -> Self {
        let capacity = capacity.max(1);
        let start = values.len().saturating_sub(capacity);
        let buf: VecDeque<f64> = values[start..].iter().copied().collect();
        let (sum, since_refresh) = if start == 0 {
            (sum, since_refresh.min(capacity - 1))
        } else {
            (buf.iter().sum(), 0)
        };
        Self { capacity, buf, sum, since_refresh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_mean() {
        assert_eq!(RollingMean::new(4).mean(), None);
    }

    #[test]
    fn mean_over_partial_window() {
        let mut w = RollingMean::new(4);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = RollingMean::new(3);
        for v in [10.0, 1.0, 2.0, 3.0] {
            w.push(v);
        }
        // 10.0 evicted; mean of [1,2,3].
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let mut w = RollingMean::new(3);
        for v in [0.1, 0.2, 0.3, 0.4] {
            w.push(v);
        }
        let r = RollingMean::from_parts(w.capacity(), &w.values(), w.sum(), w.since_refresh());
        assert_eq!(r, w);
        // Both continue identically after restore — including through the
        // wraparound re-sum, whose schedule `since_refresh` carries.
        let (mut a, mut b) = (w, r);
        for v in [0.7, 0.8, 0.9, 1.1] {
            a.push(v);
            b.push(v);
            assert_eq!(a, b);
            assert_eq!(a.mean(), b.mean());
        }
    }

    #[test]
    fn wraparound_resum_clears_outlier_drift() {
        // Incremental subtraction alone never recovers from this: the
        // small values absorbed into 1e16 vanish when it is evicted
        // (1e16 + 1.0 == 1e16 in f64), leaving sum == 0 for a window of
        // ones. The wraparound re-sum must restore the exact mean within
        // one full window turn.
        const CAP: usize = 8;
        let mut w = RollingMean::new(CAP);
        w.push(1e16);
        for _ in 0..CAP - 1 {
            w.push(1.0);
        }
        // Evict the outlier; the window is now all ones but the
        // incremental sum is poisoned until the next wraparound.
        w.push(1.0);
        for _ in 0..CAP {
            w.push(1.0);
        }
        assert_eq!(w.mean(), Some(1.0), "drift must clear within one window turn");
        assert_eq!(w.sum(), CAP as f64);
    }

    #[test]
    fn truncating_restore_resums_exactly() {
        // More values than capacity: the stored sum describes a window
        // that no longer exists, so the restore re-sums the survivors.
        let r = RollingMean::from_parts(2, &[5.0, 1.0, 2.0], 8.0, 1);
        assert_eq!(r.values(), vec![1.0, 2.0]);
        assert_eq!(r.sum(), 3.0);
        assert_eq!(r.since_refresh(), 0);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut w = RollingMean::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(5.0);
        w.push(7.0);
        assert_eq!(w.mean(), Some(7.0));
    }
}
