//! Rolling windows for forecast-accuracy tracking.
//!
//! The paper evaluates prediction quality as log-space MSE per cluster and
//! horizon (Figure 7). In a continuously running pipeline the equivalent
//! is a *rolling* mean over the last `N` settled squared errors, so the
//! health report reflects recent accuracy rather than an all-time average
//! that a months-old regime change would dominate.

use std::collections::VecDeque;

/// A bounded rolling mean: push values, read the mean of the most recent
/// `capacity` of them.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingMean {
    capacity: usize,
    buf: VecDeque<f64>,
    /// Running sum of `buf` (recomputed on eviction to bound float drift).
    sum: f64,
}

impl RollingMean {
    /// A window over the most recent `capacity` observations (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: VecDeque::with_capacity(capacity), sum: 0.0 }
    }

    /// Pushes one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, v: f64) {
        self.buf.push_back(v);
        if self.buf.len() > self.capacity {
            self.buf.pop_front();
            // Re-sum instead of subtracting: repeated subtraction of
            // floats drifts; the window is small so this stays cheap.
            self.sum = self.buf.iter().sum();
        } else {
            self.sum += v;
        }
    }

    /// Mean of the windowed observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_mean() {
        assert_eq!(RollingMean::new(4).mean(), None);
    }

    #[test]
    fn mean_over_partial_window() {
        let mut w = RollingMean::new(4);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = RollingMean::new(3);
        for v in [10.0, 1.0, 2.0, 3.0] {
            w.push(v);
        }
        // 10.0 evicted; mean of [1,2,3].
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut w = RollingMean::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(5.0);
        w.push(7.0);
        assert_eq!(w.mean(), Some(7.0));
    }
}
