//! Rolling windows for forecast-accuracy tracking.
//!
//! The paper evaluates prediction quality as log-space MSE per cluster and
//! horizon (Figure 7). In a continuously running pipeline the equivalent
//! is a *rolling* mean over the last `N` settled squared errors, so the
//! health report reflects recent accuracy rather than an all-time average
//! that a months-old regime change would dominate.

use std::collections::VecDeque;

/// A bounded rolling mean: push values, read the mean of the most recent
/// `capacity` of them.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingMean {
    capacity: usize,
    buf: VecDeque<f64>,
    /// Running sum of `buf` (recomputed on eviction to bound float drift).
    sum: f64,
}

impl RollingMean {
    /// A window over the most recent `capacity` observations (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { capacity, buf: VecDeque::with_capacity(capacity), sum: 0.0 }
    }

    /// Pushes one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, v: f64) {
        self.buf.push_back(v);
        if self.buf.len() > self.capacity {
            self.buf.pop_front();
            // Re-sum instead of subtracting: repeated subtraction of
            // floats drifts; the window is small so this stays cheap.
            self.sum = self.buf.iter().sum();
        } else {
            self.sum += v;
        }
    }

    /// Mean of the windowed observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The windowed observations, oldest first (for state snapshots).
    pub fn values(&self) -> Vec<f64> {
        self.buf.iter().copied().collect()
    }

    /// The current running sum. Exposed alongside [`Self::values`] so a
    /// restored window reproduces the live one bit-for-bit: the running
    /// sum depends on push/eviction history, not just the surviving
    /// values, and re-summing on restore could diverge in the last ulp.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Rebuilds a window from a snapshot taken via [`Self::values`] /
    /// [`Self::sum`]. Values beyond `capacity` keep only the newest.
    pub fn from_parts(capacity: usize, values: &[f64], sum: f64) -> Self {
        let capacity = capacity.max(1);
        let start = values.len().saturating_sub(capacity);
        let buf: VecDeque<f64> = values[start..].iter().copied().collect();
        let sum = if start == 0 { sum } else { buf.iter().sum() };
        Self { capacity, buf, sum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_mean() {
        assert_eq!(RollingMean::new(4).mean(), None);
    }

    #[test]
    fn mean_over_partial_window() {
        let mut w = RollingMean::new(4);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut w = RollingMean::new(3);
        for v in [10.0, 1.0, 2.0, 3.0] {
            w.push(v);
        }
        // 10.0 evicted; mean of [1,2,3].
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn parts_round_trip_is_exact() {
        let mut w = RollingMean::new(3);
        for v in [0.1, 0.2, 0.3, 0.4] {
            w.push(v);
        }
        let r = RollingMean::from_parts(w.capacity(), &w.values(), w.sum());
        assert_eq!(r, w);
        // Both continue identically after restore.
        let (mut a, mut b) = (w, r);
        a.push(0.7);
        b.push(0.7);
        assert_eq!(a, b);
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut w = RollingMean::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(5.0);
        w.push(7.0);
        assert_eq!(w.mean(), Some(7.0));
    }
}
