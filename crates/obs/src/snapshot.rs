//! Deterministic metric snapshots with JSON and Prometheus-text
//! exposition.
//!
//! A [`MetricsSnapshot`] is an owned, sorted copy of the registry: safe to
//! ship across threads, diff between runs, or serialize. The pipeline's
//! determinism contract says counter values, gauge values, and histogram
//! event counts are bit-identical across worker-pool widths;
//! [`MetricsSnapshot::deterministic_view`] renders exactly that subset so
//! tests can assert equality without tripping over wall-clock durations.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram's state: fixed bucket bounds (nanoseconds, ascending,
/// with an implicit +∞ bucket at the end), per-bucket counts, total
/// duration, and event count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub bounds_nanos: Vec<u64>,
    /// `bounds_nanos.len() + 1` entries; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    pub sum_nanos: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation in milliseconds (0.0 when empty).
    pub fn mean_millis(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64 / 1e6
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The deterministic subset as a stable, line-oriented text: counters,
    /// gauges (as exact bit patterns), and histogram event counts — but no
    /// durations or bucket distributions, which legitimately vary run to
    /// run. Two pipeline runs that differ only in thread count must
    /// produce identical views.
    pub fn deterministic_view(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} bits={:#018x}", v.to_bits());
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "events {k} {}", h.count);
        }
        out
    }

    /// Serializes the full snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    ///
    /// Hand-rolled (the workspace is dependency-free); metric names pass
    /// through a minimal string escape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            let _ = write!(out, "{}", json_f64(**v));
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"bounds_nanos\":{:?},\"buckets\":{:?},\"sum_nanos\":{},\"count\":{}}}",
                h.bounds_nanos, h.buckets, h.sum_nanos, h.count
            );
        });
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (metric names sanitized to `[a-zA-Z0-9_]`, histogram buckets
    /// cumulative with `le` labels in seconds).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", json_f64(*v));
        }
        for (k, h) in &self.histograms {
            let name = format!("{}_seconds", prom_name(k));
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (i, count) in h.buckets.iter().enumerate() {
                cum += count;
                match h.bounds_nanos.get(i) {
                    Some(b) => {
                        let _ =
                            writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", *b as f64 / 1e9);
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum_nanos as f64 / 1e9);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// A compact human-readable stage breakdown: every histogram as
    /// `name: count × mean`, every counter and gauge on its own line.
    /// This is what `qb-bench` prints after an experiment run.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  stage timings:");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {k:<40} {:>8} calls  {:>10.3} ms mean  {:>10.1} ms total",
                    h.count,
                    h.mean_millis(),
                    h.sum_nanos as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "    {k:<40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "    {k:<40} {v:>12.6}");
            }
        }
        out
    }
}

/// Writes `"key":value` entries joined by commas, using `f` to render the
/// value.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    f: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        json_escape_into(out, k);
        out.push_str("\":");
        f(out, &v);
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON has no NaN/∞ literals; map them to null so the output stays
/// parseable even if a gauge goes non-finite.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let rec = Recorder::new();
        rec.counter("a.count").add(3);
        rec.gauge("b.ratio").set(0.5);
        let h = rec.histogram_with_bounds("c.time", &[1_000, 1_000_000]);
        h.record(Duration::from_nanos(500));
        h.record(Duration::from_micros(500));
        h.record(Duration::from_millis(5));
        rec.snapshot()
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.count\":3},\"gauges\":{\"b.ratio\":0.5},\
             \"histograms\":{\"c.time\":{\"bounds_nanos\":[1000, 1000000],\
             \"buckets\":[1, 1, 1],\"sum_nanos\":5500500,\"count\":3}}}"
        );
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("we\"ird\\name".into(), 1);
        snap.gauges.insert("g".into(), f64::NAN);
        let json = snap.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
        assert!(json.contains("\"g\":null"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE a_count counter"));
        assert!(prom.contains("a_count 3"));
        assert!(prom.contains("# TYPE b_ratio gauge"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"0.000001\"} 1"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"0.001\"} 2"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("c_time_seconds_count 3"));
    }

    #[test]
    fn deterministic_view_excludes_durations() {
        let a = sample();
        let mut b = a.clone();
        // Perturb only timing data: the view must not change.
        if let Some(h) = b.histograms.get_mut("c.time") {
            h.sum_nanos += 12345;
            h.buckets = vec![0, 2, 1];
        }
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        // But a count change must show.
        if let Some(h) = b.histograms.get_mut("c.time") {
            h.count += 1;
        }
        assert_ne!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let table = sample().render_table();
        assert!(table.contains("a.count"));
        assert!(table.contains("b.ratio"));
        assert!(table.contains("c.time"));
    }

    #[test]
    fn mean_millis() {
        let h = HistogramSnapshot {
            bounds_nanos: vec![],
            buckets: vec![2],
            sum_nanos: 4_000_000,
            count: 2,
        };
        assert_eq!(h.mean_millis(), 2.0);
        assert_eq!(HistogramSnapshot::default().mean_millis(), 0.0);
    }
}
