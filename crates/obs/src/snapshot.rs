//! Deterministic metric snapshots with JSON and Prometheus-text
//! exposition.
//!
//! A [`MetricsSnapshot`] is an owned, sorted copy of the registry: safe to
//! ship across threads, diff between runs, or serialize. The pipeline's
//! determinism contract says counter values, gauge values, and histogram
//! event counts are bit-identical across worker-pool widths;
//! [`MetricsSnapshot::deterministic_view`] renders exactly that subset so
//! tests can assert equality without tripping over wall-clock durations.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram's state: fixed bucket bounds (nanoseconds, ascending,
/// with an implicit +∞ bucket at the end), per-bucket counts, total
/// duration, and event count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub bounds_nanos: Vec<u64>,
    /// `bounds_nanos.len() + 1` entries; the last is the overflow bucket.
    pub buckets: Vec<u64>,
    pub sum_nanos: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observation in milliseconds (0.0 when empty).
    pub fn mean_millis(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64 / 1e6
        }
    }

    /// Estimated `q`-quantile in nanoseconds, by linear interpolation
    /// inside the bucket holding the target rank (the same estimator as
    /// Prometheus' `histogram_quantile`). `q` is clamped to `[0, 1]`.
    ///
    /// Returns `None` when the histogram is empty, and — matching
    /// Prometheus — the largest *finite* bound when the rank lands in the
    /// `+∞` overflow bucket (`None` if no finite bound exists, i.e. the
    /// histogram is a single overflow bucket).
    pub fn quantile_nanos(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let lower = if i == 0 { 0.0 } else { self.bounds_nanos[i - 1] as f64 };
            cum += n;
            if (cum as f64) < target {
                continue;
            }
            return match self.bounds_nanos.get(i) {
                Some(&upper) => {
                    // Rank position inside this bucket, in (0, 1].
                    let frac = (target - (cum - n) as f64) / n as f64;
                    Some(lower + (upper as f64 - lower) * frac)
                }
                // Overflow bucket: no upper bound to interpolate toward.
                None => self.bounds_nanos.last().map(|&b| b as f64),
            };
        }
        // Bucket counts always sum to `count`; unreachable unless the
        // snapshot was assembled by hand inconsistently.
        None
    }

    /// The per-bucket/count/sum increments from `prev` to `self`
    /// (element-wise saturating subtraction; a bound-shape change —
    /// impossible for live registries, whose bounds are fixed at
    /// registration — falls back to `self` verbatim).
    pub fn diff(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds_nanos != prev.bounds_nanos || self.buckets.len() != prev.buckets.len() {
            return self.clone();
        }
        HistogramSnapshot {
            bounds_nanos: self.bounds_nanos.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&prev.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum_nanos: self.sum_nanos.saturating_sub(prev.sum_nanos),
            count: self.count.saturating_sub(prev.count),
        }
    }
}

/// The change between two [`MetricsSnapshot`]s: counter and histogram
/// *increments*, plus the gauge *levels* at the newer snapshot (gauges
/// are instantaneous readings — an arithmetic difference of levels has no
/// meaning, so the delta carries the observed value).
///
/// This is the retention unit of a metrics history ring: a sequence of
/// deltas keyed by round reconstructs any windowed rate or level query
/// without storing full snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDelta {
    /// Counter increments since the previous snapshot. Counters absent
    /// from the previous snapshot count from zero; counters that vanished
    /// (impossible for live registries) are dropped.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels at the newer snapshot.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram bucket/count/sum increments since the previous snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsDelta {
    /// True when nothing changed and no gauge is set — the delta carries
    /// no information.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The deterministic subset as a stable, line-oriented text: counters,
    /// gauges (as exact bit patterns), and histogram event counts — but no
    /// durations or bucket distributions, which legitimately vary run to
    /// run. Two pipeline runs that differ only in thread count must
    /// produce identical views.
    pub fn deterministic_view(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} bits={:#018x}", v.to_bits());
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "events {k} {}", h.count);
        }
        out
    }

    /// The change from `prev` to `self` as a [`MetricsDelta`]: counter
    /// and histogram increments (saturating — a restarted registry reads
    /// as increment 0, not underflow), gauge levels verbatim. Zero
    /// counter increments and unchanged histograms are dropped so a
    /// quiet round produces a small delta.
    pub fn diff(&self, prev: &MetricsSnapshot) -> MetricsDelta {
        let mut delta = MetricsDelta::default();
        for (k, &v) in &self.counters {
            let inc = v.saturating_sub(prev.counters.get(k).copied().unwrap_or(0));
            if inc > 0 || !prev.counters.contains_key(k) {
                delta.counters.insert(k.clone(), inc);
            }
        }
        delta.gauges = self.gauges.clone();
        for (k, h) in &self.histograms {
            let d = match prev.histograms.get(k) {
                Some(p) => h.diff(p),
                None => h.clone(),
            };
            if d.count > 0 || !prev.histograms.contains_key(k) {
                delta.histograms.insert(k.clone(), d);
            }
        }
        delta
    }

    /// Serializes the full snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    ///
    /// Hand-rolled (the workspace is dependency-free); metric names pass
    /// through a minimal string escape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            let _ = write!(out, "{}", json_f64(**v));
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"bounds_nanos\":{:?},\"buckets\":{:?},\"sum_nanos\":{},\"count\":{}}}",
                h.bounds_nanos, h.buckets, h.sum_nanos, h.count
            );
        });
        out.push_str("}}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (metric names sanitized to `[a-zA-Z0-9_]`, histogram buckets
    /// cumulative with `le` labels in seconds).
    ///
    /// Registry keys of the form `name{k="v",...}` — as produced by
    /// [`crate::labeled_name`], which escapes backslash, double-quote,
    /// and newline in label values per the exposition format — are split
    /// into a sanitized family name plus the pre-escaped label block, so
    /// hostile label text (quotes, backslashes, newlines from raw SQL)
    /// cannot break the line-oriented format. Series of one family are
    /// grouped under a single `# TYPE` line regardless of key sort order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, series) in group_families(&self.counters) {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, v) in series {
                let _ = writeln!(out, "{name}{labels} {v}");
            }
        }
        for (name, series) in group_families(&self.gauges) {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (labels, v) in series {
                let _ = writeln!(out, "{name}{labels} {}", prom_f64(*v));
            }
        }
        for (name, series) in group_families(&self.histograms) {
            let name = format!("{name}_seconds");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (labels, h) in series {
                // `le` joins any labels the series already carries.
                let le = |bound: &str| {
                    if labels.is_empty() {
                        format!("{{le=\"{bound}\"}}")
                    } else {
                        format!("{},le=\"{bound}\"}}", &labels[..labels.len() - 1])
                    }
                };
                let mut cum = 0u64;
                for (i, count) in h.buckets.iter().enumerate() {
                    cum += count;
                    match h.bounds_nanos.get(i) {
                        Some(b) => {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                le(&format!("{}", *b as f64 / 1e9))
                            );
                        }
                        None => {
                            let _ = writeln!(out, "{name}_bucket{} {cum}", le("+Inf"));
                        }
                    }
                }
                let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_nanos as f64 / 1e9);
                let _ = writeln!(out, "{name}_count{labels} {}", h.count);
            }
        }
        out
    }

    /// A compact human-readable stage breakdown: every histogram as
    /// `name: count × mean`, every counter and gauge on its own line.
    /// This is what `qb-bench` prints after an experiment run.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  stage timings:");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {k:<40} {:>8} calls  {:>10.3} ms mean  {:>10.1} ms total",
                    h.count,
                    h.mean_millis(),
                    h.sum_nanos as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "    {k:<40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "  gauges:");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "    {k:<40} {v:>12.6}");
            }
        }
        out
    }
}

/// Writes `"key":value` entries joined by commas, using `f` to render the
/// value.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    f: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        json_escape_into(out, k);
        out.push_str("\":");
        f(out, &v);
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON has no NaN/∞ literals; map them to null so the output stays
/// parseable even if a gauge goes non-finite.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The Prometheus text format *does* have non-finite literals — a
/// non-finite gauge must scrape as `NaN`/`+Inf`/`-Inf`, not break the
/// line format.
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Escapes a label *value* per the Prometheus text exposition format:
/// backslash → `\\`, double-quote → `\"`, newline → `\n`. Everything else
/// passes through untouched.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry key into `(sanitized family name, label block)`; the
/// label block (braces included) is empty for unlabeled metrics. Only the
/// family-name half passes through [`prom_name`] — the label block was
/// escaped at registration and must not be re-mangled.
fn split_labeled_key(key: &str) -> (String, String) {
    match key.split_once('{') {
        Some((base, rest)) => (prom_name(base), format!("{{{rest}")),
        None => (prom_name(key), String::new()),
    }
}

/// Groups registry entries by sanitized family name so each family emits
/// exactly one `# TYPE` line, even when an unrelated key sorts between two
/// of its labeled series (`"a_z"` orders between `"a"` and `"a{…"`).
fn group_families<V>(entries: &BTreeMap<String, V>) -> BTreeMap<String, Vec<(String, &V)>> {
    let mut families: BTreeMap<String, Vec<(String, &V)>> = BTreeMap::new();
    for (k, v) in entries {
        let (name, labels) = split_labeled_key(k);
        families.entry(name).or_default().push((labels, v));
    }
    families
}

/// Prometheus metric names: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::time::Duration;

    fn sample() -> MetricsSnapshot {
        let rec = Recorder::new();
        rec.counter("a.count").add(3);
        rec.gauge("b.ratio").set(0.5);
        let h = rec.histogram_with_bounds("c.time", &[1_000, 1_000_000]);
        h.record(Duration::from_nanos(500));
        h.record(Duration::from_micros(500));
        h.record(Duration::from_millis(5));
        rec.snapshot()
    }

    #[test]
    fn json_shape() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.count\":3},\"gauges\":{\"b.ratio\":0.5},\
             \"histograms\":{\"c.time\":{\"bounds_nanos\":[1000, 1000000],\
             \"buckets\":[1, 1, 1],\"sum_nanos\":5500500,\"count\":3}}}"
        );
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("we\"ird\\name".into(), 1);
        snap.gauges.insert("g".into(), f64::NAN);
        let json = snap.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
        assert!(json.contains("\"g\":null"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE a_count counter"));
        assert!(prom.contains("a_count 3"));
        assert!(prom.contains("# TYPE b_ratio gauge"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"0.000001\"} 1"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"0.001\"} 2"));
        assert!(prom.contains("c_time_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("c_time_seconds_count 3"));
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        let rec = Recorder::new();
        // Hostile template text: embedded quotes, a backslash escape, and
        // a newline — any of which would corrupt the line-oriented format
        // if emitted raw.
        let sql = "SELECT \"name\\id\" FROM t\nWHERE x = 'a\"b'";
        rec.counter_labeled("quarantine.rejected", &[("template", sql)]).add(7);
        let prom = rec.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE quarantine_rejected counter"));
        let series = prom
            .lines()
            .find(|l| l.starts_with("quarantine_rejected{"))
            .expect("labeled series emitted");
        assert_eq!(
            series,
            "quarantine_rejected{template=\"SELECT \\\"name\\\\id\\\" FROM t\\nWHERE \
             x = 'a\\\"b'\"} 7"
        );
        // The hostile value stays on one physical line.
        assert!(!series.contains('\n'));
    }

    #[test]
    fn prometheus_groups_labeled_families_under_one_type_line() {
        let rec = Recorder::new();
        rec.counter_labeled("dumps", &[("reason", "diverged")]).inc();
        rec.counter_labeled("dumps", &[("reason", "degraded")]).add(2);
        // Sorts between "dumps" and "dumps{" — must not split the family.
        rec.counter("dumps_total").add(3);
        let prom = rec.snapshot().to_prometheus();
        assert_eq!(prom.matches("# TYPE dumps counter").count(), 1);
        assert!(prom.contains("dumps{reason=\"degraded\"} 2"));
        assert!(prom.contains("dumps{reason=\"diverged\"} 1"));
        assert!(prom.contains("# TYPE dumps_total counter"));
    }

    #[test]
    fn prometheus_labeled_histogram_merges_le_label() {
        let rec = Recorder::new();
        let key = crate::labeled_name("fit", &[("horizon", "1h")]);
        let h = rec.histogram_with_bounds(&key, &[1_000]);
        h.record(Duration::from_nanos(10));
        let prom = rec.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE fit_seconds histogram"));
        assert!(prom.contains("fit_seconds_bucket{horizon=\"1h\",le=\"0.000001\"} 1"));
        assert!(prom.contains("fit_seconds_bucket{horizon=\"1h\",le=\"+Inf\"} 1"));
        assert!(prom.contains("fit_seconds_count{horizon=\"1h\"} 1"));
    }

    #[test]
    fn escape_label_value_round_trips_plain_text() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn deterministic_view_excludes_durations() {
        let a = sample();
        let mut b = a.clone();
        // Perturb only timing data: the view must not change.
        if let Some(h) = b.histograms.get_mut("c.time") {
            h.sum_nanos += 12345;
            h.buckets = vec![0, 2, 1];
        }
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        // But a count change must show.
        if let Some(h) = b.histograms.get_mut("c.time") {
            h.count += 1;
        }
        assert_ne!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let table = sample().render_table();
        assert!(table.contains("a.count"));
        assert!(table.contains("b.ratio"));
        assert!(table.contains("c.time"));
    }

    fn hist(bounds: &[u64], buckets: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds_nanos: bounds.to_vec(),
            buckets: buckets.to_vec(),
            sum_nanos: 0,
            count: buckets.iter().sum(),
        }
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        assert_eq!(HistogramSnapshot::default().quantile_nanos(0.5), None);
        assert_eq!(hist(&[1_000], &[0, 0]).quantile_nanos(0.99), None);
    }

    #[test]
    fn quantile_exact_boundary_returns_the_bound() {
        // One observation per bucket: the 1/3-quantile rank lands exactly
        // on the first bucket's upper edge.
        let h = hist(&[1_000, 1_000_000], &[1, 1, 1]);
        assert_eq!(h.quantile_nanos(1.0 / 3.0), Some(1_000.0));
        assert_eq!(h.quantile_nanos(2.0 / 3.0), Some(1_000_000.0));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // All 4 observations in the (1000, 2000] bucket: p50's rank (2 of
        // 4) sits halfway through it.
        let h = hist(&[1_000, 2_000], &[0, 4, 0]);
        assert_eq!(h.quantile_nanos(0.5), Some(1_500.0));
        assert_eq!(h.quantile_nanos(0.25), Some(1_250.0));
        assert_eq!(h.quantile_nanos(1.0), Some(2_000.0));
        // First bucket interpolates from an implicit lower bound of 0.
        let low = hist(&[1_000], &[2, 0]);
        assert_eq!(low.quantile_nanos(0.5), Some(500.0));
    }

    #[test]
    fn quantile_overflow_bucket_clamps_to_last_finite_bound() {
        let h = hist(&[1_000, 1_000_000], &[0, 0, 5]);
        assert_eq!(h.quantile_nanos(0.99), Some(1_000_000.0));
        // A histogram that is nothing but an overflow bucket has no
        // finite bound to report.
        assert_eq!(hist(&[], &[3]).quantile_nanos(0.5), None);
    }

    #[test]
    fn diff_yields_counter_and_bucket_increments() {
        let rec = Recorder::new();
        let c = rec.counter("a.count");
        let g = rec.gauge("b.level");
        let h = rec.histogram_with_bounds("c.time", &[1_000]);
        c.add(3);
        g.set(1.5);
        h.record(Duration::from_nanos(10));
        let before = rec.snapshot();
        c.add(2);
        g.set(9.0);
        h.record(Duration::from_micros(5));
        let after = rec.snapshot();
        let delta = after.diff(&before);
        assert_eq!(delta.counters.get("a.count"), Some(&2));
        assert_eq!(delta.gauges.get("b.level"), Some(&9.0), "gauges carry levels, not diffs");
        let hd = &delta.histograms["c.time"];
        assert_eq!(hd.count, 1);
        assert_eq!(hd.buckets, vec![0, 1]);
        // A quiet round drops unchanged series entirely.
        let quiet = after.diff(&after);
        assert!(quiet.counters.is_empty());
        assert!(quiet.histograms.is_empty());
        assert!(!quiet.gauges.is_empty(), "gauge levels persist across quiet rounds");
    }

    #[test]
    fn diff_saturates_across_a_registry_restart() {
        let mut prev = MetricsSnapshot::default();
        prev.counters.insert("a".into(), 100);
        let mut cur = MetricsSnapshot::default();
        cur.counters.insert("a".into(), 10); // restarted: went backwards
        cur.counters.insert("b".into(), 0); // new, still zero
        let delta = cur.diff(&prev);
        assert_eq!(delta.counters.get("a"), None, "zero increment on a known counter drops");
        assert_eq!(delta.counters.get("b"), Some(&0), "new counters appear even at zero");
    }

    #[test]
    fn mean_millis() {
        let h = HistogramSnapshot {
            bounds_nanos: vec![],
            buckets: vec![2],
            sum_nanos: 4_000_000,
            count: 2,
        };
        assert_eq!(h.mean_millis(), 2.0);
        assert_eq!(HistogramSnapshot::default().mean_millis(), 0.0);
    }
}
