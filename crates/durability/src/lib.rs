//! # qb-durable
//!
//! Durable storage primitives for the QB5000 pipeline (std only, zero
//! deps): a versioned, checksummed snapshot format with atomic rotation,
//! an append-only CRC-framed write-ahead log with torn-tail detection, and
//! an I/O-boundary fault hook so tests can crash the pipeline at every
//! physical step without killing a process.
//!
//! ## Design
//!
//! * **Everything is length-prefixed and CRC-checked.** A WAL frame or a
//!   snapshot either validates byte-for-byte or is discarded; there is no
//!   "partially trusted" state.
//! * **Torn tails truncate, they never poison.** [`Wal::open`] scans the
//!   existing file and keeps exactly the prefix of valid frames; a torn or
//!   bit-flipped tail (crash mid-append, corrupted sector) is cut off at
//!   the last valid frame boundary.
//! * **Snapshots rotate atomically.** [`write_snapshot`] writes to a
//!   temp file, fsyncs it, renames it into place, and fsyncs the
//!   directory — a crash at any point leaves either the old snapshot or
//!   the new one, never a half-written hybrid. [`load_latest_snapshot`]
//!   falls back to the newest *valid* snapshot if the latest is corrupt.
//! * **Sequence numbers make replay idempotent.** Every WAL frame carries
//!   a monotonic sequence number; a snapshot records the last sequence it
//!   folded in. Recovery replays only frames *past* the snapshot, so a
//!   crash between snapshot rename and WAL rotation cannot double-apply
//!   (the satellite "no quarantine double-count" guarantee).
//! * **Crashes are injected, not simulated.** Writers consult a
//!   [`FaultHook`] at each [`IoPoint`]; "crash" means the operation stops
//!   with [`DurabilityError::InjectedCrash`] leaving the file exactly as
//!   built so far (e.g. [`IoPoint::WalFrameHalf`] leaves a torn frame).

pub mod codec;
pub mod fault;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{crc32, CodecError, Dec, Enc};
pub use fault::{FaultHook, IoPoint};
pub use snapshot::{load_latest_snapshot, write_snapshot, Snapshot};
pub use store::{DurableStore, RecoveredState, StoreStats};
pub use wal::{Wal, WalFrame};

/// Unified error type for durability operations.
#[derive(Debug)]
pub enum DurabilityError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A frame or snapshot failed structural validation (bad magic,
    /// unsupported version, CRC mismatch, implausible length).
    Corrupt(String),
    /// A payload decoded structurally but not logically.
    Codec(CodecError),
    /// A [`FaultHook`] demanded a crash at this I/O boundary. The on-disk
    /// state is exactly what the completed steps before the boundary left.
    InjectedCrash(IoPoint),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "i/o failure: {e}"),
            DurabilityError::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            DurabilityError::Codec(e) => write!(f, "payload decode failed: {e}"),
            DurabilityError::InjectedCrash(p) => write!(f, "injected crash at {p:?}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}

impl DurabilityError {
    /// Whether this error is an injected crash (test harnesses treat those
    /// as "the process died here", every other variant as a real failure).
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, DurabilityError::InjectedCrash(_))
    }
}
