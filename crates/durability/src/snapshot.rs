//! Versioned, checksummed snapshots with atomic rotation.
//!
//! File layout (little-endian):
//!
//! ```text
//! [4B magic "QBSN"][u16 version][u64 seq][u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! A snapshot is written to `<name>.tmp`, fully fsynced, renamed to
//! `snap-<seq>.qbs`, and the directory entry is fsynced — so a crash at
//! any boundary leaves either the previous snapshot or the complete new
//! one, never a hybrid. Loading walks snapshots newest-first and returns
//! the first one that validates, so a corrupted latest snapshot degrades
//! to the previous good one instead of failing recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, MAX_LEN};
use crate::fault::{check, FaultHook, IoPoint};
use crate::DurabilityError;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"QBSN";
/// Current snapshot format version. Bump on any layout change; decoders
/// reject versions they do not know (no silent misinterpretation).
pub const SNAPSHOT_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 8 + 4 + 4;

/// One loaded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Last WAL sequence number folded into this snapshot. Replay skips
    /// frames with `seq <= this`.
    pub seq: u64,
    /// Caller-defined state bytes.
    pub payload: Vec<u8>,
}

/// The final file name for a snapshot at `seq`. Zero-padded so
/// lexicographic order equals numeric order.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snap-{seq:020}.qbs")
}

/// Parses a `seq` back out of a snapshot file name.
pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".qbs")?.parse().ok()
}

/// Writes the snapshot for `seq` atomically into `dir` and returns its
/// final path. Consults `hook` at every I/O boundary.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    payload: &[u8],
    hook: &FaultHook,
) -> Result<PathBuf, DurabilityError> {
    check(hook, IoPoint::SnapshotStart)?;
    let final_path = dir.join(snapshot_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(seq)));
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let mut tmp = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp_path)?;
    tmp.write_all(&bytes)?;
    check(hook, IoPoint::SnapshotTempWritten)?;
    tmp.sync_all()?;
    drop(tmp);
    check(hook, IoPoint::SnapshotTempSynced)?;
    fs::rename(&tmp_path, &final_path)?;
    check(hook, IoPoint::SnapshotRenamed)?;
    sync_dir(dir)?;
    check(hook, IoPoint::SnapshotDirSynced)?;
    Ok(final_path)
}

/// Fsyncs a directory so a completed rename survives power loss. Windows
/// cannot open directories for sync; renames there are best-effort.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), DurabilityError> {
    if cfg!(unix) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Reads and validates one snapshot file.
pub(crate) fn read_snapshot(path: &Path) -> Result<Snapshot, DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN {
        return Err(DurabilityError::Corrupt(format!(
            "snapshot {} too short ({} bytes)",
            path.display(),
            bytes.len()
        )));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::Corrupt(format!("snapshot {} bad magic", path.display())));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(DurabilityError::Corrupt(format!(
            "snapshot {} unsupported version {version}",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(bytes[14..18].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[18..22].try_into().expect("4 bytes"));
    if payload_len as u64 > MAX_LEN || bytes.len() != HEADER_LEN + payload_len {
        return Err(DurabilityError::Corrupt(format!(
            "snapshot {} length mismatch: header says {payload_len}, file holds {}",
            path.display(),
            bytes.len() - HEADER_LEN
        )));
    }
    let payload = bytes[HEADER_LEN..].to_vec();
    if crc32(&payload) != crc {
        return Err(DurabilityError::Corrupt(format!(
            "snapshot {} payload checksum mismatch",
            path.display()
        )));
    }
    Ok(Snapshot { seq, payload })
}

/// Loads the newest *valid* snapshot in `dir`.
///
/// Returns the snapshot plus the number of newer snapshots skipped as
/// corrupt (`0` on the happy path); `None` when no valid snapshot exists.
/// Leftover `.tmp` files from interrupted writes are ignored.
pub fn load_latest_snapshot(dir: &Path) -> Result<Option<(Snapshot, u64)>, DurabilityError> {
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = parse_snapshot_name(&name.to_string_lossy()) {
            candidates.push((seq, entry.path()));
        }
    }
    candidates.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
    let mut skipped = 0u64;
    for (_, path) in candidates {
        match read_snapshot(&path) {
            Ok(snap) => return Ok(Some((snap, skipped))),
            Err(DurabilityError::Io(e)) => return Err(DurabilityError::Io(e)),
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qb-durable-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let hook = FaultHook::none();
        write_snapshot(&dir, 41, b"state v1", &hook).unwrap();
        write_snapshot(&dir, 97, b"state v2", &hook).unwrap();
        let (snap, skipped) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap, Snapshot { seq: 97, payload: b"state v2".to_vec() });
        assert_eq!(skipped, 0);
    }

    #[test]
    fn empty_dir_loads_none() {
        let dir = tmp_dir("empty");
        assert!(load_latest_snapshot(&dir).unwrap().is_none());
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let dir = tmp_dir("fallback");
        let hook = FaultHook::none();
        write_snapshot(&dir, 10, b"good old", &hook).unwrap();
        let newest = write_snapshot(&dir, 20, b"bad new", &hook).unwrap();
        // Flip one payload byte in the newest snapshot.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, bytes).unwrap();
        let (snap, skipped) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.seq, 10);
        assert_eq!(snap.payload, b"good old");
        assert_eq!(skipped, 1);
    }

    #[test]
    fn truncated_and_wrong_version_rejected() {
        let dir = tmp_dir("reject");
        let hook = FaultHook::none();
        let path = write_snapshot(&dir, 5, b"payload", &hook).unwrap();
        let clean = fs::read(&path).unwrap();
        // Truncation at any byte must fail validation, never panic.
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_snapshot(&path).is_err(), "cut at {cut}");
        }
        // Unknown version is rejected even with a correct checksum.
        let mut versioned = clean.clone();
        versioned[4] = 0xFF;
        fs::write(&path, &versioned).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DurabilityError::Corrupt(_))));
    }

    #[test]
    fn crash_before_rename_leaves_old_snapshot_visible() {
        let dir = tmp_dir("crash-tmp");
        let hook = FaultHook::none();
        write_snapshot(&dir, 1, b"old", &hook).unwrap();
        let err = write_snapshot(
            &dir,
            2,
            b"new",
            &FaultHook::crash_at_point(IoPoint::SnapshotTempSynced),
        )
        .unwrap_err();
        assert!(err.is_injected_crash());
        let (snap, _) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.seq, 1, "tmp file must not shadow the old snapshot");
        // The orphaned tmp file exists but is ignored.
        assert!(dir.join(format!("{}.tmp", snapshot_file_name(2))).exists());
    }

    #[test]
    fn crash_after_rename_makes_new_snapshot_visible() {
        let dir = tmp_dir("crash-renamed");
        write_snapshot(&dir, 1, b"old", &FaultHook::none()).unwrap();
        let err =
            write_snapshot(&dir, 2, b"new", &FaultHook::crash_at_point(IoPoint::SnapshotRenamed))
                .unwrap_err();
        assert!(err.is_injected_crash());
        let (snap, _) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.payload, b"new");
    }
}
