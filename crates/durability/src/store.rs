//! Directory-level orchestration: one snapshot lineage + WAL segments.
//!
//! On-disk layout of a store directory:
//!
//! ```text
//! snap-<seq>.qbs       versioned snapshot, atomic (newest + one fallback)
//! snap-<seq>.qbs.tmp   orphaned interrupted write (ignored, overwritten)
//! wal-<base>.qbw       WAL segment holding frames appended after seq <base>
//! ```
//!
//! The WAL rotates on snapshot success: a snapshot at sequence `S` opens a
//! fresh `wal-<S>.qbw` and removes segments that even the *fallback*
//! snapshot no longer needs. Because every frame carries its own sequence
//! number and recovery skips frames at or below the loaded snapshot's
//! sequence, a crash anywhere between "snapshot renamed" and "old
//! segments removed" is harmless — stale frames are skipped, not
//! re-applied.

use std::fs;
use std::path::{Path, PathBuf};

use crate::fault::{check, FaultHook, IoPoint};
use crate::snapshot::{load_latest_snapshot, parse_snapshot_name, write_snapshot, Snapshot};
use crate::wal::{Wal, WalFrame};
use crate::DurabilityError;

/// What [`DurableStore::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// The newest valid snapshot, if any.
    pub snapshot: Option<Snapshot>,
    /// WAL frames to replay: strictly after the snapshot's sequence,
    /// ascending. Already deduplicated against the snapshot by sequence.
    pub frames: Vec<WalFrame>,
    /// Newer snapshots skipped because they failed validation.
    pub corrupt_snapshots_skipped: u64,
    /// Stale frames (at or below the snapshot's sequence) found in WAL
    /// segments and skipped. Nonzero whenever retained fallback segments
    /// overlap the snapshot — including after a crash in the window
    /// between snapshot rename and WAL rotation.
    pub stale_frames_skipped: u64,
}

impl RecoveredState {
    /// Highest durable sequence number: the last replayable frame, or the
    /// snapshot itself, or 0 for a fresh store.
    pub fn durable_seq(&self) -> u64 {
        self.frames
            .last()
            .map(|f| f.seq)
            .or(self.snapshot.as_ref().map(|s| s.seq))
            .unwrap_or(0)
    }
}

/// Size/activity counters for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload bytes of the most recent snapshot written by this handle.
    pub last_snapshot_bytes: u64,
    /// Frames appended through this handle.
    pub frames_appended: u64,
    /// Snapshots written through this handle.
    pub snapshots_written: u64,
}

/// An open durable store: the current WAL segment plus snapshot rotation.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    hook: FaultHook,
    /// Snapshot sequence the current retention window is anchored at.
    snapshot_seq: u64,
    /// The previous (fallback) snapshot's sequence, if still on disk.
    fallback_seq: Option<u64>,
    stats: StoreStats,
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".qbw")?.parse().ok()
}

fn wal_file_name(base: u64) -> String {
    format!("wal-{base:020}.qbw")
}

impl DurableStore {
    /// Opens (creating if needed) the store at `dir`, validating snapshots
    /// and WAL segments and truncating torn tails. Returns the handle
    /// positioned for append plus everything recovery needs to replay.
    pub fn open(dir: &Path, hook: FaultHook) -> Result<(Self, RecoveredState), DurabilityError> {
        fs::create_dir_all(dir)?;
        let (snapshot, corrupt_snapshots_skipped) = match load_latest_snapshot(dir)? {
            Some((snap, skipped)) => (Some(snap), skipped),
            None => (None, 0),
        };
        let snap_seq = snapshot.as_ref().map_or(0, |s| s.seq);

        // Collect segments ascending by base so replay order is stable.
        let mut bases: Vec<u64> = Vec::new();
        let mut fallback_seq = None;
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(base) = parse_wal_name(&name) {
                bases.push(base);
            }
            if let Some(seq) = parse_snapshot_name(&name) {
                if seq < snap_seq {
                    fallback_seq = Some(fallback_seq.map_or(seq, |f: u64| f.max(seq)));
                }
            }
        }
        bases.sort_unstable();

        let mut frames = Vec::new();
        let mut stale_frames_skipped = 0u64;
        // The highest-base segment stays open for append; older ones are
        // only read. A fresh store (no segments) opens `wal-<snap_seq>`.
        let append_base = bases.last().copied().unwrap_or(snap_seq);
        let mut append_wal = None;
        for &base in bases.iter().chain(bases.is_empty().then_some(&append_base)) {
            let path = dir.join(wal_file_name(base));
            let (wal, segment_frames) = Wal::open(&path)?;
            for f in segment_frames {
                if f.seq > snap_seq {
                    frames.push(f);
                } else {
                    stale_frames_skipped += 1;
                }
            }
            if base == append_base {
                append_wal = Some(wal);
            }
        }
        frames.sort_by_key(|f| f.seq);
        frames.dedup_by_key(|f| f.seq);
        let wal = append_wal.expect("append segment always opened");

        let recovered =
            RecoveredState { snapshot, frames, corrupt_snapshots_skipped, stale_frames_skipped };
        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                hook,
                snapshot_seq: snap_seq,
                fallback_seq,
                stats: StoreStats::default(),
            },
            recovered,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Activity counters for this handle.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Replaces the fault hook (tests re-arm between phases).
    pub fn set_hook(&mut self, hook: FaultHook) {
        self.hook = hook;
    }

    /// Appends one fsynced frame to the current WAL segment.
    pub fn append(&mut self, seq: u64, kind: u8, payload: &[u8]) -> Result<(), DurabilityError> {
        self.wal.append(seq, kind, payload, &self.hook)?;
        self.stats.frames_appended += 1;
        Ok(())
    }

    /// Writes a snapshot covering everything up to and including `seq`,
    /// rotates the WAL onto a fresh segment, and prunes state older than
    /// the fallback snapshot.
    pub fn snapshot(&mut self, seq: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        write_snapshot(&self.dir, seq, payload, &self.hook)?;
        self.stats.last_snapshot_bytes = payload.len() as u64;
        self.stats.snapshots_written += 1;
        let old_snapshot_seq = self.snapshot_seq;
        self.fallback_seq = Some(old_snapshot_seq);
        self.snapshot_seq = seq;

        // Rotate: new frames land in a segment anchored at the snapshot.
        let (wal, _) = Wal::open(&self.dir.join(wal_file_name(seq)))?;
        self.wal = wal;
        check(&self.hook, IoPoint::WalRotated)?;

        // Prune: the fallback snapshot (previous one) must stay replayable,
        // so only remove segments strictly older than it and snapshots
        // older than it. Missing files are fine — pruning is best-effort
        // and idempotent.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            let stale_wal = parse_wal_name(&name).is_some_and(|base| base < old_snapshot_seq);
            let stale_snap = parse_snapshot_name(&name).is_some_and(|s| s < old_snapshot_seq);
            let orphan_tmp = name.ends_with(".tmp");
            if stale_wal || stale_snap || orphan_tmp {
                let _ = fs::remove_file(entry.path());
            }
        }
        check(&self.hook, IoPoint::OldStateRemoved)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::snapshot_file_name;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qb-durable-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_store_is_empty() {
        let dir = tmp_dir("fresh");
        let (_store, rec) = DurableStore::open(&dir, FaultHook::none()).unwrap();
        assert_eq!(rec.snapshot, None);
        assert!(rec.frames.is_empty());
        assert_eq!(rec.durable_seq(), 0);
    }

    #[test]
    fn append_snapshot_replay_cycle() {
        let dir = tmp_dir("cycle");
        {
            let (mut store, _) = DurableStore::open(&dir, FaultHook::none()).unwrap();
            store.append(1, 0, b"a").unwrap();
            store.append(2, 0, b"b").unwrap();
            store.snapshot(2, b"state@2").unwrap();
            store.append(3, 0, b"c").unwrap();
        }
        let (_, rec) = DurableStore::open(&dir, FaultHook::none()).unwrap();
        let snap = rec.snapshot.clone().unwrap();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.payload, b"state@2");
        assert_eq!(rec.frames.len(), 1);
        assert_eq!(rec.frames[0].seq, 3);
        assert_eq!(rec.durable_seq(), 3);
        // wal-0 is retained (it is the fallback generation: with no older
        // snapshot, a corrupt snap-2 recovers from empty + frames 1..3),
        // so its two covered frames are skipped by sequence.
        assert_eq!(rec.stale_frames_skipped, 2);
    }

    #[test]
    fn crash_between_rename_and_rotation_skips_stale_frames() {
        let dir = tmp_dir("stale");
        {
            let (mut store, _) = DurableStore::open(&dir, FaultHook::none()).unwrap();
            store.append(1, 0, b"a").unwrap();
            store.append(2, 0, b"b").unwrap();
            // Snapshot lands, then the "process dies" before WAL rotation:
            // the old segment still holds frames 1-2, now also covered by
            // the snapshot.
            store.set_hook(FaultHook::crash_at_point(IoPoint::SnapshotDirSynced));
            let err = store.snapshot(2, b"state@2").unwrap_err();
            assert!(err.is_injected_crash());
        }
        let (_, rec) = DurableStore::open(&dir, FaultHook::none()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().seq, 2);
        assert!(rec.frames.is_empty(), "covered frames must not replay");
        assert_eq!(rec.stale_frames_skipped, 2);
        assert_eq!(rec.durable_seq(), 2);
    }

    #[test]
    fn corrupt_latest_snapshot_falls_back_and_replays_more() {
        let dir = tmp_dir("fallback-replay");
        {
            let (mut store, _) = DurableStore::open(&dir, FaultHook::none()).unwrap();
            store.append(1, 0, b"a").unwrap();
            store.snapshot(1, b"state@1").unwrap();
            store.append(2, 0, b"b").unwrap();
            store.append(3, 0, b"c").unwrap();
            store.snapshot(3, b"state@3").unwrap();
            store.append(4, 0, b"d").unwrap();
        }
        // Corrupt the newest snapshot; recovery must fall back to seq 1
        // and replay frames 2-4 from the retained segments.
        let newest = dir.join(snapshot_file_name(3));
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, bytes).unwrap();
        let (_, rec) = DurableStore::open(&dir, FaultHook::none()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().seq, 1);
        assert_eq!(rec.corrupt_snapshots_skipped, 1);
        let seqs: Vec<u64> = rec.frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn pruning_keeps_exactly_two_snapshots() {
        let dir = tmp_dir("prune");
        let (mut store, _) = DurableStore::open(&dir, FaultHook::none()).unwrap();
        for round in 1u64..=5 {
            store.append(round, 0, b"x").unwrap();
            store.snapshot(round, format!("state@{round}").as_bytes()).unwrap();
        }
        let snaps: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let n = e.unwrap().file_name().to_string_lossy().to_string();
                parse_snapshot_name(&n).map(|_| n)
            })
            .collect();
        assert_eq!(snaps.len(), 2, "latest + fallback only: {snaps:?}");
    }
}
