//! Append-only CRC-framed write-ahead log with torn-tail recovery.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [u32 body_len][u32 crc32(body)][body]
//!     body = [u64 seq][u8 kind][payload bytes]
//! ```
//!
//! Appends are written frame-at-a-time and fsynced before the logical
//! operation they describe is applied, so a frame either validates in full
//! on reopen or is part of a torn tail. [`Wal::open`] keeps exactly the
//! longest valid prefix of frames and truncates the file back to that
//! boundary — a torn write, short write, or bit-flipped tail costs only
//! the frames at/after the damage, never the log.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{crc32, MAX_LEN};
use crate::fault::{check, FaultHook, IoPoint};
use crate::DurabilityError;

/// Fixed bytes before each frame body: `u32` length + `u32` CRC.
const FRAME_HEADER: usize = 8;

/// One durable WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Global monotonic sequence number of the logical operation.
    pub seq: u64,
    /// Caller-defined record kind discriminant.
    pub kind: u8,
    /// Caller-defined payload bytes.
    pub payload: Vec<u8>,
}

/// An open, append-position WAL segment.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Durable length: every byte below this validated on open or was
    /// appended (and fsynced) by this handle.
    len: u64,
    /// Frames appended (not necessarily fsynced) by this handle.
    appended: u64,
}

/// Splits `bytes` into the longest valid frame prefix.
///
/// Returns the parsed frames and the byte offset where validity ends
/// (`== bytes.len()` when the whole file is clean).
pub(crate) fn scan_frames(bytes: &[u8]) -> (Vec<WalFrame>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= FRAME_HEADER {
        let body_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        // A body needs at least seq + kind; anything shorter or absurdly
        // long is tail damage.
        if body_len < 9 || body_len as u64 > MAX_LEN {
            break;
        }
        let Some(body) = bytes.get(pos + FRAME_HEADER..pos + FRAME_HEADER + body_len) else {
            break; // short write: header promises more than the file holds
        };
        if crc32(body) != crc {
            break; // torn write or bit flip inside this frame
        }
        let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        frames.push(WalFrame { seq, kind: body[8], payload: body[9..].to_vec() });
        pos += FRAME_HEADER + body_len;
    }
    (frames, pos)
}

impl Wal {
    /// Opens (creating if absent) the segment at `path`, validates the
    /// existing frames, and truncates any invalid tail. Returns the handle
    /// positioned for append plus the surviving frames.
    pub fn open(path: &Path) -> Result<(Self, Vec<WalFrame>), DurabilityError> {
        // Existing frames are kept (the valid prefix survives recovery), so
        // this deliberately does not truncate on open.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (frames, valid_len) = scan_frames(&bytes);
        if valid_len < bytes.len() {
            // Cut the torn/corrupt tail off so future appends start at a
            // frame boundary instead of extending garbage.
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok((
            Self { file, path: path.to_path_buf(), len: valid_len as u64, appended: 0 },
            frames,
        ))
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Durable byte length of the segment.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends one frame and fsyncs it. Consults `hook` at every I/O
    /// boundary; an injected crash leaves the file exactly as the
    /// completed steps built it (e.g. half a frame after
    /// [`IoPoint::WalFrameHalf`]).
    pub fn append(
        &mut self,
        seq: u64,
        kind: u8,
        payload: &[u8],
        hook: &FaultHook,
    ) -> Result<(), DurabilityError> {
        let mut body = Vec::with_capacity(9 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.push(kind);
        body.extend_from_slice(payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        check(hook, IoPoint::WalAppendStart)?;
        let half = frame.len() / 2;
        self.file.write_all(&frame[..half])?;
        check(hook, IoPoint::WalFrameHalf)?;
        self.file.write_all(&frame[half..])?;
        check(hook, IoPoint::WalFrameFull)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        self.appended += 1;
        check(hook, IoPoint::WalFsync)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qb-durable-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.qbw")
    }

    #[test]
    fn append_reopen_round_trip() {
        let path = tmp("roundtrip");
        let hook = FaultHook::none();
        {
            let (mut wal, frames) = Wal::open(&path).unwrap();
            assert!(frames.is_empty());
            wal.append(1, 0, b"alpha", &hook).unwrap();
            wal.append(2, 1, b"", &hook).unwrap();
            wal.append(3, 0, &[0xFF; 300], &hook).unwrap();
        }
        let (_, frames) = Wal::open(&path).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], WalFrame { seq: 1, kind: 0, payload: b"alpha".to_vec() });
        assert_eq!(frames[1], WalFrame { seq: 2, kind: 1, payload: vec![] });
        assert_eq!(frames[2].payload.len(), 300);
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_frame() {
        let path = tmp("torn");
        let hook = FaultHook::none();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(1, 0, b"keep me", &hook).unwrap();
            wal.append(2, 0, b"also keep", &hook).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Tear the final frame at every possible byte boundary.
        let second_start = {
            let (_, one_frame_end) = scan_frames(&full[..full.len() - 1]);
            one_frame_end
        };
        for cut in second_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, frames) = Wal::open(&path).unwrap();
            assert_eq!(frames.len(), 1, "cut at {cut}");
            assert_eq!(frames[0].seq, 1);
            assert_eq!(wal.len_bytes(), second_start as u64);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), second_start as u64);
        }
    }

    #[test]
    fn bit_flip_truncates_at_damaged_frame() {
        let path = tmp("bitflip");
        let hook = FaultHook::none();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for seq in 1..=4 {
                wal.append(seq, 0, format!("frame {seq}").as_bytes(), &hook).unwrap();
            }
        }
        let clean = std::fs::read(&path).unwrap();
        for byte_idx in (0..clean.len()).step_by(3) {
            let mut bytes = clean.clone();
            bytes[byte_idx] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let (_, frames) = Wal::open(&path).unwrap();
            // Whatever survives must be a clean prefix with intact payloads.
            for (i, f) in frames.iter().enumerate() {
                assert_eq!(f.seq, i as u64 + 1);
                assert_eq!(f.payload, format!("frame {}", i + 1).as_bytes());
            }
            assert!(frames.len() < 4 || bytes == clean);
        }
    }

    #[test]
    fn append_after_truncation_continues_cleanly() {
        let path = tmp("heal");
        let hook = FaultHook::none();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(1, 0, b"one", &hook).unwrap();
            wal.append(2, 0, b"two", &hook).unwrap();
        }
        // Tear the tail, reopen, append — the new frame must land on the
        // healed boundary.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        {
            let (mut wal, frames) = Wal::open(&path).unwrap();
            assert_eq!(frames.len(), 1);
            wal.append(2, 0, b"two again", &hook).unwrap();
        }
        let (_, frames) = Wal::open(&path).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].payload, b"two again");
    }

    #[test]
    fn injected_crash_leaves_described_state() {
        let path = tmp("crash");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(1, 0, b"durable", &FaultHook::none()).unwrap();
            let err = wal
                .append(2, 0, b"torn", &FaultHook::crash_at_point(IoPoint::WalFrameHalf))
                .unwrap_err();
            assert!(err.is_injected_crash());
        }
        let (_, frames) = Wal::open(&path).unwrap();
        assert_eq!(frames.len(), 1, "half-written frame must be truncated");
        assert_eq!(frames[0].payload, b"durable");
    }
}
