//! I/O-boundary fault injection.
//!
//! Durability code consults a [`FaultHook`] immediately *after* completing
//! each physical step named by an [`IoPoint`]. Returning `true` means
//! "the process crashed here": the operation aborts with
//! [`crate::DurabilityError::InjectedCrash`], leaving the files exactly as
//! the completed steps built them — a torn frame after
//! [`IoPoint::WalFrameHalf`], an unsynced frame after
//! [`IoPoint::WalFrameFull`], an orphaned temp file after
//! [`IoPoint::SnapshotTempWritten`], and so on. Recovery code then gets
//! exercised against every on-disk state a real crash could leave,
//! without killing processes or mocking the filesystem.

use std::sync::Arc;

/// A physical I/O boundary at which a crash can be injected. The hook is
/// consulted *after* the named step completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IoPoint {
    /// A WAL append is about to write its frame (nothing written yet).
    WalAppendStart,
    /// Half of a WAL frame's bytes are on disk — the torn-write state.
    WalFrameHalf,
    /// All of a WAL frame's bytes are written but not fsynced.
    WalFrameFull,
    /// The WAL frame is fsynced (fully durable).
    WalFsync,
    /// A snapshot write is about to begin (nothing written yet).
    SnapshotStart,
    /// The snapshot temp file is fully written but not fsynced.
    SnapshotTempWritten,
    /// The snapshot temp file is fsynced but not yet renamed into place.
    SnapshotTempSynced,
    /// The snapshot was renamed to its final name (directory not synced).
    SnapshotRenamed,
    /// The snapshot directory entry is fsynced (snapshot fully durable).
    SnapshotDirSynced,
    /// A fresh WAL segment was opened after a successful snapshot.
    WalRotated,
    /// Obsolete snapshots/WAL segments were removed (rotation complete).
    OldStateRemoved,
}

impl IoPoint {
    /// Every injectable point, in the order one snapshot-plus-append cycle
    /// visits them. Test matrices iterate this.
    pub const ALL: [IoPoint; 11] = [
        IoPoint::WalAppendStart,
        IoPoint::WalFrameHalf,
        IoPoint::WalFrameFull,
        IoPoint::WalFsync,
        IoPoint::SnapshotStart,
        IoPoint::SnapshotTempWritten,
        IoPoint::SnapshotTempSynced,
        IoPoint::SnapshotRenamed,
        IoPoint::SnapshotDirSynced,
        IoPoint::WalRotated,
        IoPoint::OldStateRemoved,
    ];
}

/// Decides, per I/O boundary, whether the "process" crashes there.
///
/// The default hook never crashes. Hooks must be deterministic for
/// reproducible tests; they are invoked on the caller's thread.
#[derive(Clone)]
pub struct FaultHook {
    crash_at: Option<Arc<dyn Fn(IoPoint) -> bool + Send + Sync>>,
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHook").field("armed", &self.crash_at.is_some()).finish()
    }
}

impl Default for FaultHook {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultHook {
    /// The production hook: never crashes.
    pub fn none() -> Self {
        Self { crash_at: None }
    }

    /// A hook driven by an arbitrary deterministic decision function.
    pub fn new(f: impl Fn(IoPoint) -> bool + Send + Sync + 'static) -> Self {
        Self { crash_at: Some(Arc::new(f)) }
    }

    /// A hook that crashes on the `n`-th visited I/O point (1-based),
    /// counting every point of every operation — the crash-point matrix
    /// driver. `n = 0` never crashes (useful for counting points).
    pub fn crash_at_nth(n: u64) -> Self {
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        Self::new(move |_| {
            let seen = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            n != 0 && seen == n
        })
    }

    /// A hook that crashes the first time `point` is visited.
    pub fn crash_at_point(point: IoPoint) -> Self {
        let armed = std::sync::atomic::AtomicBool::new(true);
        Self::new(move |p| {
            p == point && armed.swap(false, std::sync::atomic::Ordering::Relaxed)
        })
    }

    /// Consults the hook; `true` = crash here.
    pub fn should_crash(&self, point: IoPoint) -> bool {
        self.crash_at.as_ref().is_some_and(|f| f(point))
    }
}

/// Shorthand used by writer code: returns the injected-crash error when
/// the hook fires at `point`.
pub(crate) fn check(hook: &FaultHook, point: IoPoint) -> Result<(), crate::DurabilityError> {
    if hook.should_crash(point) {
        Err(crate::DurabilityError::InjectedCrash(point))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_crashes() {
        let h = FaultHook::none();
        for p in IoPoint::ALL {
            assert!(!h.should_crash(p));
        }
    }

    #[test]
    fn nth_counts_across_points() {
        let h = FaultHook::crash_at_nth(3);
        assert!(!h.should_crash(IoPoint::WalAppendStart));
        assert!(!h.should_crash(IoPoint::WalFrameHalf));
        assert!(h.should_crash(IoPoint::WalFrameFull));
        assert!(!h.should_crash(IoPoint::WalFsync));
        // Zero disables crashing entirely.
        let h = FaultHook::crash_at_nth(0);
        for p in IoPoint::ALL {
            assert!(!h.should_crash(p));
        }
    }

    #[test]
    fn point_hook_fires_once() {
        let h = FaultHook::crash_at_point(IoPoint::SnapshotRenamed);
        assert!(!h.should_crash(IoPoint::WalFsync));
        assert!(h.should_crash(IoPoint::SnapshotRenamed));
        assert!(!h.should_crash(IoPoint::SnapshotRenamed), "one-shot");
    }
}
