//! Little-endian byte codec shared by the WAL and snapshot formats.
//!
//! Deliberately boring: explicit writes and reads of primitives with
//! length-prefixed containers, no reflection, no derive machinery. Every
//! versioned record in the workspace is encoded by hand against this pair
//! so the on-disk layout is auditable line by line. Floats travel as raw
//! IEEE-754 bits ([`Enc::f64`]), so NaN payloads and negative zero
//! round-trip bit-exactly — required for the pipeline's bit-identical
//! recovery contract.

use std::collections::BTreeMap;

/// Decode failure: structurally invalid bytes for the expected schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the expected field.
    UnexpectedEnd { wanted: usize, remaining: usize },
    /// A length prefix exceeds the plausibility bound.
    ImplausibleLength { what: &'static str, len: u64 },
    /// A discriminant byte had no mapped variant.
    BadTag { what: &'static str, tag: u8 },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after the final field.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd { wanted, remaining } => {
                write!(f, "unexpected end of input: wanted {wanted} bytes, {remaining} remain")
            }
            CodecError::ImplausibleLength { what, len } => {
                write!(f, "implausible length for {what}: {len}")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after final field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any single length prefix. Far above any real pipeline
/// state, far below anything that could OOM a decoder fed garbage.
pub const MAX_LEN: u64 = 64 * 1024 * 1024;

/// Streaming encoder into an owned byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` always travels as 8 bytes so 32- and 64-bit encoders agree.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Raw IEEE-754 bits: NaNs and signed zeros round-trip exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// `Option<T>`: presence byte then the value.
    pub fn option<T>(&mut self, v: Option<&T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }

    /// A `BTreeMap` as a length-prefixed (key, value) sequence — already
    /// sorted, so identical maps encode to identical bytes.
    pub fn map<K, V>(&mut self, m: &BTreeMap<K, V>, mut f: impl FnMut(&mut Self, &K, &V)) {
        self.usize(m.len());
        for (k, v) in m {
            f(self, k, v);
        }
    }
}

/// Positional decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — catches schema drift where a
    /// decoder silently reads less than the encoder wrote.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd { wanted: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(CodecError::ImplausibleLength { what: "usize", len: v });
        }
        Ok(v as usize)
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::BadTag { what: "option", tag }),
        }
    }

    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let n = self.usize()?;
        // A length prefix can never promise more items than bytes remain:
        // each item costs at least one byte, so bound allocation by that.
        if n > self.remaining() {
            return Err(CodecError::ImplausibleLength { what: "seq", len: n as u64 });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Table-driven, built once.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(65_535);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(12_345);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("durable ✓");
        e.bytes(&[1, 2, 3]);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 65_535);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12_345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "durable ✓");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let mut e = Enc::new();
        e.option(Some(&9u64), |e, v| e.u64(*v));
        e.option::<u64>(None, |e, v| e.u64(*v));
        e.seq(&[1i64, -2, 3], |e, v| e.i64(*v));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        e.map(&m, |e, k, v| {
            e.str(k);
            e.u64(*v);
        });
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.option(|d| d.u64()).unwrap(), Some(9));
        assert_eq!(d.option(|d| d.u64()).unwrap(), None);
        assert_eq!(d.seq(|d| d.i64()).unwrap(), vec![1, -2, 3]);
        let n = d.usize().unwrap();
        let pairs: Vec<(String, u64)> =
            (0..n).map(|_| (d.str().unwrap(), d.u64().unwrap())).collect();
        assert_eq!(pairs, vec![("a".into(), 1), ("b".into(), 2)]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors_without_panic() {
        let mut e = Enc::new();
        e.str("hello");
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(d.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // absurd length prefix
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.bytes(), Err(CodecError::ImplausibleLength { .. })));
        // A merely-too-large seq count is also rejected before allocating.
        let mut e = Enc::new();
        e.u64(1_000);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.seq(|d| d.u8()), Err(CodecError::ImplausibleLength { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
