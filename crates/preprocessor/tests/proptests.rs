//! Property-based tests for templating, sampling, and ingest robustness.

use proptest::prelude::*;
use qb_preprocessor::{
    bind_params, semantic_fingerprint, templatize, PreProcessor, PreProcessorConfig, Reservoir,
};
use qb_sqlparse::{format_statement, parse_statement};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "select" | "from" | "where" | "and" | "or" | "not" | "in" | "between" | "like"
                | "is" | "null" | "as" | "on" | "join" | "group" | "by" | "having" | "order"
                | "asc" | "desc" | "limit" | "offset" | "insert" | "into" | "values"
                | "update" | "set" | "delete" | "true" | "false" | "end" | "all"
        )
    })
}

fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        any::<i32>().prop_map(|v| v.to_string()),
        "[a-z0-9]{0,8}".prop_map(|s| format!("'{s}'")),
        (1u32..999, 1u32..99).prop_map(|(a, b)| format!("{a}.{b}")),
    ]
}

/// Random SELECT/UPDATE/DELETE with constant-bearing predicates.
fn pred() -> impl Strategy<Value = String> {
    (ident(), literal(), ident(), literal())
        .prop_map(|(c1, l1, c2, l2)| format!("{c1} = {l1} AND {c2} > {l2}"))
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (proptest::collection::vec(ident(), 1..3), ident(), pred())
            .prop_map(|(cols, t, p)| format!("SELECT {} FROM {t} WHERE {p}", cols.join(", "))),
        (ident(), ident(), literal(), pred())
            .prop_map(|(t, c, v, p)| format!("UPDATE {t} SET {c} = {v} WHERE {p}")),
        (ident(), pred()).prop_map(|(t, p)| format!("DELETE FROM {t} WHERE {p}")),
        (ident(), proptest::collection::vec((ident(), literal()), 1..4)).prop_map(|(t, cs)| {
            let names: Vec<_> = cs.iter().map(|(c, _)| c.clone()).collect();
            let vals: Vec<_> = cs.iter().map(|(_, v)| v.clone()).collect();
            format!("INSERT INTO {t} ({}) VALUES ({})", names.join(", "), vals.join(", "))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Templatizing leaves no literal constants behind, and binding the
    /// extracted parameters reproduces the original statement.
    #[test]
    fn templatize_bind_roundtrip(sql in stmt()) {
        let original = parse_statement(&sql).expect("generated SQL parses");
        let t = templatize(&original);
        // No literals remain in the template text (placeholders only).
        // Column names can contain digits, so check via the parameter count
        // instead: re-templatizing the template extracts nothing.
        let again = templatize(&t.template);
        prop_assert!(again.params.is_empty(), "template still had constants: {}", t.text);
        // Round trip.
        let bound = bind_params(&t.template, &t.params);
        prop_assert_eq!(
            format_statement(&bound),
            format_statement(&original),
            "bind(templatize(s)) != s for `{}`", sql
        );
    }

    /// Templatizing a template is a fixed point: running the already
    /// constant-free statement through `templatize` again changes nothing —
    /// not the canonical text, not the template AST, and (degenerately) it
    /// extracts zero parameters. Generated over the Table 1 query-type mix
    /// (SELECT/INSERT/UPDATE/DELETE with integer, decimal, and string
    /// constants).
    #[test]
    fn templatizing_a_template_is_a_fixed_point(sql in stmt()) {
        let t1 = templatize(&parse_statement(&sql).expect("generated SQL parses"));
        let t2 = templatize(&t1.template);
        prop_assert!(t2.params.is_empty(), "second pass extracted params from {}", t1.text);
        prop_assert_eq!(&t2.template, &t1.template, "template AST drifted for `{}`", sql);
        prop_assert_eq!(&t2.text, &t1.text, "template text drifted for `{}`", sql);
        // And the fixed point survives a parse round trip of the text.
        let reparsed = templatize(&parse_statement(&t1.text).expect("template text parses"));
        prop_assert_eq!(&reparsed.text, &t1.text);
    }

    /// The same statement with different constants yields the same
    /// template and fingerprint.
    #[test]
    fn constants_never_affect_identity(
        cols in proptest::collection::vec(ident(), 1..3),
        table in ident(),
        col in ident(),
        v1 in any::<i32>(),
        v2 in any::<i32>(),
    ) {
        let q1 = format!("SELECT {} FROM {table} WHERE {col} = {v1}", cols.join(", "));
        let q2 = format!("SELECT {} FROM {table} WHERE {col} = {v2}", cols.join(", "));
        let t1 = templatize(&parse_statement(&q1).expect("parses"));
        let t2 = templatize(&parse_statement(&q2).expect("parses"));
        prop_assert_eq!(&t1.text, &t2.text);
        prop_assert_eq!(
            semantic_fingerprint(&t1.template),
            semantic_fingerprint(&t2.template)
        );
    }

    /// AND-conjunct order never affects the fingerprint.
    #[test]
    fn conjunct_order_irrelevant(
        table in ident(), c1 in ident(), c2 in ident(), v1 in any::<i32>(), v2 in any::<i32>()
    ) {
        prop_assume!(c1 != c2);
        let a = format!("SELECT x FROM {table} WHERE {c1} = {v1} AND {c2} = {v2}");
        let b = format!("SELECT x FROM {table} WHERE {c2} = {v2} AND {c1} = {v1}");
        let fa = semantic_fingerprint(&templatize(&parse_statement(&a).expect("a")).template);
        let fb = semantic_fingerprint(&templatize(&parse_statement(&b).expect("b")).template);
        prop_assert_eq!(fa, fb);
    }

    /// Ingest never panics, whatever bytes arrive — malformed UTF-8 (via
    /// lossy decoding), control characters, unbalanced quotes, binary
    /// garbage. Rejections land in quarantine; the accounting identity
    /// `accepted + rejected == offered` always holds.
    #[test]
    fn ingest_never_panics_on_arbitrary_bytes(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            1..12,
        ),
        t0 in -1_000_000_000_000i64..1_000_000_000_000,
        step in -2_000i64..2_000,
    ) {
        let mut pre = PreProcessor::new(PreProcessorConfig::default());
        let mut accepted = 0u64;
        for (i, bytes) in chunks.iter().enumerate() {
            let sql = String::from_utf8_lossy(bytes);
            let t = t0 + step * i as i64;
            if pre.ingest_weighted(t, &sql, 1 + i as u64 % 3).is_ok() {
                accepted += 1;
            }
        }
        prop_assert_eq!(
            accepted + pre.quarantine().rejected_statements(),
            chunks.len() as u64,
            "every offered statement is either accepted or quarantined"
        );
    }

    /// Ingest tolerates arbitrary timestamps — negative, decreasing, or
    /// jumping wildly — and still accounts for every arrival.
    #[test]
    fn ingest_tolerates_arbitrary_timestamps(
        ts in proptest::collection::vec(-1_000_000_000i64..1_000_000_000, 1..40),
        weight in 1u64..5,
    ) {
        let mut pre = PreProcessor::new(PreProcessorConfig::default());
        let mut id = None;
        for &t in &ts {
            id = Some(
                pre.ingest_weighted(t, "SELECT a FROM t WHERE id = 1", weight)
                    .expect("well-formed SQL always ingests"),
            );
        }
        let entry = pre.template(id.expect("at least one ingest"));
        prop_assert_eq!(entry.history.total(), ts.len() as u64 * weight);
        prop_assert_eq!(entry.history.first_seen(), ts.iter().min().copied());
    }

    /// Reservoir: size is min(capacity, offered), and the sample is always
    /// a sub-multiset of the stream.
    #[test]
    fn reservoir_invariants(cap in 1usize..20, n in 0usize..200, seed in any::<u64>()) {
        let mut r = Reservoir::new(cap, seed);
        for i in 0..n {
            r.offer(i);
        }
        prop_assert_eq!(r.len(), cap.min(n));
        prop_assert_eq!(r.seen(), n as u64);
        let mut seen = std::collections::HashSet::new();
        for &x in r.items() {
            prop_assert!(x < n, "sample outside stream");
            prop_assert!(seen.insert(x), "duplicate item {} in sample", x);
        }
    }
}
