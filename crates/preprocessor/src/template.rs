//! Constant extraction: raw statement → template + parameter vector.
//!
//! Implements the first Pre-Processor step of §4. Constants are replaced by
//! `?` placeholders in:
//!
//! * WHERE-clause predicates (including HAVING, JOIN ON, BETWEEN bounds,
//!   IN lists, and LIKE patterns);
//! * the SET fields of UPDATE statements;
//! * the VALUES fields of INSERT statements — batched inserts collapse to a
//!   single-row template and the batch size is reported separately.
//!
//! Two extra normalizations keep template cardinality low, mirroring the
//! reference implementation: an IN list of extracted constants collapses to
//! a single placeholder (so `IN (1,2)` and `IN (1,2,3)` share a template),
//! and `LIMIT`/`OFFSET` constants are preserved verbatim since they change
//! the query's semantics for the planning module.

use qb_sqlparse::{format_statement, Expr, InsertStatement, Literal, Statement};

/// The result of templatizing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplatizedQuery {
    /// The statement with constants replaced by placeholders.
    pub template: Statement,
    /// Canonical text of `template` (the template's identity string).
    pub text: String,
    /// The extracted constants, in syntax order.
    pub params: Vec<Literal>,
    /// For batched INSERTs, the number of tuples in the original statement;
    /// 1 otherwise.
    pub batch_size: usize,
}

/// Templatizes a parsed statement.
pub fn templatize(stmt: &Statement) -> TemplatizedQuery {
    let mut params = Vec::new();
    let mut batch_size = 1;

    let template = match stmt {
        Statement::Select(s) => {
            let mut s = s.clone();
            for j in &mut s.joins {
                if let Some(on) = &mut j.on {
                    extract(on, &mut params);
                }
            }
            if let Some(w) = &mut s.where_clause {
                extract(w, &mut params);
            }
            if let Some(h) = &mut s.having {
                extract(h, &mut params);
            }
            Statement::Select(s)
        }
        Statement::Insert(i) => {
            batch_size = i.rows.len().max(1);
            // Collapse to a one-row template; every value becomes `?`.
            for row in &i.rows {
                for v in row {
                    collect_literals(v, &mut params);
                }
            }
            let row_arity = i.rows.first().map_or(0, Vec::len);
            let template_row: Vec<Expr> = (0..row_arity).map(|_| Expr::Placeholder).collect();
            Statement::Insert(InsertStatement {
                table: i.table.clone(),
                columns: i.columns.clone(),
                rows: vec![template_row],
            })
        }
        Statement::Update(u) => {
            let mut u = u.clone();
            for a in &mut u.assignments {
                extract(&mut a.value, &mut params);
            }
            if let Some(w) = &mut u.where_clause {
                extract(w, &mut params);
            }
            Statement::Update(u)
        }
        Statement::Delete(d) => {
            let mut d = d.clone();
            if let Some(w) = &mut d.where_clause {
                extract(w, &mut params);
            }
            Statement::Delete(d)
        }
    };

    let text = format_statement(&template);
    TemplatizedQuery { template, text, params, batch_size }
}

/// Recursively replaces literal constants in an expression with
/// placeholders, appending the extracted values to `params`.
fn extract(expr: &mut Expr, params: &mut Vec<Literal>) {
    match expr {
        Expr::Literal(lit) => {
            params.push(lit.clone());
            *expr = Expr::Placeholder;
        }
        Expr::Placeholder | Expr::Column { .. } | Expr::Wildcard => {}
        Expr::Binary { left, right, .. } => {
            extract(left, params);
            extract(right, params);
        }
        Expr::Unary { expr: inner, .. } => extract(inner, params),
        Expr::Function { args, .. } => {
            for a in args {
                extract(a, params);
            }
        }
        Expr::InList { expr: inner, list, .. } => {
            extract(inner, params);
            let all_constants = list
                .iter()
                .all(|e| matches!(e, Expr::Literal(_) | Expr::Placeholder));
            if all_constants {
                // Collapse: `IN (1, 2, 3)` and `IN (5)` share one template,
                // and the collapsed list contributes exactly ONE parameter
                // (a representative element) so that bind_params consumes
                // placeholders in lockstep with templatize's emissions —
                // pushing all N values would desynchronize every
                // placeholder after the IN list.
                let representative = list.iter().find_map(|e| match e {
                    Expr::Literal(l) => Some(l.clone()),
                    _ => None,
                });
                if let Some(l) = representative {
                    params.push(l);
                }
                *list = vec![Expr::Placeholder];
            } else {
                for e in list {
                    extract(e, params);
                }
            }
        }
        Expr::InSubquery { expr: inner, subquery, .. } => {
            extract(inner, params);
            let mut sub = Statement::Select((**subquery).clone());
            let tq = templatize(&sub);
            params.extend(tq.params);
            if let Statement::Select(s) = tq.template {
                **subquery = s;
            } else {
                unreachable!("templatize preserves statement kind");
            }
            let _ = &mut sub;
        }
        Expr::Exists { subquery, .. } => {
            let tq = templatize(&Statement::Select((**subquery).clone()));
            params.extend(tq.params);
            if let Statement::Select(s) = tq.template {
                **subquery = s;
            }
        }
        Expr::Subquery(subquery) => {
            let tq = templatize(&Statement::Select((**subquery).clone()));
            params.extend(tq.params);
            if let Statement::Select(s) = tq.template {
                **subquery = s;
            }
        }
        Expr::Between { expr: inner, low, high, .. } => {
            extract(inner, params);
            extract(low, params);
            extract(high, params);
        }
        Expr::IsNull { expr: inner, .. } => extract(inner, params),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                extract(c, params);
                extract(v, params);
            }
            if let Some(e) = else_expr {
                extract(e, params);
            }
        }
    }
}

/// Collects literals from an expression without rewriting (used for INSERT
/// rows, which are wholesale replaced by a placeholder row).
fn collect_literals(expr: &Expr, params: &mut Vec<Literal>) {
    expr.walk(&mut |e| {
        if let Expr::Literal(l) = e {
            params.push(l.clone());
        }
    });
}

/// Re-binds a template's placeholders with concrete parameters (the inverse
/// of [`templatize`]): placeholder `i` receives `params[i]` in syntax
/// order. Used by the planning module when costing candidate optimizations
/// against sampled parameters (§4: "An autonomous DBMS's planning module
/// uses these parameter samples when estimating the cost/benefit of
/// optimizations").
///
/// Extra parameters are ignored; missing ones leave placeholders in place
/// (the caller may be binding a batched-INSERT template whose original had
/// more rows).
pub fn bind_params(template: &Statement, params: &[Literal]) -> Statement {
    let mut next = 0usize;
    let mut stmt = template.clone();
    let mut bind_expr = |e: &mut Expr| rebind(e, params, &mut next);
    match &mut stmt {
        Statement::Select(s) => {
            for j in &mut s.joins {
                if let Some(on) = &mut j.on {
                    bind_expr(on);
                }
            }
            if let Some(w) = &mut s.where_clause {
                bind_expr(w);
            }
            if let Some(h) = &mut s.having {
                bind_expr(h);
            }
        }
        Statement::Insert(i) => {
            for row in &mut i.rows {
                for v in row {
                    bind_expr(v);
                }
            }
        }
        Statement::Update(u) => {
            for a in &mut u.assignments {
                bind_expr(&mut a.value);
            }
            if let Some(w) = &mut u.where_clause {
                bind_expr(w);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &mut d.where_clause {
                bind_expr(w);
            }
        }
    }
    stmt
}

fn rebind(expr: &mut Expr, params: &[Literal], next: &mut usize) {
    match expr {
        Expr::Placeholder => {
            if let Some(p) = params.get(*next) {
                *expr = Expr::Literal(p.clone());
            }
            *next += 1;
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => {}
        Expr::Binary { left, right, .. } => {
            rebind(left, params, next);
            rebind(right, params, next);
        }
        Expr::Unary { expr, .. } => rebind(expr, params, next),
        Expr::Function { args, .. } => {
            for a in args {
                rebind(a, params, next);
            }
        }
        Expr::InList { expr, list, .. } => {
            rebind(expr, params, next);
            for e in list {
                rebind(e, params, next);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            rebind(expr, params, next);
            rebind_select(subquery, params, next);
        }
        Expr::Exists { subquery, .. } => rebind_select(subquery, params, next),
        Expr::Subquery(subquery) => rebind_select(subquery, params, next),
        Expr::Between { expr, low, high, .. } => {
            rebind(expr, params, next);
            rebind(low, params, next);
            rebind(high, params, next);
        }
        Expr::IsNull { expr, .. } => rebind(expr, params, next),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                rebind(c, params, next);
                rebind(v, params, next);
            }
            if let Some(e) = else_expr {
                rebind(e, params, next);
            }
        }
    }
}

fn rebind_select(s: &mut qb_sqlparse::SelectStatement, params: &[Literal], next: &mut usize) {
    // Placeholders inside subqueries consume parameters in the same syntax
    // order templatize emitted them.
    for j in &mut s.joins {
        if let Some(on) = &mut j.on {
            rebind(on, params, next);
        }
    }
    if let Some(w) = &mut s.where_clause {
        rebind(w, params, next);
    }
    if let Some(h) = &mut s.having {
        rebind(h, params, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_sqlparse::parse_statement;

    fn tq(sql: &str) -> TemplatizedQuery {
        templatize(&parse_statement(sql).unwrap())
    }

    #[test]
    fn where_constants_extracted() {
        let t = tq("SELECT a FROM t WHERE id = 42 AND name = 'bob'");
        assert_eq!(t.params, vec![Literal::Integer(42), Literal::String("bob".into())]);
        assert_eq!(t.text, "SELECT a FROM t WHERE id = ? AND name = ?");
    }

    #[test]
    fn identical_templates_for_different_constants() {
        assert_eq!(
            tq("SELECT a FROM t WHERE id = 1").text,
            tq("SELECT a FROM t WHERE id = 2").text
        );
    }

    #[test]
    fn update_set_and_where_extracted() {
        let t = tq("UPDATE t SET a = 5, b = 'x' WHERE id = 9");
        assert_eq!(t.text, "UPDATE t SET a = ?, b = ? WHERE id = ?");
        assert_eq!(t.params.len(), 3);
    }

    #[test]
    fn insert_values_extracted() {
        let t = tq("INSERT INTO t (a, b) VALUES (1, 'x')");
        assert_eq!(t.text, "INSERT INTO t (a, b) VALUES (?, ?)");
        assert_eq!(t.params, vec![Literal::Integer(1), Literal::String("x".into())]);
        assert_eq!(t.batch_size, 1);
    }

    #[test]
    fn batched_insert_collapses_and_counts() {
        let t = tq("INSERT INTO t (a) VALUES (1), (2), (3)");
        assert_eq!(t.text, "INSERT INTO t (a) VALUES (?)");
        assert_eq!(t.batch_size, 3);
        assert_eq!(t.params.len(), 3);
        // Batch sizes differ but the template is shared.
        assert_eq!(t.text, tq("INSERT INTO t (a) VALUES (9)").text);
    }

    #[test]
    fn in_list_collapses() {
        let a = tq("SELECT a FROM t WHERE id IN (1, 2, 3)");
        let b = tq("SELECT a FROM t WHERE id IN (7)");
        assert_eq!(a.text, b.text);
        // One representative parameter per collapsed list (placeholder
        // count and parameter count must stay in lockstep for bind_params).
        assert_eq!(a.params, vec![Literal::Integer(1)]);
        assert_eq!(a.text, "SELECT a FROM t WHERE id IN (?)");
    }

    #[test]
    fn in_list_collapse_keeps_bind_alignment() {
        // A constant AFTER the IN list must bind to its own placeholder.
        let stmt =
            parse_statement("SELECT a FROM t WHERE id IN (1, 2, 3) AND ts > 99").unwrap();
        let t = templatize(&stmt);
        assert_eq!(t.params, vec![Literal::Integer(1), Literal::Integer(99)]);
        let bound = bind_params(&t.template, &t.params);
        let text = qb_sqlparse::format_statement(&bound);
        assert!(text.contains("ts > 99"), "{text}");
    }

    #[test]
    fn between_bounds_extracted() {
        let t = tq("SELECT a FROM t WHERE ts BETWEEN 100 AND 200");
        assert_eq!(t.text, "SELECT a FROM t WHERE ts BETWEEN ? AND ?");
        assert_eq!(t.params, vec![Literal::Integer(100), Literal::Integer(200)]);
    }

    #[test]
    fn like_pattern_extracted() {
        let t = tq("SELECT a FROM t WHERE name LIKE 'J%'");
        assert_eq!(t.text, "SELECT a FROM t WHERE name LIKE ?");
    }

    #[test]
    fn subquery_constants_extracted() {
        let t = tq("SELECT a FROM t WHERE id IN (SELECT b FROM u WHERE c = 5)");
        assert!(t.text.contains("c = ?"), "{}", t.text);
        assert_eq!(t.params, vec![Literal::Integer(5)]);
    }

    #[test]
    fn having_constants_extracted() {
        let t = tq("SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 10");
        assert!(t.text.contains("HAVING count(*) > ?"), "{}", t.text);
    }

    #[test]
    fn delete_where_extracted() {
        let t = tq("DELETE FROM t WHERE ts < 500");
        assert_eq!(t.text, "DELETE FROM t WHERE ts < ?");
    }

    #[test]
    fn existing_placeholders_preserved() {
        let t = tq("SELECT a FROM t WHERE id = ?");
        assert_eq!(t.text, "SELECT a FROM t WHERE id = ?");
        assert!(t.params.is_empty());
    }

    #[test]
    fn null_and_bool_extracted() {
        let t = tq("SELECT a FROM t WHERE b = TRUE AND c = NULL");
        assert_eq!(t.params, vec![Literal::Boolean(true), Literal::Null]);
    }

    #[test]
    fn projection_column_list_not_templated() {
        // Column references are structure, not constants.
        let t = tq("SELECT a, b FROM t WHERE a = 1");
        assert!(t.text.starts_with("SELECT a, b FROM t"), "{}", t.text);
    }

    #[test]
    fn case_expression_constants() {
        let t = tq("SELECT a FROM t WHERE x = CASE WHEN y > 5 THEN 1 ELSE 0 END");
        assert_eq!(t.params.len(), 3);
    }

    #[test]
    fn join_on_constants_extracted() {
        let t = tq("SELECT a FROM t JOIN u ON t.id = u.id AND u.kind = 3");
        assert!(t.text.contains("u.kind = ?"), "{}", t.text);
    }
}

#[cfg(test)]
mod bind_tests {
    use super::*;
    use qb_sqlparse::{format_statement, parse_statement};

    fn roundtrip(sql: &str) -> String {
        let stmt = parse_statement(sql).unwrap();
        let t = templatize(&stmt);
        let bound = bind_params(&t.template, &t.params);
        format_statement(&bound)
    }

    #[test]
    fn bind_inverts_templatize_select() {
        let sql = "SELECT a FROM t WHERE id = 42 AND name = 'bob'";
        assert_eq!(roundtrip(sql), format_statement(&parse_statement(sql).unwrap()));
    }

    #[test]
    fn bind_inverts_templatize_update_delete() {
        for sql in [
            "UPDATE t SET a = 5 WHERE id = 9",
            "DELETE FROM t WHERE ts < 500",
            "SELECT a FROM t WHERE ts BETWEEN 1 AND 2 AND name LIKE 'x%'",
        ] {
            assert_eq!(roundtrip(sql), format_statement(&parse_statement(sql).unwrap()));
        }
    }

    #[test]
    fn bind_subquery_params() {
        let sql = "SELECT a FROM t WHERE id IN (SELECT b FROM u WHERE c = 7)";
        assert_eq!(roundtrip(sql), format_statement(&parse_statement(sql).unwrap()));
    }

    #[test]
    fn bind_single_row_insert() {
        let sql = "INSERT INTO t (a, b) VALUES (1, 'x')";
        assert_eq!(roundtrip(sql), format_statement(&parse_statement(sql).unwrap()));
    }

    #[test]
    fn missing_params_leave_placeholders() {
        let stmt = parse_statement("SELECT a FROM t WHERE x = 1 AND y = 2").unwrap();
        let t = templatize(&stmt);
        let bound = bind_params(&t.template, &t.params[..1]);
        let text = format_statement(&bound);
        assert!(text.contains("x = 1") && text.contains("y = ?"), "{text}");
    }
}
