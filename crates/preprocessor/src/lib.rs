//! # qb-preprocessor
//!
//! The QB5000 **Pre-Processor** (§4). For every query the DBMS forwards it:
//!
//! 1. extracts the constants (WHERE-predicate values, UPDATE `SET` values,
//!    INSERT `VALUES`, batched-INSERT row counts) and replaces them with
//!    placeholders, yielding a *template*;
//! 2. normalizes spacing / case / parenthesis placement via the canonical
//!    formatter in `qb-sqlparse`;
//! 3. folds templates with equivalent *semantic features* (same tables, same
//!    predicate structure, same projections) into one tracked template;
//! 4. records the arrival-rate history per template at one-minute
//!    granularity, compacting stale records into coarser buckets;
//! 5. keeps a reservoir sample of each template's original parameters for
//!    the planning module (Vitter's Algorithm R).
//!
//! The entry point is [`PreProcessor::ingest`].

pub mod fingerprint;
pub mod logical;
pub mod reservoir;
pub mod shard;
pub mod template;

use std::collections::{HashMap, VecDeque};

use qb_obs::Recorder;
use qb_sqlparse::{parse_statement, Literal, ParseError, Statement};
use qb_trace::{EventDraft, EventKind, Scope, Tracer};
use qb_timeseries::{ArrivalHistory, ArrivalHistoryState, CompactionPolicy, Interval, Minute};

pub use fingerprint::{semantic_fingerprint, Fingerprint};
pub use logical::LogicalFeatures;
pub use reservoir::Reservoir;
pub use shard::{BatchItem, BatchReport};
pub use template::{bind_params, templatize, TemplatizedQuery};

/// Stable identifier of a tracked template. Indexes into the Pre-Processor's
/// template table and is the unit the Clusterer groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// Everything QB5000 tracks about one template.
#[derive(Debug)]
pub struct TemplateEntry {
    pub id: TemplateId,
    /// The canonical templated SQL text (placeholders for constants).
    pub text: String,
    /// Statement verb (`SELECT` / `INSERT` / `UPDATE` / `DELETE`).
    pub kind: &'static str,
    /// Tables the template touches.
    pub tables: Vec<String>,
    /// Logical feature vector for the §7.7 ablation.
    pub logical: LogicalFeatures,
    /// Per-minute arrival counts.
    pub history: ArrivalHistory,
    /// Reservoir of original parameter vectors.
    pub params: Reservoir<Vec<Literal>>,
    /// The templated AST, kept for the dbsim executor and index advisor.
    pub statement: Statement,
}

/// Errors surfaced while ingesting a query.
#[derive(Debug, Clone, PartialEq)]
pub enum PreProcessError {
    /// The SQL string failed to parse; QB5000 skips such statements.
    Parse(ParseError),
}

impl std::fmt::Display for PreProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreProcessError::Parse(e) => write!(f, "unparseable query: {e}"),
        }
    }
}

impl std::error::Error for PreProcessError {}

impl From<ParseError> for PreProcessError {
    fn from(e: ParseError) -> Self {
        PreProcessError::Parse(e)
    }
}

/// How many rejected statements the quarantine retains for inspection.
pub const QUARANTINE_SAMPLE_CAPACITY: usize = 32;

/// Longest SQL prefix (in characters) a quarantine sample stores. Bounds
/// memory even when a fault hands us a megabyte of garbage.
const QUARANTINE_SQL_PREFIX: usize = 200;

/// One rejected statement retained for inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedStatement {
    pub minute: Minute,
    /// Bounded prefix of the offending SQL.
    pub sql: String,
    pub error: String,
}

/// Bounded record of statements the Pre-Processor refused.
///
/// QB5000 skips unparseable statements (§4); under fault injection that can
/// be a meaningful fraction of the stream, so instead of losing them
/// silently the Pre-Processor counts every rejection and keeps the most
/// recent [`QUARANTINE_SAMPLE_CAPACITY`] offenders in a ring buffer.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    rejected_statements: u64,
    rejected_arrivals: u64,
    samples: VecDeque<QuarantinedStatement>,
    last_error: Option<String>,
}

impl Quarantine {
    fn admit(&mut self, minute: Minute, sql: &str, count: u64, err: &PreProcessError) {
        self.rejected_statements += 1;
        self.rejected_arrivals += count;
        let error = err.to_string();
        if self.samples.len() == QUARANTINE_SAMPLE_CAPACITY {
            self.samples.pop_front();
        }
        self.samples.push_back(QuarantinedStatement {
            minute,
            sql: sql.chars().take(QUARANTINE_SQL_PREFIX).collect(),
            error: error.clone(),
        });
        self.last_error = Some(error);
    }

    /// Rejected ingest calls (each may carry many arrivals).
    pub fn rejected_statements(&self) -> u64 {
        self.rejected_statements
    }

    /// Rejected arrivals (weighted by each call's `count`).
    pub fn rejected_arrivals(&self) -> u64 {
        self.rejected_arrivals
    }

    /// The retained samples, oldest first (at most
    /// [`QUARANTINE_SAMPLE_CAPACITY`]).
    pub fn samples(&self) -> impl Iterator<Item = &QuarantinedStatement> {
        self.samples.iter()
    }

    /// The most recent rejection's error message.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Plain-data snapshot of the quarantine.
    pub fn export_state(&self) -> QuarantineState {
        QuarantineState {
            rejected_statements: self.rejected_statements,
            rejected_arrivals: self.rejected_arrivals,
            samples: self.samples.iter().cloned().collect(),
            last_error: self.last_error.clone(),
        }
    }

    /// Rebuilds the quarantine from a snapshot. Samples beyond
    /// [`QUARANTINE_SAMPLE_CAPACITY`] keep only the newest.
    pub fn from_state(state: QuarantineState) -> Self {
        let start = state.samples.len().saturating_sub(QUARANTINE_SAMPLE_CAPACITY);
        Self {
            rejected_statements: state.rejected_statements,
            rejected_arrivals: state.rejected_arrivals,
            samples: state.samples[start..].iter().cloned().collect(),
            last_error: state.last_error,
        }
    }
}

/// Plain-data snapshot of a [`Quarantine`] (durable-state export).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuarantineState {
    pub rejected_statements: u64,
    pub rejected_arrivals: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<QuarantinedStatement>,
    pub last_error: Option<String>,
}

/// Aggregate counters for Table 1 / Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    pub total_queries: u64,
    pub selects: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
}

/// Configuration knobs for the Pre-Processor.
#[derive(Debug, Clone)]
pub struct PreProcessorConfig {
    /// How many parameter vectors to keep per template.
    pub reservoir_capacity: usize,
    /// Stale-record compaction policy for arrival histories.
    pub compaction: CompactionPolicy,
    /// Fold semantically equivalent templates together (§4's final step).
    /// Disable only for the ablation that measures how much the heuristic
    /// equivalence reduces template counts.
    pub semantic_folding: bool,
    /// Seed for the reservoir's RNG (deterministic sampling).
    pub seed: u64,
    /// Upper bound on cached raw SQL strings (exact-repeat parser bypass).
    /// When the bound is reached the cache takes a generational reset —
    /// it is cleared and refills with whatever is hot *now* — so template
    /// churn cannot freeze it on a stale working set. Size it at or above
    /// the expected distinct-statement working set for sustained ingest.
    pub raw_cache_limit: usize,
    /// Logical shard count for the batched ingest engine
    /// ([`PreProcessor::ingest_batch`]). Content routing (raw-text hash →
    /// shard) and the merged output depend on this number but **not** on
    /// the worker-pool width, so any `QB_THREADS` value replays the same
    /// state. Fix it per deployment like any other config knob.
    pub ingest_shards: usize,
}

impl Default for PreProcessorConfig {
    fn default() -> Self {
        Self {
            reservoir_capacity: 100,
            compaction: CompactionPolicy::default(),
            semantic_folding: true,
            seed: 0x5000,
            raw_cache_limit: 65_536,
            ingest_shards: 8,
        }
    }
}

/// Cached metric handles; all no-ops until [`PreProcessor::set_recorder`]
/// installs an enabled recorder.
#[derive(Debug, Default)]
struct PreMetrics {
    /// Wall time per `ingest*` call (includes cache hits).
    ingest_time: qb_obs::Histogram,
    ingested_statements: qb_obs::Counter,
    ingested_arrivals: qb_obs::Counter,
    quarantined_statements: qb_obs::Counter,
    quarantined_arrivals: qb_obs::Counter,
    cache_hits: qb_obs::Counter,
    templates: qb_obs::Gauge,
}

impl PreMetrics {
    fn resolve(recorder: &Recorder) -> Self {
        Self {
            ingest_time: recorder.histogram("preprocessor.ingest"),
            ingested_statements: recorder.counter("preprocessor.ingested_statements"),
            ingested_arrivals: recorder.counter("preprocessor.ingested_arrivals"),
            quarantined_statements: recorder.counter("preprocessor.quarantined_statements"),
            quarantined_arrivals: recorder.counter("preprocessor.quarantined_arrivals"),
            cache_hits: recorder.counter("preprocessor.cache_hits"),
            templates: recorder.gauge("preprocessor.templates"),
        }
    }
}

/// The Pre-Processor: maps raw SQL to templates and records arrival rates.
pub struct PreProcessor {
    config: PreProcessorConfig,
    metrics: PreMetrics,
    /// Semantic fingerprint → template id (the §4 equivalence folding).
    by_fingerprint: HashMap<Fingerprint, TemplateId>,
    /// Distinct canonical template texts seen (pre-folding), for Table 2.
    distinct_texts: HashMap<String, TemplateId>,
    entries: Vec<TemplateEntry>,
    stats: IngestStats,
    /// Cache: raw SQL string → template id. Real applications repeat the
    /// same literal strings constantly; this short-circuits the parser for
    /// exact repeats without affecting correctness.
    raw_cache: HashMap<String, TemplateId>,
    cache_hits: u64,
    next_seed: u64,
    quarantine: Quarantine,
    tracer: Tracer,
    /// Shard-local caches for the batched ingest engine; empty until the
    /// first [`PreProcessor::ingest_batch`] call.
    shards: Vec<shard::Shard>,
}

impl PreProcessor {
    pub fn new(config: PreProcessorConfig) -> Self {
        let next_seed = config.seed;
        Self {
            config,
            metrics: PreMetrics::default(),
            by_fingerprint: HashMap::new(),
            distinct_texts: HashMap::new(),
            entries: Vec::new(),
            stats: IngestStats::default(),
            raw_cache: HashMap::new(),
            cache_hits: 0,
            next_seed,
            quarantine: Quarantine::default(),
            tracer: Tracer::disabled(),
            shards: Vec::new(),
        }
    }

    /// Installs a [`Recorder`]: subsequent ingest calls record
    /// `preprocessor.*` counters, the template-count gauge, and per-call
    /// ingest latency. Metric names resolve once, here; the hot path only
    /// touches cached handles.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = PreMetrics::resolve(recorder);
    }

    /// Installs a [`Tracer`]: first sightings of a template emit
    /// `QuerySeen → TemplateCreated` (anchored under [`Scope::Template`]
    /// so downstream stages can link to them) and every quarantined
    /// statement emits `QueryQuarantined`. Cache hits and repeat arrivals
    /// emit nothing, keeping the hot path event-free.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Ingests one query arriving at minute `t`.
    pub fn ingest(&mut self, t: Minute, sql: &str) -> Result<TemplateId, PreProcessError> {
        self.ingest_weighted(t, sql, 1)
    }

    /// Ingests `count` identical arrivals of `sql` at minute `t`.
    ///
    /// The batched form is how the trace generators replay high-volume
    /// workloads without materializing duplicate strings; the templating
    /// path is identical to [`PreProcessor::ingest`].
    pub fn ingest_weighted(
        &mut self,
        t: Minute,
        sql: &str,
        count: u64,
    ) -> Result<TemplateId, PreProcessError> {
        let _span = self.metrics.ingest_time.start();
        if let Some(&id) = self.raw_cache.get(sql) {
            // Re-parse one in 64 cache hits so repeated identical strings
            // still feed the parameter reservoir (a permanent bypass would
            // starve it of exactly the hottest queries). Both branches are
            // cache hits — the reparse is a reservoir refresh, not a miss —
            // so the hit counter increments before the cadence split.
            self.cache_hits = self.cache_hits.wrapping_add(1);
            self.metrics.cache_hits.inc();
            if !self.cache_hits.is_multiple_of(64) {
                self.metrics.ingested_statements.inc();
                self.metrics.ingested_arrivals.add(count);
                self.bump(id, t, count, None);
                return Ok(id);
            }
        }

        let stmt = match parse_statement(sql) {
            Ok(s) => s,
            Err(e) => {
                let err = PreProcessError::Parse(e);
                self.quarantine.admit(t, sql, count, &err);
                self.metrics.quarantined_statements.inc();
                self.metrics.quarantined_arrivals.add(count);
                if self.tracer.is_enabled() {
                    let msg: String = err.to_string().chars().take(120).collect();
                    self.tracer.record(
                        EventDraft::new(EventKind::QueryQuarantined)
                            .int("minute", t)
                            .uint("count", count)
                            .text("error", &msg),
                    );
                }
                return Err(err);
            }
        };
        let templatized = templatize(&stmt);
        let before = self.entries.len();
        let TemplatizedQuery { template, text, params, .. } = templatized;
        let id = self.intern_owned(template, text);
        if self.entries.len() > before {
            self.trace_new_template(t, id);
        }
        self.bump(id, t, count, Some(params));
        self.metrics.ingested_statements.inc();
        self.metrics.ingested_arrivals.add(count);
        self.cache_insert(sql, id);
        Ok(id)
    }

    /// Ingests an already-parsed statement (used by dbsim replay, which
    /// parses once and executes many times).
    pub fn ingest_statement(&mut self, t: Minute, stmt: &Statement, count: u64) -> TemplateId {
        let _span = self.metrics.ingest_time.start();
        let templatized = templatize(stmt);
        let before = self.entries.len();
        let TemplatizedQuery { template, text, params, .. } = templatized;
        let id = self.intern_owned(template, text);
        if self.entries.len() > before {
            self.trace_new_template(t, id);
        }
        self.bump(id, t, count, Some(params));
        self.metrics.ingested_statements.inc();
        self.metrics.ingested_arrivals.add(count);
        id
    }

    /// Inserts into the raw-string cache under the generational-reset
    /// eviction policy: at `raw_cache_limit` the whole cache is dropped and
    /// refills with the current working set. Under template churn the hit
    /// rate dips for one generation and recovers, instead of freezing on
    /// whatever filled the cache first. The reset point is a pure function
    /// of the insertion sequence, so it replays identically from a
    /// snapshot.
    fn cache_insert(&mut self, sql: &str, id: TemplateId) {
        if self.raw_cache.len() >= self.config.raw_cache_limit {
            self.raw_cache.clear();
        }
        self.raw_cache.insert(sql.to_string(), id);
    }

    /// Interns a templated statement, taking ownership of the canonical
    /// text and AST so the fresh-template path stores them without cloning
    /// (the dedup-map key is the one remaining copy).
    fn intern_owned(&mut self, template: Statement, text: String) -> TemplateId {
        if let Some(&id) = self.distinct_texts.get(&text) {
            return id;
        }
        let fp = semantic_fingerprint(&template);
        if self.config.semantic_folding {
            if let Some(&id) = self.by_fingerprint.get(&fp) {
                // A new spelling that is semantically equivalent to a known
                // template: count the distinct text but reuse the entry.
                self.distinct_texts.insert(text, id);
                return id;
            }
        }
        let id = TemplateId(self.entries.len() as u32);
        self.next_seed = self.next_seed.wrapping_mul(6364136223846793005).wrapping_add(id.0 as u64);
        self.distinct_texts.insert(text.clone(), id);
        self.entries.push(TemplateEntry {
            id,
            kind: template.kind_name(),
            tables: template.tables(),
            logical: LogicalFeatures::extract(&template),
            history: ArrivalHistory::new(),
            params: Reservoir::new(self.config.reservoir_capacity, self.next_seed),
            statement: template,
            text,
        });
        // First-wins: when folding is disabled every template still lands
        // here, and a later same-fingerprint template must not hijack the
        // mapping — a restore that re-enables folding would otherwise fold
        // onto whichever template happened to be interned last.
        self.by_fingerprint.entry(fp).or_insert(id);
        self.metrics.templates.set(self.entries.len() as f64);
        id
    }

    /// Emits the `QuerySeen → TemplateCreated` pair for a just-interned
    /// template and anchors the creation event under its id.
    fn trace_new_template(&self, t: Minute, id: TemplateId) {
        if !self.tracer.is_enabled() {
            return;
        }
        let entry = &self.entries[id.0 as usize];
        let text: String = entry.text.chars().take(80).collect();
        let seen = self.tracer.record(
            EventDraft::new(EventKind::QuerySeen).int("minute", t).uint("len", entry.text.len() as u64),
        );
        let created = self.tracer.record(
            EventDraft::new(EventKind::TemplateCreated)
                .parent_opt(seen)
                .uint("template", id.0 as u64)
                .text("kind", entry.kind)
                .text("text", &text),
        );
        if let Some(created) = created {
            self.tracer.set_anchor(Scope::Template, id.0 as u64, created);
        }
    }

    fn bump(&mut self, id: TemplateId, t: Minute, count: u64, params: Option<Vec<Literal>>) {
        let entry = &mut self.entries[id.0 as usize];
        entry.history.record(t, count);
        if let Some(p) = params {
            entry.params.offer(p);
        }
        self.stats.total_queries += count;
        match entry.kind {
            "SELECT" => self.stats.selects += count,
            "INSERT" => self.stats.inserts += count,
            "UPDATE" => self.stats.updates += count,
            "DELETE" => self.stats.deletes += count,
            _ => unreachable!("kind is one of the four DML verbs"),
        }
    }

    /// Compacts every template's stale history records.
    pub fn compact_histories(&mut self) {
        let policy = self.config.compaction;
        for e in &mut self.entries {
            e.history.compact(&policy);
        }
    }

    /// All tracked templates.
    pub fn templates(&self) -> &[TemplateEntry] {
        &self.entries
    }

    /// Lookup by id.
    pub fn template(&self, id: TemplateId) -> &TemplateEntry {
        &self.entries[id.0 as usize]
    }

    /// Number of templates after semantic folding (Table 2 row 2).
    pub fn num_templates(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct canonical texts before semantic folding.
    pub fn num_distinct_texts(&self) -> usize {
        self.distinct_texts.len()
    }

    /// Ingest counters.
    /// The rejected-statement record.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Dense per-interval series for one template over `[start, end)`.
    pub fn template_series(
        &self,
        id: TemplateId,
        start: Minute,
        end: Minute,
        interval: Interval,
    ) -> Vec<f64> {
        self.entries[id.0 as usize].history.dense_series(start, end, interval)
    }

    /// Exports the complete mutable state as plain data (durable-snapshot
    /// support). Everything needed to continue ingesting with *identical*
    /// behavior is captured: template table, folding/dedup maps, raw-string
    /// cache and its re-parse cadence counter, reservoir RNG states, ingest
    /// stats, and the quarantine. Map contents are emitted in sorted order
    /// so the export is byte-stable across runs.
    pub fn export_state(&self) -> PreProcessorState {
        let mut distinct_texts: Vec<(String, u32)> =
            self.distinct_texts.iter().map(|(t, id)| (t.clone(), id.0)).collect();
        distinct_texts.sort();
        let mut raw_cache: Vec<(String, u32)> =
            self.raw_cache.iter().map(|(t, id)| (t.clone(), id.0)).collect();
        raw_cache.sort();
        PreProcessorState {
            entries: self
                .entries
                .iter()
                .map(|e| TemplateEntryState {
                    text: e.text.clone(),
                    history: e.history.export_state(),
                    params_seen: e.params.seen(),
                    params_items: e.params.items().to_vec(),
                    params_rng: e.params.rng_state(),
                })
                .collect(),
            distinct_texts,
            raw_cache,
            shard_slots: {
                let mut slots: Vec<(String, u32, u64)> = self
                    .shards
                    .iter()
                    .flat_map(|s| s.export_slots())
                    .map(|(sql, id, hits)| (sql, id.0, hits))
                    .collect();
                slots.sort();
                slots
            },
            cache_hits: self.cache_hits,
            next_seed: self.next_seed,
            stats: self.stats,
            quarantine: self.quarantine.export_state(),
        }
    }

    /// Rebuilds a Pre-Processor from exported state.
    ///
    /// `config` must match the configuration of the exporting instance
    /// (reservoir capacity and folding mode shape the stored state).
    /// Template ASTs, verbs, table lists, logical features, and semantic
    /// fingerprints are reconstructed by re-parsing each entry's canonical
    /// text — templatizing canonical text is idempotent, so the rebuilt
    /// table is equivalent to the one that was exported.
    pub fn restore(
        config: PreProcessorConfig,
        state: PreProcessorState,
    ) -> Result<Self, PreProcessError> {
        let mut pp = PreProcessor::new(config);
        for (idx, es) in state.entries.into_iter().enumerate() {
            let stmt = parse_statement(&es.text)?;
            let tq = templatize(&stmt);
            debug_assert_eq!(tq.text, es.text, "canonical template text must re-templatize to itself");
            let id = TemplateId(idx as u32);
            // First-wins, matching `intern_owned`: with folding disabled,
            // several entries can share a fingerprint, and the mapping must
            // keep pointing at the earliest one.
            pp.by_fingerprint.entry(semantic_fingerprint(&tq.template)).or_insert(id);
            pp.entries.push(TemplateEntry {
                id,
                text: es.text,
                kind: tq.template.kind_name(),
                tables: tq.template.tables(),
                logical: LogicalFeatures::extract(&tq.template),
                history: ArrivalHistory::from_state(es.history),
                params: Reservoir::from_parts(
                    pp.config.reservoir_capacity,
                    es.params_seen,
                    es.params_items,
                    es.params_rng,
                ),
                statement: tq.template,
            });
        }
        pp.distinct_texts =
            state.distinct_texts.into_iter().map(|(t, id)| (t, TemplateId(id))).collect();
        pp.raw_cache = state.raw_cache.into_iter().map(|(t, id)| (t, TemplateId(id))).collect();
        if !state.shard_slots.is_empty() {
            pp.ensure_shards();
            for (sql, id, hits) in state.shard_slots {
                let n = pp.shards.len();
                pp.shards[shard::route(&sql, n)].restore_slot(sql, TemplateId(id), hits);
            }
        }
        pp.cache_hits = state.cache_hits;
        pp.next_seed = state.next_seed;
        pp.stats = state.stats;
        pp.quarantine = Quarantine::from_state(state.quarantine);
        Ok(pp)
    }
}

/// Plain-data snapshot of one [`TemplateEntry`]. The AST and derived
/// features are *not* stored — they are rebuilt from the canonical text,
/// which is the compact, version-stable representation.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateEntryState {
    /// Canonical templated SQL text (placeholders for constants).
    pub text: String,
    pub history: ArrivalHistoryState,
    pub params_seen: u64,
    pub params_items: Vec<Vec<Literal>>,
    pub params_rng: [u64; 4],
}

/// Plain-data snapshot of a [`PreProcessor`] (durable-state export).
///
/// Entry order is template-id order; map fields are sorted by key so two
/// exports of identical state are identical values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PreProcessorState {
    pub entries: Vec<TemplateEntryState>,
    pub distinct_texts: Vec<(String, u32)>,
    pub raw_cache: Vec<(String, u32)>,
    /// Shard-cache slots from the batched ingest engine, sorted by SQL
    /// text: `(raw sql, template id, per-slot hit count)`. Pending slots
    /// never appear here — every batch resolves its pendings before
    /// returning. Batch ticks restart at zero after a restore, which only
    /// resets the once-per-batch sighting dedup, not any counted state.
    pub shard_slots: Vec<(String, u32, u64)>,
    pub cache_hits: u64,
    pub next_seed: u64,
    pub stats: IngestStats,
    pub quarantine: QuarantineState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp() -> PreProcessor {
        PreProcessor::new(PreProcessorConfig::default())
    }

    #[test]
    fn same_template_different_constants_merge() {
        let mut p = pp();
        let a = p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        let b = p.ingest(1, "SELECT x FROM t WHERE id = 999").unwrap();
        assert_eq!(a, b);
        assert_eq!(p.num_templates(), 1);
        assert_eq!(p.stats().total_queries, 2);
    }

    #[test]
    fn case_and_spacing_normalized() {
        let mut p = pp();
        let a = p.ingest(0, "select X  from T where ID=1").unwrap();
        let b = p.ingest(0, "SELECT x FROM t WHERE id = 2").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_tables_different_templates() {
        let mut p = pp();
        let a = p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        let b = p.ingest(0, "SELECT x FROM u WHERE id = 1").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.num_templates(), 2);
    }

    #[test]
    fn arrival_history_recorded_per_minute() {
        let mut p = pp();
        let id = p.ingest(10, "SELECT x FROM t WHERE id = 1").unwrap();
        p.ingest(10, "SELECT x FROM t WHERE id = 2").unwrap();
        p.ingest(11, "SELECT x FROM t WHERE id = 3").unwrap();
        let series = p.template_series(id, 10, 12, Interval::MINUTE);
        assert_eq!(series, vec![2.0, 1.0]);
    }

    #[test]
    fn weighted_ingest_counts() {
        let mut p = pp();
        let id = p.ingest_weighted(0, "SELECT x FROM t WHERE id = 5", 1000).unwrap();
        assert_eq!(p.template(id).history.total(), 1000);
        assert_eq!(p.stats().selects, 1000);
    }

    #[test]
    fn kind_counters() {
        let mut p = pp();
        p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        p.ingest(0, "INSERT INTO t (a) VALUES (1)").unwrap();
        p.ingest(0, "UPDATE t SET a = 2 WHERE id = 1").unwrap();
        p.ingest(0, "DELETE FROM t WHERE id = 1").unwrap();
        let s = p.stats();
        assert_eq!((s.selects, s.inserts, s.updates, s.deletes), (1, 1, 1, 1));
    }

    #[test]
    fn unparseable_sql_is_error() {
        let mut p = pp();
        assert!(p.ingest(0, "CREATE TABLE nope (x int)").is_err());
        assert_eq!(p.stats().total_queries, 0);
    }

    #[test]
    fn rejections_are_quarantined_with_samples() {
        let mut p = pp();
        assert!(p.ingest_weighted(7, "SELEC broken ((", 5).is_err());
        assert!(p.ingest(9, "").is_err());
        p.ingest(9, "SELECT x FROM t WHERE id = 1").unwrap();
        let q = p.quarantine();
        assert_eq!(q.rejected_statements(), 2);
        assert_eq!(q.rejected_arrivals(), 6);
        let samples: Vec<_> = q.samples().collect();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].minute, 7);
        assert_eq!(samples[0].sql, "SELEC broken ((");
        assert!(q.last_error().is_some());
    }

    #[test]
    fn quarantine_ring_buffer_is_bounded() {
        let mut p = pp();
        for i in 0..(QUARANTINE_SAMPLE_CAPACITY as i64 + 10) {
            let _ = p.ingest(i, &format!("NOT SQL {i}"));
        }
        let q = p.quarantine();
        assert_eq!(q.rejected_statements(), QUARANTINE_SAMPLE_CAPACITY as u64 + 10);
        assert_eq!(q.samples().count(), QUARANTINE_SAMPLE_CAPACITY);
        // Oldest entries were evicted: the ring holds the newest ones.
        assert_eq!(q.samples().next().unwrap().minute, 10);
    }

    #[test]
    fn quarantine_bounds_sql_sample_length() {
        let mut p = pp();
        let huge = format!("GARBAGE {}", "x".repeat(10_000));
        assert!(p.ingest(0, &huge).is_err());
        let sample = p.quarantine().samples().next().unwrap();
        assert!(sample.sql.chars().count() <= 200, "{}", sample.sql.len());
    }

    #[test]
    fn params_sampled() {
        let mut p = pp();
        let id = p.ingest(0, "SELECT x FROM t WHERE id = 42").unwrap();
        let entry = p.template(id);
        assert_eq!(entry.params.len(), 1);
        assert_eq!(entry.params.items()[0], vec![Literal::Integer(42)]);
    }

    #[test]
    fn raw_cache_hit_still_counts() {
        let mut p = pp();
        let a = p.ingest(0, "SELECT x FROM t WHERE id = 7").unwrap();
        let b = p.ingest(5, "SELECT x FROM t WHERE id = 7").unwrap();
        assert_eq!(a, b);
        assert_eq!(p.template(a).history.total(), 2);
    }

    #[test]
    fn recorder_counts_ingest_and_quarantine() {
        let rec = Recorder::new();
        let mut p = pp();
        p.set_recorder(&rec);
        p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap(); // raw-cache hit
        let _ = p.ingest_weighted(1, "BROKEN ((", 3);
        let snap = rec.snapshot();
        assert_eq!(snap.counters["preprocessor.ingested_statements"], 2);
        assert_eq!(snap.counters["preprocessor.ingested_arrivals"], 2);
        assert_eq!(snap.counters["preprocessor.quarantined_statements"], 1);
        assert_eq!(snap.counters["preprocessor.quarantined_arrivals"], 3);
        assert_eq!(snap.counters["preprocessor.cache_hits"], 1);
        assert_eq!(snap.gauges["preprocessor.templates"], 1.0);
        assert_eq!(snap.histograms["preprocessor.ingest"].count, 3);
    }

    #[test]
    fn tracer_emits_template_lineage_and_quarantine() {
        let tracer = Tracer::enabled();
        let mut p = pp();
        p.set_tracer(&tracer);
        let id = p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        p.ingest(1, "SELECT x FROM t WHERE id = 2").unwrap(); // repeat: silent
        let _ = p.ingest(2, "BROKEN ((");
        let view = tracer.view();
        assert_eq!(view.of_kind(EventKind::QuerySeen).count(), 1);
        assert_eq!(view.of_kind(EventKind::TemplateCreated).count(), 1);
        assert_eq!(view.of_kind(EventKind::QueryQuarantined).count(), 1);
        let anchor = tracer.anchor(Scope::Template, id.0 as u64).expect("template anchored");
        let explain = view.explain(anchor);
        assert!(explain.contains("TemplateCreated"), "{explain}");
        assert!(explain.contains("QuerySeen"), "{explain}");
    }

    #[test]
    fn state_round_trip_continues_identically() {
        let mut live = pp();
        // Exercise every stateful path: folding, quarantine, weighted
        // arrivals, and enough raw-cache repeats to cross the re-parse
        // cadence boundary.
        live.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        live.ingest(0, "INSERT INTO t (a) VALUES (1)").unwrap();
        live.ingest_weighted(1, "UPDATE t SET a = 2 WHERE id = 3", 40).unwrap();
        let _ = live.ingest_weighted(2, "BROKEN ((", 5);
        for i in 0..70 {
            live.ingest(3 + i % 2, "SELECT x FROM t WHERE id = 1").unwrap();
        }
        live.compact_histories();

        let exported = live.export_state();
        let mut restored =
            PreProcessor::restore(PreProcessorConfig::default(), exported.clone()).unwrap();
        assert_eq!(restored.export_state(), exported, "restore must be lossless");
        assert_eq!(restored.num_templates(), live.num_templates());
        assert_eq!(restored.num_distinct_texts(), live.num_distinct_texts());
        assert_eq!(restored.stats(), live.stats());
        assert_eq!(
            restored.quarantine().rejected_arrivals(),
            live.quarantine().rejected_arrivals()
        );

        // Both instances must behave identically from here on — same ids,
        // same reservoir decisions, same cache cadence.
        let follow_up = [
            "SELECT x FROM t WHERE id = 1",
            "SELECT x FROM t WHERE id = 9",
            "DELETE FROM t WHERE id = 4",
            "SELECT x FROM t WHERE id = 1",
        ];
        for round in 0..30 {
            for sql in follow_up {
                let a = live.ingest(100 + round, sql).unwrap();
                let b = restored.ingest(100 + round, sql).unwrap();
                assert_eq!(a, b);
            }
        }
        let _ = live.ingest(200, "ALSO BROKEN ((");
        let _ = restored.ingest(200, "ALSO BROKEN ((");
        assert_eq!(live.export_state(), restored.export_state());
    }

    #[test]
    fn cache_hit_counter_identity_across_fast_and_reparse_paths() {
        // Regression: the 1-in-64 reservoir-refresh re-parse used to skip
        // `cache_hits.inc()`, undercounting the hit rate. Both branches of
        // a raw-cache hit are hits; only the first sighting is a miss.
        let rec = Recorder::new();
        let mut p = pp();
        p.set_recorder(&rec);
        for _ in 0..129 {
            p.ingest(0, "SELECT x FROM t WHERE id = 1").unwrap();
        }
        let snap = rec.snapshot();
        // 129 ingests = 1 miss + 128 hits (two of which — the 64th and
        // 128th — took the re-parse branch). Every one was ingested.
        assert_eq!(snap.counters["preprocessor.cache_hits"], 128);
        assert_eq!(snap.counters["preprocessor.ingested_statements"], 129);
        assert_eq!(snap.counters["preprocessor.ingested_arrivals"], 129);
        assert_eq!(p.template(TemplateId(0)).history.total(), 129);
        // The re-parse branch really ran: the reservoir saw the initial
        // parse plus two refreshes.
        assert_eq!(p.template(TemplateId(0)).params.seen(), 3);
    }

    #[test]
    fn raw_cache_recovers_hit_rate_after_churn() {
        // Regression: the cache used to fill once and never evict, so a
        // shifted working set re-parsed forever. The generational reset
        // clears at the bound and refills with the current working set.
        let rec = Recorder::new();
        let mut p = PreProcessor::new(PreProcessorConfig {
            raw_cache_limit: 8,
            ..PreProcessorConfig::default()
        });
        p.set_recorder(&rec);
        let gen1: Vec<String> =
            (0..8).map(|i| format!("SELECT x FROM t WHERE id = {i}")).collect();
        let gen2: Vec<String> =
            (0..8).map(|i| format!("SELECT x FROM t WHERE id = {}", 100 + i)).collect();
        for sql in &gen1 {
            p.ingest(0, sql).unwrap();
        }
        // Churn to a new working set (first insert past the bound resets),
        // then repeat it: every repeat must be a cache hit.
        for sql in &gen2 {
            p.ingest(1, sql).unwrap();
        }
        let before = rec.snapshot().counters["preprocessor.cache_hits"];
        for sql in &gen2 {
            p.ingest(2, sql).unwrap();
        }
        let after = rec.snapshot().counters["preprocessor.cache_hits"];
        assert_eq!(after - before, 8, "post-churn working set must be fully cached");
    }

    #[test]
    fn fingerprint_mapping_is_first_wins_and_survives_restore() {
        // Three spellings of one semantic template (rotated conjuncts):
        // with folding disabled they intern as distinct templates, but the
        // fingerprint map must keep pointing at the *first* — a later
        // restore that re-enables folding folds onto it, not onto
        // whichever entry happened to be interned last.
        let spellings = [
            "SELECT x FROM t WHERE p = 1 AND q = 2 AND r = 3",
            "SELECT x FROM t WHERE q = 4 AND r = 5 AND p = 6",
            "SELECT x FROM t WHERE r = 7 AND p = 8 AND q = 9",
        ];
        let unfolded_cfg = PreProcessorConfig {
            semantic_folding: false,
            ..PreProcessorConfig::default()
        };
        let mut p = PreProcessor::new(unfolded_cfg.clone());
        let a = p.ingest(0, spellings[0]).unwrap();
        let b = p.ingest(0, spellings[1]).unwrap();
        assert_ne!(a, b, "ablation keeps spellings distinct");

        // Same-config round trip is lossless.
        let exported = p.export_state();
        let restored = PreProcessor::restore(unfolded_cfg, exported.clone()).unwrap();
        assert_eq!(restored.export_state(), exported);

        // Re-enabling folding on restore folds new spellings onto the
        // first-interned template.
        let folding_cfg = PreProcessorConfig::default();
        let mut refolded = PreProcessor::restore(folding_cfg, exported).unwrap();
        let c = refolded.ingest(1, spellings[2]).unwrap();
        assert_eq!(c, a, "folding must target the first-interned template");

        // And the live instance agrees: a fresh spelling of the same
        // fingerprint folds onto the first template, not the last.
        let mut live = PreProcessor::new(PreProcessorConfig::default());
        let first = live.ingest(0, spellings[0]).unwrap();
        let folded = live.ingest(0, spellings[1]).unwrap();
        assert_eq!(folded, first);
    }

    #[test]
    fn template_text_has_placeholders() {
        let mut p = pp();
        let id = p.ingest(0, "SELECT x FROM t WHERE id = 7 AND name = 'bob'").unwrap();
        let text = &p.template(id).text;
        assert!(text.contains('?'), "{text}");
        assert!(!text.contains('7') && !text.contains("bob"), "{text}");
    }
}

#[cfg(test)]
mod accounting_proptests {
    use super::*;
    use proptest::prelude::*;

    /// One ingest call, in any of the three entry-point flavors.
    #[derive(Debug, Clone)]
    enum Op {
        /// `ingest` (weight 1).
        Plain { sql: usize, minute: Minute },
        /// `ingest_weighted` at an arbitrary weight.
        Weighted { sql: usize, minute: Minute, count: u64 },
        /// `ingest_statement` with a pre-parsed statement.
        Statement { sql: usize, minute: Minute, count: u64 },
    }

    /// A small pool mixing hot repeats (cache-hit + re-parse cadence),
    /// distinct constants (fresh templates), folding spellings, and
    /// garbage (quarantine).
    const POOL: &[&str] = &[
        "SELECT x FROM t WHERE id = 1",
        "SELECT x FROM t WHERE id = 1",
        "SELECT x FROM t WHERE id = 2",
        "SELECT y FROM u WHERE a = 3 AND b = 4",
        "SELECT y FROM u WHERE b = 5 AND a = 6",
        "INSERT INTO t (a) VALUES (7)",
        "UPDATE t SET a = 8 WHERE id = 9",
        "DELETE FROM t WHERE id = 10",
        "BROKEN ((",
        "",
    ];

    fn op_strategy() -> impl Strategy<Value = Op> {
        let sql = 0..POOL.len();
        let minute = 0i64..120;
        let count = 1u64..1_000;
        prop_oneof![
            (sql.clone(), minute.clone()).prop_map(|(sql, minute)| Op::Plain { sql, minute }),
            (sql.clone(), minute.clone(), count.clone())
                .prop_map(|(sql, minute, count)| Op::Weighted { sql, minute, count }),
            (sql, minute, count)
                .prop_map(|(sql, minute, count)| Op::Statement { sql, minute, count }),
        ]
    }

    proptest! {
        /// The ingest accounting identity: every weighted arrival offered
        /// to the Pre-Processor lands in exactly one of two ledgers —
        /// template arrival histories (== `stats.total_queries`) or the
        /// quarantine — across cache-hit, re-parse, and fresh-template
        /// paths at arbitrary weights.
        #[test]
        fn arrivals_in_equals_history_bumps_plus_quarantined(
            ops in proptest::collection::vec(op_strategy(), 1..400),
        ) {
            let mut p = PreProcessor::new(PreProcessorConfig::default());
            let mut offered: u64 = 0;
            for op in &ops {
                match *op {
                    Op::Plain { sql, minute } => {
                        offered += 1;
                        let _ = p.ingest(minute, POOL[sql]);
                    }
                    Op::Weighted { sql, minute, count } => {
                        offered += count;
                        let _ = p.ingest_weighted(minute, POOL[sql], count);
                    }
                    Op::Statement { sql, minute, count } => {
                        // `ingest_statement` takes a pre-parsed statement;
                        // unparseable pool entries can't take this path.
                        match parse_statement(POOL[sql]) {
                            Ok(stmt) => {
                                offered += count;
                                p.ingest_statement(minute, &stmt, count);
                            }
                            Err(_) => {}
                        }
                    }
                }
            }
            let history_total: u64 = p.templates().iter().map(|e| e.history.total()).sum();
            prop_assert_eq!(history_total, p.stats().total_queries);
            prop_assert_eq!(
                history_total + p.quarantine().rejected_arrivals(),
                offered,
                "every offered arrival is either recorded or quarantined"
            );
            let s = p.stats();
            prop_assert_eq!(s.selects + s.inserts + s.updates + s.deletes, s.total_queries);
        }

        /// The same identity holds for the sharded batch path, and the
        /// batch report agrees with the state it produced.
        #[test]
        fn batch_ingest_upholds_the_accounting_identity(
            ops in proptest::collection::vec(
                (0..POOL.len(), 0i64..120, 1u64..1_000), 1..400,
            ),
            width in 1usize..5,
            splits in 1usize..6,
        ) {
            let mut p = PreProcessor::new(PreProcessorConfig::default());
            let pool = qb_parallel::ThreadPool::new(width);
            let items: Vec<shard::BatchItem<'_>> = ops
                .iter()
                .map(|&(sql, minute, count)| shard::BatchItem {
                    minute,
                    sql: POOL[sql],
                    count,
                })
                .collect();
            let chunk = items.len().div_ceil(splits).max(1);
            let mut accepted = 0u64;
            let mut quarantined = 0u64;
            for b in items.chunks(chunk) {
                let report = p.ingest_batch(&pool, b);
                accepted += report.arrivals;
                quarantined += report.quarantined_arrivals;
            }
            let offered: u64 = ops.iter().map(|&(_, _, c)| c).sum();
            let history_total: u64 = p.templates().iter().map(|e| e.history.total()).sum();
            prop_assert_eq!(history_total, accepted);
            prop_assert_eq!(history_total, p.stats().total_queries);
            prop_assert_eq!(accepted + quarantined, offered);
            prop_assert_eq!(p.quarantine().rejected_arrivals(), quarantined);
        }
    }
}

#[cfg(test)]
mod folding_tests {
    use super::*;

    #[test]
    fn folding_merges_conjunct_orderings_ablation_does_not() {
        let a = "SELECT x FROM t WHERE p = 1 AND q = 2";
        let b = "SELECT x FROM t WHERE q = 5 AND p = 9";

        let mut folded = PreProcessor::new(PreProcessorConfig::default());
        folded.ingest(0, a).unwrap();
        folded.ingest(0, b).unwrap();
        assert_eq!(folded.num_templates(), 1, "semantic folding merges orderings");

        let mut unfolded = PreProcessor::new(PreProcessorConfig {
            semantic_folding: false,
            ..PreProcessorConfig::default()
        });
        unfolded.ingest(0, a).unwrap();
        unfolded.ingest(0, b).unwrap();
        assert_eq!(unfolded.num_templates(), 2, "ablation keeps them distinct");
    }
}
