//! Reservoir sampling (Vitter's Algorithm R).
//!
//! §4: "We use reservoir sampling to select a fixed amount of items with low
//! variance from a list containing a large or unknown number of items."
//! QB5000 keeps a reservoir of each template's original parameter vectors;
//! the planning module uses them to cost candidate optimizations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fixed-capacity uniform sample over a stream of unknown length.
///
/// After `n` calls to [`Reservoir::offer`], every offered item has
/// probability `min(1, capacity/n)` of being present — the classic
/// Algorithm R guarantee.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: SmallRng,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "Reservoir capacity must be positive");
        Self { capacity, seen: 0, items: Vec::new(), rng: SmallRng::seed_from_u64(seed) }
    }

    /// Offers one item from the stream.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum sample size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The RNG's internal state (for durable snapshots).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a reservoir from snapshotted parts. The restored sampler
    /// continues the *exact* random stream of the original, so offers after
    /// restore pick the same slots a crash-free run would have picked.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `items.len() > capacity`.
    pub fn from_parts(capacity: usize, seen: u64, items: Vec<T>, rng: [u64; 4]) -> Self {
        assert!(capacity > 0, "Reservoir capacity must be positive");
        assert!(items.len() <= capacity, "Reservoir holds more items than capacity");
        Self { capacity, seen, items, rng: SmallRng::from_state(rng) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_stops_growing() {
        let mut r = Reservoir::new(3, 1);
        for i in 0..10 {
            r.offer(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 10);
    }

    #[test]
    fn short_stream_kept_verbatim() {
        let mut r = Reservoir::new(10, 1);
        for i in 0..4 {
            r.offer(i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sample_is_subset_of_stream() {
        let mut r = Reservoir::new(5, 42);
        for i in 0..1000 {
            r.offer(i);
        }
        for &x in r.items() {
            assert!((0..1000).contains(&x));
        }
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Offer 0..100 into a capacity-10 reservoir many times; each item
        // should be retained ~10% of the time. Chernoff bounds make ±3%
        // a safe tolerance at 20k trials.
        let trials = 20_000;
        let mut hits = vec![0u32; 100];
        for t in 0..trials {
            let mut r = Reservoir::new(10, t as u64);
            for i in 0..100 {
                r.offer(i);
            }
            for &x in r.items() {
                hits[x as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / trials as f64;
            assert!((p - 0.10).abs() < 0.03, "item {i} retained with p={p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(4, seed);
            for i in 0..100 {
                r.offer(i);
            }
            r.items().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Reservoir::<i32>::new(0, 1);
    }

    #[test]
    fn parts_round_trip_continues_exact_stream() {
        let mut live = Reservoir::new(4, 99);
        for i in 0..50 {
            live.offer(i);
        }
        let mut restored = Reservoir::from_parts(
            live.capacity(),
            live.seen(),
            live.items().to_vec(),
            live.rng_state(),
        );
        // Both samplers must make identical decisions from here on.
        for i in 50..500 {
            live.offer(i);
            restored.offer(i);
        }
        assert_eq!(live.items(), restored.items());
        assert_eq!(live.seen(), restored.seen());
        assert_eq!(live.rng_state(), restored.rng_state());
    }
}
