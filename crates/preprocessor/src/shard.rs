//! Sharded, batched ingest: the sustained-traffic front end.
//!
//! [`PreProcessor::ingest_batch`] processes a tick's worth of statements in
//! two phases:
//!
//! 1. **Shard phase** (parallel) — statements are routed to a fixed number
//!    of logical shards by a content hash of the raw SQL text. Each shard
//!    owns a private raw-string cache and resolves as much as it can
//!    against it plus *immutable* views of the shared template table,
//!    emitting per-shard outputs: coalesced arrival-history deltas for
//!    known templates, pending templates for texts it has never seen,
//!    reservoir offers, and quarantine candidates.
//! 2. **Merge phase** (sequential, deterministic) — pending templates are
//!    interned in global first-sighting order, deltas and offers are
//!    applied, and quarantine admissions replay in arrival order.
//!
//! # Determinism invariants
//!
//! * **Routing is content-addressed.** `route` is FNV-1a over the raw
//!   bytes — never a `RandomState` hash — so a statement lands on the same
//!   shard in every process, at every pool width.
//! * **Shard count is config, not width.** `ingest_shards` fixes the
//!   logical decomposition; the worker pool merely executes shards. Widths
//!   1 and N produce byte-identical state.
//! * **Merge order is sighting order.** New templates intern sorted by the
//!   global batch index of their first sighting, which makes template-id
//!   assignment (and the seed chain feeding each reservoir RNG) identical
//!   to sequential ingest of the same stream. Offers and quarantine
//!   admissions replay sorted by batch index.
//! * **Re-parse cadence is per-slot.** Each shard slot re-parses its 64th,
//!   128th, … hit based on its own counter, so the cadence is a function
//!   of the statement stream alone — splitting one batch into many, or
//!   changing the pool width, never shifts it.
//!
//! The one sequential divergence is deliberate: the single-threaded path
//! derives its re-parse cadence from a *global* hit counter, the sharded
//! path from per-slot counters, so the two paths may refresh parameter
//! reservoirs on different arrivals. Everything else — template ids,
//! histories, stats, quarantine — matches the sequential path bit for bit
//! (the differential tests in this module pin that).

use std::collections::HashMap;

use qb_parallel::ThreadPool;
use qb_sqlparse::{parse_statement, Literal};
use qb_timeseries::Minute;
use qb_trace::{EventDraft, EventKind};

use crate::{
    templatize, PreProcessError, PreProcessor, TemplateId, TemplatizedQuery,
};

/// One statement in an ingest batch. Borrows the raw SQL so replay loops
/// can batch without cloning strings.
#[derive(Debug, Clone, Copy)]
pub struct BatchItem<'a> {
    /// Arrival minute.
    pub minute: Minute,
    /// Raw SQL text.
    pub sql: &'a str,
    /// Weighted arrival count (identical arrivals this minute).
    pub count: u64,
}

/// What one [`PreProcessor::ingest_batch`] call did, in aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Statements accepted (parsed or cache-resolved).
    pub statements: u64,
    /// Weighted arrivals accepted.
    pub arrivals: u64,
    /// Statements rejected by the parser.
    pub quarantined_statements: u64,
    /// Weighted arrivals rejected.
    pub quarantined_arrivals: u64,
    /// Templates interned for the first time by this batch.
    pub new_templates: u64,
    /// Shard-cache hits (parser bypasses).
    pub cache_hits: u64,
    /// Distinct template ids sighted by this batch, ordered by first
    /// sighting. This is the clusterer's observation feed.
    pub sighted: Vec<TemplateId>,
}

/// Routes raw SQL to a logical shard. FNV-1a over the raw bytes: cheap,
/// process-stable, and independent of `HashMap`'s per-process `RandomState`
/// — the routing decision is part of the durable-state contract.
pub(crate) fn route(sql: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sql.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Where a shard-cache slot points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotTarget {
    /// A template already in the global table.
    Known(TemplateId),
    /// The `n`-th template this shard has ever proposed; resolves through
    /// [`Shard::resolved`] once the proposing batch's merge completes.
    Pending(u32),
}

/// A template reference inside one batch's shard output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Known(TemplateId),
    /// Absolute pending index in the emitting shard.
    Pending(u32),
}

#[derive(Debug)]
struct Slot {
    target: SlotTarget,
    /// Touches of this slot; drives the 1-in-64 re-parse cadence.
    hits: u64,
    /// Batch tick of the most recent touch (once-per-batch sighting dedup).
    last_tick: u64,
}

/// A template text this shard saw for the first time, carried to the merge
/// phase by value so interning never re-parses.
#[derive(Debug)]
struct PendingTemplate {
    /// Global batch index of the first sighting.
    first_idx: usize,
    /// Arrival minute of the first sighting (for the trace event).
    first_minute: Minute,
    text: String,
    template: qb_sqlparse::Statement,
}

/// Everything one shard produced for one batch.
#[derive(Debug, Default)]
struct ShardOutput {
    pendings: Vec<PendingTemplate>,
    /// Coalesced history deltas: consecutive same-target same-minute
    /// arrivals merge into one record, which is what turns per-statement
    /// history updates into per-tick updates.
    deltas: Vec<(Target, Minute, u64)>,
    /// Reservoir offers, tagged with the global batch index for ordered
    /// replay at merge.
    offers: Vec<(usize, Target, Vec<Literal>)>,
    /// Parse rejections, tagged with the global batch index.
    quarantined: Vec<(usize, PreProcessError)>,
    /// First touch of each slot this batch, tagged with the global index.
    sighted: Vec<(usize, Target)>,
    statements: u64,
    arrivals: u64,
    cache_hits: u64,
}

/// One logical ingest shard: a private raw-string cache plus the pending
/// resolution table. Survives across batches; exported as part of
/// [`crate::PreProcessorState`].
#[derive(Debug, Default)]
pub(crate) struct Shard {
    map: HashMap<String, Slot>,
    /// Pending index → interned id, appended at every merge. Slots holding
    /// `Pending` targets rewrite themselves lazily on their next touch.
    resolved: Vec<TemplateId>,
    /// Monotonic batch counter; bumped at the start of every batch so
    /// `Slot::last_tick` dedups sightings without a per-batch sweep.
    tick: u64,
    /// Generational-reset bound for `map` (the shard's share of
    /// `raw_cache_limit`).
    limit: usize,
}

impl Shard {
    pub(crate) fn new(limit: usize) -> Self {
        Self { map: HashMap::new(), resolved: Vec::new(), tick: 0, limit: limit.max(1) }
    }

    /// Slots as plain data, pendings resolved. Only callable between
    /// batches (merge resolves every pending before returning).
    pub(crate) fn export_slots(&self) -> Vec<(String, TemplateId, u64)> {
        self.map
            .iter()
            .map(|(sql, slot)| {
                let id = match slot.target {
                    SlotTarget::Known(id) => id,
                    SlotTarget::Pending(p) => self.resolved[p as usize],
                };
                (sql.clone(), id, slot.hits)
            })
            .collect()
    }

    /// Reinstalls one exported slot. Ticks restart at zero, which only
    /// resets the once-per-batch sighting dedup.
    pub(crate) fn restore_slot(&mut self, sql: String, id: TemplateId, hits: u64) {
        self.map.insert(sql, Slot { target: SlotTarget::Known(id), hits, last_tick: 0 });
    }

    fn run_batch(
        &mut self,
        batch: &[BatchItem<'_>],
        idxs: &[usize],
        distinct_texts: &HashMap<String, TemplateId>,
    ) -> ShardOutput {
        self.tick += 1;
        let tick = self.tick;
        let mut out = ShardOutput::default();
        // Template text → absolute pending index, for texts first proposed
        // by this very batch (not evicted with the slot cache).
        let mut local_texts: HashMap<String, u32> = HashMap::new();

        for &idx in idxs {
            let item = &batch[idx];
            let hit = if let Some(slot) = self.map.get_mut(item.sql) {
                if let SlotTarget::Pending(p) = slot.target {
                    if (p as usize) < self.resolved.len() {
                        slot.target = SlotTarget::Known(self.resolved[p as usize]);
                    }
                }
                slot.hits += 1;
                out.cache_hits += 1;
                // Fast path: 63 of 64 touches bypass the parser entirely —
                // no allocation, one hash lookup, one delta record.
                if !slot.hits.is_multiple_of(64) {
                    let target = match slot.target {
                        SlotTarget::Known(id) => Target::Known(id),
                        SlotTarget::Pending(p) => Target::Pending(p),
                    };
                    out.statements += 1;
                    out.arrivals += item.count;
                    push_delta(&mut out.deltas, target, item.minute, item.count);
                    if slot.last_tick != tick {
                        slot.last_tick = tick;
                        out.sighted.push((idx, target));
                    }
                    continue;
                }
                true
            } else {
                false
            };

            // Slow path: either a cache miss or a slot's 64th touch (the
            // reservoir-refresh re-parse, mirroring the sequential path).
            let stmt = match parse_statement(item.sql) {
                Ok(s) => s,
                Err(e) => {
                    out.quarantined.push((idx, PreProcessError::Parse(e)));
                    continue;
                }
            };
            let TemplatizedQuery { template, text, params, .. } = templatize(&stmt);
            let target = if let Some(&id) = distinct_texts.get(&text) {
                Target::Known(id)
            } else if let Some(&p) = local_texts.get(&text) {
                Target::Pending(p)
            } else {
                let p = (self.resolved.len() + out.pendings.len()) as u32;
                local_texts.insert(text.clone(), p);
                out.pendings.push(PendingTemplate {
                    first_idx: idx,
                    first_minute: item.minute,
                    text,
                    template,
                });
                Target::Pending(p)
            };
            out.statements += 1;
            out.arrivals += item.count;
            out.offers.push((idx, target, params));
            push_delta(&mut out.deltas, target, item.minute, item.count);

            let slot_target = match target {
                Target::Known(id) => SlotTarget::Known(id),
                Target::Pending(p) => SlotTarget::Pending(p),
            };
            if hit {
                // Re-parse of an existing slot: retarget (normally a
                // no-op) and keep the hit counter running.
                let slot = self.map.get_mut(item.sql).expect("slot existed on the hit path");
                slot.target = slot_target;
                if slot.last_tick != tick {
                    slot.last_tick = tick;
                    out.sighted.push((idx, target));
                }
            } else {
                // Generational reset, same policy as the sequential
                // raw-string cache but bounded per shard.
                if self.map.len() >= self.limit {
                    self.map.clear();
                }
                self.map.insert(
                    item.sql.to_string(),
                    Slot { target: slot_target, hits: 0, last_tick: tick },
                );
                out.sighted.push((idx, target));
            }
        }
        out
    }

    /// Resolves a batch-output target against this shard's tables.
    fn resolve(&self, target: Target) -> TemplateId {
        match target {
            Target::Known(id) => id,
            Target::Pending(p) => self.resolved[p as usize],
        }
    }
}

fn push_delta(deltas: &mut Vec<(Target, Minute, u64)>, target: Target, minute: Minute, count: u64) {
    if let Some(last) = deltas.last_mut() {
        if last.0 == target && last.1 == minute {
            last.2 += count;
            return;
        }
    }
    deltas.push((target, minute, count));
}

impl PreProcessor {
    /// Materializes the shard set on first use (or on restore). Shard
    /// count and per-shard cache bounds come from config, never from the
    /// worker pool.
    pub(crate) fn ensure_shards(&mut self) {
        if self.shards.is_empty() {
            let n = self.config.ingest_shards.max(1);
            let limit = (self.config.raw_cache_limit / n).max(1);
            self.shards = (0..n).map(|_| Shard::new(limit)).collect();
        }
    }

    /// Ingests a batch of statements through the sharded engine.
    ///
    /// Semantically equivalent to calling
    /// [`ingest_weighted`](PreProcessor::ingest_weighted) for each item in
    /// order — template ids, arrival histories, ingest stats, and the
    /// quarantine come out identical — but statements fan out across
    /// `ingest_shards` logical shards executed on `pool`, and history
    /// updates coalesce per tick instead of landing one by one. The result
    /// is bit-identical for any pool width (including 1) and for any way
    /// of splitting the same stream into batches; see the module docs for
    /// the invariants that guarantee it.
    ///
    /// The only sequential divergence is which arrivals refresh the
    /// parameter reservoirs (per-slot instead of global re-parse cadence)
    /// and the raw-string cache contents (sharded instead of unified).
    pub fn ingest_batch(&mut self, pool: &ThreadPool, batch: &[BatchItem<'_>]) -> BatchReport {
        let _span = self.metrics.ingest_time.start();
        self.ensure_shards();
        let nshards = self.shards.len();

        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (idx, item) in batch.iter().enumerate() {
            routed[route(item.sql, nshards)].push(idx);
        }

        // Shard phase: mutable over shard-local state, immutable over the
        // shared template tables.
        let distinct_texts = &self.distinct_texts;
        let mut outputs = pool.map_mut(&mut self.shards, |i, sh| {
            sh.run_batch(batch, &routed[i], distinct_texts)
        });

        // Merge phase, step 1: intern pending templates in global
        // first-sighting order, so id assignment and the reservoir seed
        // chain match sequential ingest exactly.
        let mut report = BatchReport::default();
        let mut pending_order: Vec<(usize, usize, usize)> = Vec::new();
        for (s, out) in outputs.iter().enumerate() {
            for (local, p) in out.pendings.iter().enumerate() {
                pending_order.push((p.first_idx, s, local));
            }
        }
        pending_order.sort_unstable();
        let mut pending_pool: Vec<Vec<Option<PendingTemplate>>> = outputs
            .iter_mut()
            .map(|o| std::mem::take(&mut o.pendings).into_iter().map(Some).collect())
            .collect();
        let mut interned: Vec<Vec<Option<TemplateId>>> =
            pending_pool.iter().map(|p| vec![None; p.len()]).collect();
        for &(_, s, local) in &pending_order {
            let p = pending_pool[s][local].take().expect("each pending interns once");
            let before = self.entries.len();
            let id = self.intern_owned(p.template, p.text);
            if self.entries.len() > before {
                self.trace_new_template(p.first_minute, id);
                report.new_templates += 1;
            }
            interned[s][local] = Some(id);
        }
        for (s, ids) in interned.into_iter().enumerate() {
            self.shards[s]
                .resolved
                .extend(ids.into_iter().map(|id| id.expect("every pending interned")));
        }

        // Step 2: history deltas and kind stats. History record order is
        // commutative per minute, so shard order here is for determinism
        // of iteration, not correctness.
        for (s, out) in outputs.iter().enumerate() {
            for &(target, minute, count) in &out.deltas {
                let id = self.shards[s].resolve(target);
                let entry = &mut self.entries[id.0 as usize];
                entry.history.record(minute, count);
                self.stats.total_queries += count;
                match entry.kind {
                    "SELECT" => self.stats.selects += count,
                    "INSERT" => self.stats.inserts += count,
                    "UPDATE" => self.stats.updates += count,
                    "DELETE" => self.stats.deletes += count,
                    _ => unreachable!("kind is one of the four DML verbs"),
                }
            }
            report.statements += out.statements;
            report.arrivals += out.arrivals;
            report.cache_hits += out.cache_hits;
        }

        // Step 3: reservoir offers in arrival order across all shards.
        let mut offers: Vec<(usize, usize, Target, Vec<Literal>)> = Vec::new();
        for (s, out) in outputs.iter_mut().enumerate() {
            for (idx, target, params) in out.offers.drain(..) {
                offers.push((idx, s, target, params));
            }
        }
        offers.sort_unstable_by_key(|&(idx, s, ..)| (idx, s));
        for (_, s, target, params) in offers {
            let id = self.shards[s].resolve(target);
            self.entries[id.0 as usize].params.offer(params);
        }

        // Step 4: quarantine admissions in arrival order.
        let mut quarantined: Vec<(usize, PreProcessError)> = Vec::new();
        for out in &mut outputs {
            quarantined.append(&mut out.quarantined);
        }
        quarantined.sort_unstable_by_key(|&(idx, _)| idx);
        for (idx, err) in &quarantined {
            let item = &batch[*idx];
            self.quarantine.admit(item.minute, item.sql, item.count, err);
            report.quarantined_statements += 1;
            report.quarantined_arrivals += item.count;
            if self.tracer.is_enabled() {
                let msg: String = err.to_string().chars().take(120).collect();
                self.tracer.record(
                    EventDraft::new(EventKind::QueryQuarantined)
                        .int("minute", item.minute)
                        .uint("count", item.count)
                        .text("error", &msg),
                );
            }
        }

        // Step 5: the sighting feed, deduped by template in first-sighting
        // order (two raw spellings of one template may both fire).
        let mut sighted: Vec<(usize, usize, Target)> = Vec::new();
        for (s, out) in outputs.iter().enumerate() {
            for &(idx, target) in &out.sighted {
                sighted.push((idx, s, target));
            }
        }
        sighted.sort_unstable_by_key(|&(idx, s, _)| (idx, s));
        let mut seen = std::collections::HashSet::new();
        for (_, s, target) in sighted {
            let id = self.shards[s].resolve(target);
            if seen.insert(id) {
                report.sighted.push(id);
            }
        }

        self.metrics.ingested_statements.add(report.statements);
        self.metrics.ingested_arrivals.add(report.arrivals);
        self.metrics.quarantined_statements.add(report.quarantined_statements);
        self.metrics.quarantined_arrivals.add(report.quarantined_arrivals);
        self.metrics.cache_hits.add(report.cache_hits);
        self.metrics.templates.set(self.entries.len() as f64);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PreProcessor, PreProcessorConfig};

    /// A stream exercising every path: folding spellings, repeats,
    /// weighted arrivals, cross-shard duplicates, and quarantine.
    fn mixed_stream() -> Vec<(Minute, String, u64)> {
        let mut stream = Vec::new();
        for i in 0..40i64 {
            stream.push((i % 7, format!("SELECT x FROM t WHERE id = {i}"), 1 + (i as u64 % 5)));
            stream.push((i % 7, format!("SELECT x FROM u{} WHERE id = 1", i % 9), 2));
            if i % 4 == 0 {
                stream.push((i % 7, format!("INSERT INTO t (a) VALUES ({i})"), 1));
            }
            if i % 5 == 0 {
                // Same template as the first family, spelled with flipped
                // conjuncts so semantic folding has work to do.
                stream.push((i % 7, format!("SELECT x FROM t WHERE p = {i} AND q = 2"), 1));
                stream.push((i % 7, format!("SELECT x FROM t WHERE q = {i} AND p = 2"), 1));
            }
            if i % 11 == 0 {
                stream.push((i % 7, format!("BROKEN (( {i}"), 3));
            }
        }
        stream
    }

    fn batch_of(stream: &[(Minute, String, u64)]) -> Vec<BatchItem<'_>> {
        stream.iter().map(|(m, s, c)| BatchItem { minute: *m, sql: s, count: *c }).collect()
    }

    fn run_batched(stream: &[(Minute, String, u64)], width: usize, splits: usize) -> PreProcessor {
        let mut pp = PreProcessor::new(PreProcessorConfig::default());
        let pool = ThreadPool::new(width);
        let items = batch_of(stream);
        let chunk = items.len().div_ceil(splits);
        for b in items.chunks(chunk.max(1)) {
            pp.ingest_batch(&pool, b);
        }
        pp
    }

    #[test]
    fn batch_matches_sequential_on_mixed_stream() {
        let stream = mixed_stream();
        let mut seq = PreProcessor::new(PreProcessorConfig::default());
        for (m, s, c) in &stream {
            let _ = seq.ingest_weighted(*m, s, *c);
        }
        let batched = run_batched(&stream, 4, 1);

        // The entire template table — ids, texts, histories, reservoir
        // contents and RNG states — must match the sequential path (no
        // string in this stream repeats often enough to hit a re-parse
        // cadence, so even the reservoirs agree).
        let a = seq.export_state();
        let b = batched.export_state();
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.distinct_texts, b.distinct_texts);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.quarantine, b.quarantine);
        assert_eq!(a.next_seed, b.next_seed);
    }

    #[test]
    fn batch_state_is_width_and_split_invariant() {
        let stream = mixed_stream();
        let base = run_batched(&stream, 1, 1).export_state();
        for (width, splits) in [(4, 1), (1, 3), (4, 3), (3, 5), (2, 17)] {
            let other = run_batched(&stream, width, splits).export_state();
            assert_eq!(base, other, "width={width} splits={splits} must be bit-identical");
        }
    }

    #[test]
    fn report_accounts_for_every_arrival() {
        let stream = mixed_stream();
        let items = batch_of(&stream);
        let mut pp = PreProcessor::new(PreProcessorConfig::default());
        let pool = ThreadPool::new(4);
        let report = pp.ingest_batch(&pool, &items);

        let offered_stmts = items.len() as u64;
        let offered_arrivals: u64 = items.iter().map(|i| i.count).sum();
        assert_eq!(report.statements + report.quarantined_statements, offered_stmts);
        assert_eq!(report.arrivals + report.quarantined_arrivals, offered_arrivals);
        assert_eq!(pp.stats().total_queries, report.arrivals);
        let history_total: u64 = pp.templates().iter().map(|e| e.history.total()).sum();
        assert_eq!(history_total, report.arrivals);
        assert_eq!(pp.quarantine().rejected_arrivals(), report.quarantined_arrivals);

        // Each sighted id appears exactly once and exists.
        let mut seen = std::collections::HashSet::new();
        for id in &report.sighted {
            assert!(seen.insert(*id), "{id:?} sighted twice");
            assert!((id.0 as usize) < pp.num_templates());
        }
        assert_eq!(seen.len(), pp.num_templates(), "every template was sighted this batch");
    }

    #[test]
    fn reparse_cadence_is_per_slot() {
        let mut pp = PreProcessor::new(PreProcessorConfig::default());
        let pool = ThreadPool::new(2);
        let stream: Vec<(Minute, String, u64)> =
            (0..130).map(|_| (0, "SELECT x FROM t WHERE id = 1".to_string(), 1)).collect();
        let report = pp.ingest_batch(&pool, &batch_of(&stream));
        // First arrival parses; touches 64 and 128 of the slot re-parse to
        // refresh the reservoir; everything else bypasses the parser.
        assert_eq!(report.cache_hits, 129);
        assert_eq!(pp.templates()[0].params.seen(), 3);
        assert_eq!(pp.templates()[0].history.total(), 130);
    }

    #[test]
    fn batch_splitting_does_not_shift_the_cadence() {
        let stream: Vec<(Minute, String, u64)> =
            (0..130).map(|_| (0, "SELECT x FROM t WHERE id = 1".to_string(), 1)).collect();
        let one = run_batched(&stream, 1, 1).export_state();
        let many = run_batched(&stream, 4, 13).export_state();
        assert_eq!(one, many);
    }

    #[test]
    fn shard_cache_survives_restore() {
        let stream = mixed_stream();
        let mut live = run_batched(&stream, 4, 2);
        let exported = live.export_state();
        assert!(!exported.shard_slots.is_empty(), "batches must populate shard caches");
        let mut restored =
            PreProcessor::restore(PreProcessorConfig::default(), exported.clone()).unwrap();
        assert_eq!(restored.export_state(), exported, "restore must be lossless");

        // Both instances continue identically through further batches.
        let follow = mixed_stream();
        let pool = ThreadPool::new(3);
        let ra = live.ingest_batch(&pool, &batch_of(&follow));
        let rb = restored.ingest_batch(&pool, &batch_of(&follow));
        assert_eq!(ra, rb);
        assert_eq!(live.export_state(), restored.export_state());
        // The second pass over the same stream is cache-dominated.
        assert!(ra.cache_hits > 0, "repeat stream must hit the shard caches");
    }

    #[test]
    fn shard_caches_evict_and_recover_under_churn() {
        // One shard so the generational-reset arithmetic is exact; the
        // multi-shard case applies the same policy per shard.
        let mut pp = PreProcessor::new(PreProcessorConfig {
            raw_cache_limit: 8,
            ingest_shards: 1,
            ..PreProcessorConfig::default()
        });
        let pool = ThreadPool::new(2);
        let gen1: Vec<(Minute, String, u64)> =
            (0..8).map(|i| (0, format!("SELECT x FROM t WHERE id = {i}"), 1)).collect();
        let gen2: Vec<(Minute, String, u64)> =
            (0..8).map(|i| (0, format!("SELECT x FROM t WHERE id = {}", 100 + i), 1)).collect();
        pp.ingest_batch(&pool, &batch_of(&gen1));
        // Churn: the new working set's first insert trips the reset and
        // the cache refills with what is hot now...
        pp.ingest_batch(&pool, &batch_of(&gen2));
        // ...so repeats of the *new* set hit cache instead of re-parsing
        // forever (the fill-once-never-evict failure mode).
        let report = pp.ingest_batch(&pool, &batch_of(&gen2));
        assert_eq!(report.cache_hits, 8, "new working set must be fully cached after churn");
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1, 2, 8, 13] {
            for sql in ["SELECT x FROM t WHERE id = 1", "", "δ unicode ≠ ascii"] {
                let a = route(sql, n);
                assert_eq!(a, route(sql, n));
                assert!(a < n);
            }
        }
        // The hash is content-addressed, not identity-addressed: equal
        // strings at different addresses route identically.
        let a = String::from("SELECT x FROM t WHERE id = 42");
        let b = a.clone();
        assert_eq!(route(&a, 8), route(&b, 8));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut pp = PreProcessor::new(PreProcessorConfig::default());
        let pool = ThreadPool::new(4);
        let report = pp.ingest_batch(&pool, &[]);
        assert_eq!(report, BatchReport::default());
        assert_eq!(pp.num_templates(), 0);
    }
}
