//! Semantic-equivalence fingerprints.
//!
//! §4: "It considers two templates as equivalent if they access the same
//! tables, use the same predicates, and return the same projections."
//!
//! The fingerprint is a structural digest of a *templated* statement:
//! statement kind, the set of tables, the multiset of projection shapes, and
//! the multiset of predicate shapes (column, operator) with constants
//! already erased. Clause order is normalized by sorting, so
//! `WHERE a = ? AND b = ?` and `WHERE b = ? AND a = ?` fold together — the
//! heuristic approximation the paper chose over full semantic equivalence.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use qb_sqlparse::{Expr, Statement};

/// An opaque semantic fingerprint. Equal fingerprints mean the
/// Pre-Processor treats the templates as the same tracked template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

/// Computes the semantic fingerprint of a templated statement.
pub fn semantic_fingerprint(stmt: &Statement) -> Fingerprint {
    let mut h = DefaultHasher::new();
    stmt.kind_name().hash(&mut h);

    let mut tables = stmt.tables();
    tables.sort();
    tables.hash(&mut h);

    match stmt {
        Statement::Select(s) => {
            let mut projections: Vec<String> =
                s.items.iter().map(|i| expr_shape(&i.expr)).collect();
            projections.sort();
            projections.hash(&mut h);
            s.distinct.hash(&mut h);

            let mut predicates = Vec::new();
            if let Some(w) = &s.where_clause {
                predicate_shapes(w, &mut predicates);
            }
            if let Some(hv) = &s.having {
                predicate_shapes(hv, &mut predicates);
            }
            for j in &s.joins {
                // Join kind changes semantics (LEFT vs INNER) even when the
                // ON predicate shape is identical.
                format!("{:?}", j.kind).hash(&mut h);
                if let Some(on) = &j.on {
                    predicate_shapes(on, &mut predicates);
                }
            }
            predicates.sort();
            predicates.hash(&mut h);

            let mut groups: Vec<String> = s.group_by.iter().map(expr_shape).collect();
            groups.sort();
            groups.hash(&mut h);

            let orders: Vec<String> = s
                .order_by
                .iter()
                .map(|o| format!("{}:{:?}", expr_shape(&o.expr), o.direction))
                .collect();
            orders.hash(&mut h);
            s.limit.is_some().hash(&mut h);
        }
        Statement::Insert(i) => {
            // Column order is semantic for INSERT (it pairs columns with
            // values) — hash in declaration order, not sorted.
            i.columns.hash(&mut h);
            i.rows.first().map_or(0, Vec::len).hash(&mut h);
        }
        Statement::Update(u) => {
            let mut cols: Vec<&str> = u.assignments.iter().map(|a| a.column.as_str()).collect();
            cols.sort();
            cols.hash(&mut h);
            let mut predicates = Vec::new();
            if let Some(w) = &u.where_clause {
                predicate_shapes(w, &mut predicates);
            }
            predicates.sort();
            predicates.hash(&mut h);
        }
        Statement::Delete(d) => {
            let mut predicates = Vec::new();
            if let Some(w) = &d.where_clause {
                predicate_shapes(w, &mut predicates);
            }
            predicates.sort();
            predicates.hash(&mut h);
        }
    }
    Fingerprint(h.finish())
}

/// A canonical string for an expression's *shape*: structure with constants
/// erased (they are already placeholders in a template, but raw statements
/// can be fingerprinted too).
fn expr_shape(e: &Expr) -> String {
    match e {
        Expr::Literal(_) | Expr::Placeholder => "?".into(),
        Expr::Column { table, column } => match table {
            Some(t) => format!("{t}.{column}"),
            None => column.clone(),
        },
        Expr::Wildcard => "*".into(),
        Expr::Binary { left, op, right } => {
            format!("({} {} {})", expr_shape(left), op.as_str(), expr_shape(right))
        }
        Expr::Unary { op, expr } => format!("({op:?} {})", expr_shape(expr)),
        Expr::Function { name, distinct, args } => {
            let args: Vec<String> = args.iter().map(expr_shape).collect();
            format!("{name}{}({})", if *distinct { "!d" } else { "" }, args.join(","))
        }
        Expr::InList { expr, negated, .. } => {
            format!("(in{} {} [?])", if *negated { "!" } else { "" }, expr_shape(expr))
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let sub = semantic_fingerprint(&Statement::Select((**subquery).clone()));
            format!("(insub{} {} {:x})", if *negated { "!" } else { "" }, expr_shape(expr), sub.0)
        }
        Expr::Exists { subquery, negated } => {
            let sub = semantic_fingerprint(&Statement::Select((**subquery).clone()));
            format!("(exists{} {:x})", if *negated { "!" } else { "" }, sub.0)
        }
        Expr::Between { expr, negated, .. } => {
            format!("(between{} {})", if *negated { "!" } else { "" }, expr_shape(expr))
        }
        Expr::IsNull { expr, negated } => {
            format!("(isnull{} {})", if *negated { "!" } else { "" }, expr_shape(expr))
        }
        Expr::Subquery(s) => {
            let sub = semantic_fingerprint(&Statement::Select((**s).clone()));
            format!("(sub {:x})", sub.0)
        }
        Expr::Case { branches, else_expr } => {
            let bs: Vec<String> = branches
                .iter()
                .map(|(c, v)| format!("{}→{}", expr_shape(c), expr_shape(v)))
                .collect();
            format!(
                "(case {} else {})",
                bs.join(";"),
                else_expr.as_ref().map_or("∅".into(), |e| expr_shape(e))
            )
        }
    }
}

/// Flattens a predicate tree into its conjunct/disjunct shapes. AND is
/// flattened (order-insensitive); any other node is one shape.
fn predicate_shapes(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Binary { left, op, right } if op.as_str() == "AND" => {
            predicate_shapes(left, out);
            predicate_shapes(right, out);
        }
        other => out.push(expr_shape(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::templatize;
    use qb_sqlparse::parse_statement;

    fn fp(sql: &str) -> Fingerprint {
        semantic_fingerprint(&templatize(&parse_statement(sql).unwrap()).template)
    }

    #[test]
    fn constants_do_not_affect_fingerprint() {
        assert_eq!(fp("SELECT a FROM t WHERE id = 1"), fp("SELECT a FROM t WHERE id = 2"));
    }

    #[test]
    fn conjunct_order_normalized() {
        assert_eq!(
            fp("SELECT a FROM t WHERE x = 1 AND y = 2"),
            fp("SELECT a FROM t WHERE y = 9 AND x = 3")
        );
    }

    #[test]
    fn different_projections_distinct() {
        assert_ne!(fp("SELECT a FROM t WHERE id = 1"), fp("SELECT b FROM t WHERE id = 1"));
    }

    #[test]
    fn different_tables_distinct() {
        assert_ne!(fp("SELECT a FROM t WHERE id = 1"), fp("SELECT a FROM u WHERE id = 1"));
    }

    #[test]
    fn different_operators_distinct() {
        assert_ne!(fp("SELECT a FROM t WHERE id = 1"), fp("SELECT a FROM t WHERE id > 1"));
    }

    #[test]
    fn or_structure_not_conflated_with_and() {
        assert_ne!(
            fp("SELECT a FROM t WHERE x = 1 AND y = 2"),
            fp("SELECT a FROM t WHERE x = 1 OR y = 2")
        );
    }

    #[test]
    fn statement_kinds_distinct() {
        assert_ne!(fp("DELETE FROM t WHERE id = 1"), fp("SELECT * FROM t WHERE id = 1"));
    }

    #[test]
    fn insert_batch_sizes_fold_together() {
        assert_eq!(
            fp("INSERT INTO t (a, b) VALUES (1, 2)"),
            fp("INSERT INTO t (a, b) VALUES (3, 4), (5, 6)")
        );
    }

    #[test]
    fn update_assignment_sets_matter() {
        assert_ne!(
            fp("UPDATE t SET a = 1 WHERE id = 1"),
            fp("UPDATE t SET b = 1 WHERE id = 1")
        );
    }

    #[test]
    fn limit_presence_matters_but_value_does_not() {
        assert_eq!(
            fp("SELECT a FROM t WHERE x = 1 LIMIT 10"),
            fp("SELECT a FROM t WHERE x = 1 LIMIT 10")
        );
        assert_ne!(fp("SELECT a FROM t WHERE x = 1 LIMIT 10"), fp("SELECT a FROM t WHERE x = 1"));
    }
}
