//! Logical feature extraction for the §7.7 ablation.
//!
//! "The logical feature vector of a template consists of the query type
//! (e.g., INSERT, SELECT, UPDATE, or DELETE), tables that it accesses, the
//! columns that it references, number of clauses (e.g., JOIN, HAVING, or
//! GROUP BY), and number of aggregations (e.g., SUM, or AVG)." Similarity is
//! measured with L2 distance in this space.

use std::collections::BTreeSet;

use qb_sqlparse::{Expr, Statement};

/// The SQL aggregate functions counted as "aggregations".
const AGGREGATES: &[&str] = &["count", "sum", "avg", "min", "max"];

/// The logical features of one template.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalFeatures {
    /// 0 = SELECT, 1 = INSERT, 2 = UPDATE, 3 = DELETE.
    pub query_type: u8,
    /// Tables accessed (sorted, deduped).
    pub tables: Vec<String>,
    /// Columns referenced anywhere in the statement (sorted, deduped,
    /// unqualified names).
    pub columns: Vec<String>,
    /// Number of JOIN clauses.
    pub num_joins: usize,
    /// Number of GROUP BY expressions.
    pub num_group_by: usize,
    /// 1 if a HAVING clause is present.
    pub num_having: usize,
    /// Number of ORDER BY items.
    pub num_order_by: usize,
    /// Number of aggregate function applications.
    pub num_aggregations: usize,
}

impl LogicalFeatures {
    /// Extracts the features from a (templated or raw) statement.
    pub fn extract(stmt: &Statement) -> Self {
        let query_type = match stmt {
            Statement::Select(_) => 0,
            Statement::Insert(_) => 1,
            Statement::Update(_) => 2,
            Statement::Delete(_) => 3,
        };
        let tables = {
            let mut t = stmt.tables();
            t.sort();
            t
        };

        let mut columns = BTreeSet::new();
        let mut num_aggregations = 0;
        fn visit_expr(e: &Expr, columns: &mut BTreeSet<String>, num_aggregations: &mut usize) {
            e.walk(&mut |n| match n {
                Expr::Column { column, .. } => {
                    columns.insert(column.clone());
                }
                Expr::Function { name, .. } if AGGREGATES.contains(&name.as_str()) => {
                    *num_aggregations += 1;
                }
                _ => {}
            });
        }

        let (num_joins, num_group_by, num_having, num_order_by) = match stmt {
            Statement::Select(s) => {
                for item in &s.items {
                    visit_expr(&item.expr, &mut columns, &mut num_aggregations);
                }
                for j in &s.joins {
                    if let Some(on) = &j.on {
                        visit_expr(on, &mut columns, &mut num_aggregations);
                    }
                }
                if let Some(w) = &s.where_clause {
                    visit_expr(w, &mut columns, &mut num_aggregations);
                }
                for g in &s.group_by {
                    visit_expr(g, &mut columns, &mut num_aggregations);
                }
                if let Some(h) = &s.having {
                    visit_expr(h, &mut columns, &mut num_aggregations);
                }
                for o in &s.order_by {
                    visit_expr(&o.expr, &mut columns, &mut num_aggregations);
                }
                (s.joins.len(), s.group_by.len(), usize::from(s.having.is_some()), s.order_by.len())
            }
            Statement::Insert(i) => {
                for c in &i.columns {
                    columns.insert(c.clone());
                }
                (0, 0, 0, 0)
            }
            Statement::Update(u) => {
                for a in &u.assignments {
                    columns.insert(a.column.clone());
                    visit_expr(&a.value, &mut columns, &mut num_aggregations);
                }
                if let Some(w) = &u.where_clause {
                    visit_expr(w, &mut columns, &mut num_aggregations);
                }
                (0, 0, 0, 0)
            }
            Statement::Delete(d) => {
                if let Some(w) = &d.where_clause {
                    visit_expr(w, &mut columns, &mut num_aggregations);
                }
                (0, 0, 0, 0)
            }
        };

        LogicalFeatures {
            query_type,
            tables,
            columns: columns.into_iter().collect(),
            num_joins,
            num_group_by,
            num_having,
            num_order_by,
            num_aggregations,
        }
    }

    /// Embeds the features into a fixed-dimension numeric vector for L2
    /// clustering. Table and column identities are hashed into small
    /// buckets (a feature-hashing trick) so every template shares one
    /// space regardless of schema size.
    pub fn to_vector(&self, table_buckets: usize, column_buckets: usize) -> Vec<f64> {
        let mut v = vec![0.0; 4 + table_buckets + column_buckets + 5];
        v[self.query_type as usize] = 1.0;
        let mut idx = 4;
        for t in &self.tables {
            v[idx + bucket_of(t, table_buckets)] += 1.0;
        }
        idx += table_buckets;
        for c in &self.columns {
            v[idx + bucket_of(c, column_buckets)] += 1.0;
        }
        idx += column_buckets;
        v[idx] = self.num_joins as f64;
        v[idx + 1] = self.num_group_by as f64;
        v[idx + 2] = self.num_having as f64;
        v[idx + 3] = self.num_order_by as f64;
        v[idx + 4] = self.num_aggregations as f64;
        v
    }
}

fn bucket_of(s: &str, buckets: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    (h.finish() % buckets as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use qb_sqlparse::parse_statement;

    fn lf(sql: &str) -> LogicalFeatures {
        LogicalFeatures::extract(&parse_statement(sql).unwrap())
    }

    #[test]
    fn select_features() {
        let f = lf("SELECT a, SUM(b) FROM t JOIN u ON t.id = u.id \
                    WHERE c = 1 GROUP BY a HAVING SUM(b) > 5 ORDER BY a");
        assert_eq!(f.query_type, 0);
        assert_eq!(f.tables, vec!["t", "u"]);
        assert_eq!(f.num_joins, 1);
        assert_eq!(f.num_group_by, 1);
        assert_eq!(f.num_having, 1);
        assert_eq!(f.num_order_by, 1);
        assert_eq!(f.num_aggregations, 2);
        assert!(f.columns.contains(&"a".to_string()));
        assert!(f.columns.contains(&"id".to_string()));
    }

    #[test]
    fn insert_features() {
        let f = lf("INSERT INTO t (a, b) VALUES (1, 2)");
        assert_eq!(f.query_type, 1);
        assert_eq!(f.columns, vec!["a", "b"]);
    }

    #[test]
    fn update_features() {
        let f = lf("UPDATE t SET a = 1 WHERE id = 2");
        assert_eq!(f.query_type, 2);
        assert!(f.columns.contains(&"a".to_string()));
        assert!(f.columns.contains(&"id".to_string()));
    }

    #[test]
    fn delete_features() {
        let f = lf("DELETE FROM t WHERE id = 2");
        assert_eq!(f.query_type, 3);
    }

    #[test]
    fn vector_embedding_stable_and_distinct() {
        let a = lf("SELECT a FROM t WHERE id = 1").to_vector(8, 16);
        let a2 = lf("SELECT a FROM t WHERE id = 99").to_vector(8, 16);
        let b = lf("DELETE FROM other WHERE id = 1").to_vector(8, 16);
        assert_eq!(a, a2, "constants must not affect logical features");
        assert_ne!(a, b);
        assert_eq!(a.len(), 4 + 8 + 16 + 5);
    }

    #[test]
    fn aggregation_count_distinguishes() {
        let plain = lf("SELECT a FROM t WHERE x = 1");
        let agg = lf("SELECT COUNT(*), AVG(a) FROM t WHERE x = 1");
        assert_eq!(plain.num_aggregations, 0);
        assert_eq!(agg.num_aggregations, 2);
    }
}
