//! The immutable, epoch-numbered forecast snapshot and its
//! structural-sharing builder.
//!
//! A [`ForecastSnapshot`] is the unit of publication: per-cluster
//! forecast curves for every configured horizon, the template→cluster
//! routing table, and an accuracy/health summary, all frozen at one
//! epoch. Snapshots are immutable once built — readers hold `Arc`s and
//! never observe mutation — so an incremental update (one cluster
//! retrained) builds a *new* snapshot that shares every unchanged
//! [`ClusterForecast`] entry by `Arc`, touching only the patched one.
//!
//! This crate is deliberately `std`-only: cluster ids, template ids, and
//! minutes appear as plain integers (`u64`, `u32`, `i64`) mirroring the
//! pipeline's `ClusterId`, `TemplateId`, and `Minute` newtypes, so a
//! consumer can link the serving layer without pulling in the pipeline.

use std::sync::Arc;

use crate::swap::Versioned;

/// One forecast horizon the snapshot carries curves for: a model with a
/// `window`-step input predicting `horizon` steps of `interval_minutes`
/// ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HorizonMeta {
    /// Bucket width in minutes (60 = hourly).
    pub interval_minutes: i64,
    /// Model input window, in steps.
    pub window: usize,
    /// Steps ahead the curve extends.
    pub horizon: usize,
}

/// A predicted arrival-rate curve: `values[i]` is the forecast volume for
/// the bucket starting at `start + i * interval_minutes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Minute the first forecast bucket starts at.
    pub start: i64,
    /// Bucket width in minutes.
    pub interval_minutes: i64,
    /// Predicted volume per bucket, `horizon` entries.
    pub values: Vec<f64>,
}

impl Curve {
    /// Total predicted volume over the curve — the ranking key for
    /// [`ForecastSnapshot::top_k`].
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }
}

/// One cluster's entry in a snapshot: identity, membership, and a curve
/// slot per configured horizon. `curves[h]` is `None` until a model for
/// horizon slot `h` has been fit and published.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterForecast {
    /// The pipeline's cluster id.
    pub cluster: u64,
    /// Query volume over the feature window at publication time.
    pub volume: f64,
    /// Member template ids (the template→cluster index is derived from
    /// these at build time).
    pub members: Vec<u32>,
    /// Per-horizon forecast curves, indexed like
    /// [`ForecastSnapshot::horizons`]. `Arc` so a patched snapshot shares
    /// unchanged curves and answers share with the snapshot.
    pub curves: Vec<Option<Arc<Curve>>>,
}

impl ClusterForecast {
    /// An entry with identity and membership but no fitted curves yet.
    pub fn unfit(cluster: u64, volume: f64, members: Vec<u32>, horizon_slots: usize) -> Self {
        Self { cluster, volume, members, curves: vec![None; horizon_slots] }
    }
}

/// Where a cold-start estimate came from — the provenance a reader needs
/// to weigh how much to trust a forecast served without a full history
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdStartOrigin {
    /// Seeded from the template's cluster assignment: the assigned
    /// cluster's forecast curve scaled by the template's share of that
    /// cluster's recent arrival volume.
    ClusterShare {
        /// The cluster the new template was assigned to.
        cluster: u64,
        /// The template's fraction of the cluster's recent volume, in
        /// `[0, 1]`.
        share: f64,
    },
    /// Seeded from a population prior: the mean per-template forecast
    /// over all tracked clusters, used when the template has no usable
    /// cluster assignment yet.
    PopulationPrior,
}

/// A cold-start entry: per-horizon forecast curves for one template that
/// is *not* yet routed to a fit tracked cluster, seeded from its cluster
/// assignment or a population prior instead of a trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartForecast {
    /// The new template's id.
    pub template: u32,
    /// How the estimate was derived.
    pub origin: ColdStartOrigin,
    /// Per-horizon curves, indexed like [`ForecastSnapshot::horizons`].
    pub curves: Vec<Option<Arc<Curve>>>,
}

/// Accuracy/health summary frozen into a snapshot, aligned with
/// [`ForecastSnapshot::horizons`] slot for slot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeHealth {
    /// Whether the forecaster was running degraded (fallback chain
    /// active) when this snapshot was built.
    pub degraded: bool,
    /// Rolling log-space MSE per horizon slot; `None` until enough
    /// scored forecasts accumulate.
    pub rolling_mse: Vec<Option<f64>>,
    /// Model description per horizon slot (e.g. `"lr"`, `"ensemble"`);
    /// `None` for unfit slots.
    pub models: Vec<Option<String>>,
}

/// An immutable, epoch-numbered view of every published forecast.
///
/// Built by [`SnapshotBuilder`]; published through
/// [`crate::ForecastServer`]; read through [`crate::ForecastReader`].
/// Epochs increase monotonically with every publication — they are the
/// staleness currency of the whole serving layer.
#[derive(Debug)]
pub struct ForecastSnapshot {
    epoch: u64,
    /// Minute the snapshot's forecasts were built at (the pipeline `now`
    /// of the publishing round).
    pub built_at: i64,
    /// The horizon slots every entry's `curves` vector is indexed by.
    pub horizons: Arc<[HorizonMeta]>,
    /// Tracked clusters, highest-volume first (the pipeline's tracked
    /// order).
    entries: Vec<Arc<ClusterForecast>>,
    /// Sorted `(template, cluster)` pairs for binary-search routing.
    template_index: Arc<[(u32, u64)]>,
    /// Cold-start entries for templates outside the routing index,
    /// sorted by template id for binary search.
    cold: Arc<[ColdStartForecast]>,
    /// Accuracy/health summary at publication time.
    pub health: Arc<ServeHealth>,
}

impl Versioned for ForecastSnapshot {
    fn version(&self) -> u64 {
        self.epoch
    }
}

impl PartialEq for ForecastSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.built_at == other.built_at
            && self.horizons == other.horizons
            && self.entries.iter().zip(&other.entries).all(|(a, b)| a == b)
            && self.entries.len() == other.entries.len()
            && self.template_index == other.template_index
            && self.cold == other.cold
            && self.health == other.health
    }
}

impl ForecastSnapshot {
    /// The empty epoch-0 snapshot a server starts from: no clusters, no
    /// curves, nothing routed.
    pub fn empty(horizons: Vec<HorizonMeta>) -> Self {
        Self {
            epoch: 0,
            built_at: 0,
            horizons: horizons.into(),
            entries: Vec::new(),
            template_index: Arc::from([]),
            cold: Arc::from([]),
            health: Arc::new(ServeHealth::default()),
        }
    }

    /// The snapshot's epoch — increases with every publication.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tracked clusters, highest-volume first.
    pub fn entries(&self) -> &[Arc<ClusterForecast>] {
        &self.entries
    }

    /// The entry for `cluster`, if tracked. Linear scan: the tracked set
    /// is small by construction (the pipeline models the few clusters
    /// covering ≥95 % of volume).
    pub fn cluster(&self, cluster: u64) -> Option<&Arc<ClusterForecast>> {
        self.entries.iter().find(|e| e.cluster == cluster)
    }

    /// The cluster `template` is routed to, if any tracked cluster
    /// contains it. Binary search over the sorted index.
    pub fn cluster_of_template(&self, template: u32) -> Option<u64> {
        self.template_index
            .binary_search_by_key(&template, |&(t, _)| t)
            .ok()
            .map(|i| self.template_index[i].1)
    }

    /// All cold-start entries, sorted by template id.
    pub fn cold_starts(&self) -> &[ColdStartForecast] {
        &self.cold
    }

    /// The cold-start entry for `template`, if one was published. Only
    /// templates *outside* the routing index carry cold entries — a
    /// template routed to a tracked cluster is served the warm curve.
    pub fn cold_start(&self, template: u32) -> Option<&ColdStartForecast> {
        self.cold.binary_search_by_key(&template, |c| c.template).ok().map(|i| &self.cold[i])
    }

    /// The `k` clusters with the highest total predicted volume over
    /// horizon slot `horizon_idx`, as `(cluster, total)` pairs, largest
    /// first. Clusters without a curve for that slot rank by `-inf` (never
    /// above a fit cluster); ties break toward the smaller cluster id so
    /// the ranking is deterministic.
    pub fn top_k(&self, k: usize, horizon_idx: usize) -> Vec<(u64, f64)> {
        let mut ranked: Vec<(u64, f64)> = self
            .entries
            .iter()
            .map(|e| {
                let total = e
                    .curves
                    .get(horizon_idx)
                    .and_then(|c| c.as_ref())
                    .map_or(f64::NEG_INFINITY, |c| c.total());
                (e.cluster, total)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Starts an incremental rebuild sharing every entry, the routing
    /// index, the horizon table, and the health summary by `Arc` — the
    /// cheap path a single-cluster patch takes.
    pub fn rebuild(&self) -> SnapshotBuilder {
        SnapshotBuilder {
            built_at: self.built_at,
            horizons: Arc::clone(&self.horizons),
            entries: self.entries.clone(),
            template_index: Some(Arc::clone(&self.template_index)),
            cold: Arc::clone(&self.cold),
            health: Arc::clone(&self.health),
        }
    }

    /// How many entries `self` shares (pointer-identical `Arc`s) with
    /// `prev` — the structural-sharing measure tests and metrics use.
    pub fn shared_entries_with(&self, prev: &ForecastSnapshot) -> usize {
        self.entries
            .iter()
            .filter(|e| prev.entries.iter().any(|p| Arc::ptr_eq(e, p)))
            .count()
    }
}

/// Membership input to [`SnapshotBuilder::set_membership`]: one tracked
/// cluster's identity, volume, and member templates.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership {
    /// The pipeline's cluster id.
    pub cluster: u64,
    /// Query volume over the feature window.
    pub volume: f64,
    /// Member template ids.
    pub members: Vec<u32>,
}

/// Builds the next [`ForecastSnapshot`], sharing unchanged structure with
/// the previous one.
///
/// Obtain via [`ForecastSnapshot::rebuild`] (incremental, shares
/// everything) or [`SnapshotBuilder::fresh`] (from scratch). The builder
/// never assigns the epoch — [`crate::ForecastServer::publish`] does,
/// under the swap's publication lock, so epochs stay monotone even with
/// racing publishers.
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    built_at: i64,
    horizons: Arc<[HorizonMeta]>,
    entries: Vec<Arc<ClusterForecast>>,
    /// `Some` while membership is untouched (reuse the previous index);
    /// `None` once membership changed and the index must be rebuilt.
    template_index: Option<Arc<[(u32, u64)]>>,
    cold: Arc<[ColdStartForecast]>,
    health: Arc<ServeHealth>,
}

impl SnapshotBuilder {
    /// A from-scratch builder with no entries.
    pub fn fresh(built_at: i64, horizons: Vec<HorizonMeta>) -> Self {
        Self {
            built_at,
            horizons: horizons.into(),
            entries: Vec::new(),
            template_index: None,
            cold: Arc::from([]),
            health: Arc::new(ServeHealth::default()),
        }
    }

    /// Sets the build timestamp (the publishing round's `now`).
    pub fn built_at(mut self, at: i64) -> Self {
        self.built_at = at;
        self
    }

    /// The horizon slots entries are indexed by.
    pub fn horizons(&self) -> &[HorizonMeta] {
        &self.horizons
    }

    /// Reconciles the tracked-cluster set against `clusters` (the new
    /// membership, highest-volume first). An existing entry whose id,
    /// volume, and members are unchanged is kept by `Arc` — curves and
    /// all; a changed or new cluster gets a fresh entry that keeps the
    /// old curves when only volume moved (the fit is still the latest
    /// one) but drops them when membership changed (the series the model
    /// was fit on no longer exists). Clusters absent from `clusters` are
    /// dropped.
    pub fn set_membership(mut self, clusters: &[Membership]) -> Self {
        let slots = self.horizons.len();
        let old = std::mem::take(&mut self.entries);
        let mut unchanged = true;
        self.entries = clusters
            .iter()
            .map(|m| {
                if let Some(prev) = old.iter().find(|e| e.cluster == m.cluster) {
                    if prev.volume == m.volume && prev.members == m.members {
                        return Arc::clone(prev);
                    }
                    unchanged = false;
                    let curves = if prev.members == m.members {
                        prev.curves.clone()
                    } else {
                        vec![None; slots]
                    };
                    return Arc::new(ClusterForecast {
                        cluster: m.cluster,
                        volume: m.volume,
                        members: m.members.clone(),
                        curves,
                    });
                }
                unchanged = false;
                Arc::new(ClusterForecast::unfit(m.cluster, m.volume, m.members.clone(), slots))
            })
            .collect();
        if self.entries.len() != old.len() {
            unchanged = false;
        }
        if !unchanged {
            self.template_index = None;
        }
        self
    }

    /// Installs a freshly fit `curve` for `cluster` at horizon slot
    /// `horizon_idx` — the single-cluster incremental patch. Unknown
    /// clusters and out-of-range slots are ignored (the fit raced a
    /// membership change; the next full publication wins).
    pub fn set_curve(mut self, cluster: u64, horizon_idx: usize, curve: Curve) -> Self {
        if horizon_idx < self.horizons.len() {
            if let Some(entry) = self.entries.iter_mut().find(|e| e.cluster == cluster) {
                let patched = Arc::make_mut(entry);
                patched.curves[horizon_idx] = Some(Arc::new(curve));
            }
        }
        self
    }

    /// Replaces the cold-start entry set. Entries are sorted by template
    /// id (duplicates keep the first occurrence); at build time any entry
    /// whose template is routed by the final index is pruned — the warm
    /// curve supersedes the cold seed as soon as the template joins a
    /// tracked cluster.
    pub fn set_cold_starts(mut self, mut cold: Vec<ColdStartForecast>) -> Self {
        cold.sort_by_key(|c| c.template);
        cold.dedup_by_key(|c| c.template);
        self.cold = cold.into();
        self
    }

    /// Replaces the health summary.
    pub fn health(mut self, health: ServeHealth) -> Self {
        self.health = Arc::new(health);
        self
    }

    /// Freezes the builder into a snapshot at `epoch`, rebuilding the
    /// template routing index only if membership changed.
    pub fn build(self, epoch: u64) -> ForecastSnapshot {
        let template_index = self.template_index.unwrap_or_else(|| {
            let mut index: Vec<(u32, u64)> = self
                .entries
                .iter()
                .flat_map(|e| e.members.iter().map(|&t| (t, e.cluster)))
                .collect();
            index.sort_unstable();
            index.dedup_by_key(|&mut (t, _)| t);
            index.into()
        });
        let routed =
            |t: u32| template_index.binary_search_by_key(&t, |&(ti, _)| ti).is_ok();
        // Prune cold entries shadowed by the routing index; keep the Arc
        // (and its structural sharing) when nothing is shadowed.
        let cold = if self.cold.iter().any(|c| routed(c.template)) {
            self.cold.iter().filter(|c| !routed(c.template)).cloned().collect::<Vec<_>>().into()
        } else {
            self.cold
        };
        ForecastSnapshot {
            epoch,
            built_at: self.built_at,
            horizons: self.horizons,
            entries: self.entries,
            template_index,
            cold,
            health: self.health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly(horizon: usize) -> HorizonMeta {
        HorizonMeta { interval_minutes: 60, window: 24, horizon }
    }

    fn membership(cluster: u64, volume: f64, members: &[u32]) -> Membership {
        Membership { cluster, volume, members: members.to_vec() }
    }

    fn curve(start: i64, values: &[f64]) -> Curve {
        Curve { start, interval_minutes: 60, values: values.to_vec() }
    }

    #[test]
    fn routing_and_lookup() {
        let snap = SnapshotBuilder::fresh(100, vec![hourly(1)])
            .set_membership(&[membership(7, 50.0, &[1, 3]), membership(9, 20.0, &[2])])
            .set_curve(7, 0, curve(160, &[5.0]))
            .build(1);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.cluster_of_template(3), Some(7));
        assert_eq!(snap.cluster_of_template(2), Some(9));
        assert_eq!(snap.cluster_of_template(99), None);
        assert_eq!(snap.cluster(7).unwrap().curves[0].as_ref().unwrap().values, vec![5.0]);
        assert!(snap.cluster(9).unwrap().curves[0].is_none());
        assert_eq!(snap.cluster(8), None);
    }

    #[test]
    fn top_k_ranks_by_curve_total_with_deterministic_ties() {
        let snap = SnapshotBuilder::fresh(0, vec![hourly(2)])
            .set_membership(&[
                membership(1, 10.0, &[1]),
                membership(2, 10.0, &[2]),
                membership(3, 10.0, &[3]),
                membership(4, 10.0, &[4]),
            ])
            .set_curve(1, 0, curve(0, &[1.0, 1.0]))
            .set_curve(2, 0, curve(0, &[3.0, 3.0]))
            .set_curve(3, 0, curve(0, &[1.0, 1.0]))
            .build(1);
        // Cluster 4 has no curve: ranked last. 1 and 3 tie: smaller id first.
        assert_eq!(snap.top_k(4, 0), vec![
            (2, 6.0),
            (1, 2.0),
            (3, 2.0),
            (4, f64::NEG_INFINITY),
        ]);
        assert_eq!(snap.top_k(1, 0), vec![(2, 6.0)]);
    }

    #[test]
    fn incremental_patch_shares_unchanged_entries() {
        let base = SnapshotBuilder::fresh(0, vec![hourly(1)])
            .set_membership(&[
                membership(1, 30.0, &[1]),
                membership(2, 20.0, &[2]),
                membership(3, 10.0, &[3]),
            ])
            .set_curve(1, 0, curve(0, &[1.0]))
            .set_curve(2, 0, curve(0, &[2.0]))
            .set_curve(3, 0, curve(0, &[3.0]))
            .build(1);
        let patched = base.rebuild().set_curve(2, 0, curve(60, &[9.0])).build(2);
        assert_eq!(patched.shared_entries_with(&base), 2, "only cluster 2 reallocated");
        assert_eq!(patched.cluster(2).unwrap().curves[0].as_ref().unwrap().values, vec![9.0]);
        assert_eq!(patched.cluster(1).unwrap().curves[0].as_ref().unwrap().values, vec![1.0]);
        // The routing index is shared by pointer when membership is untouched.
        assert!(Arc::ptr_eq(&patched.template_index, &base.template_index));
    }

    #[test]
    fn membership_reconcile_keeps_volume_only_changes_fit() {
        let base = SnapshotBuilder::fresh(0, vec![hourly(1)])
            .set_membership(&[membership(1, 30.0, &[1, 2]), membership(2, 20.0, &[3])])
            .set_curve(1, 0, curve(0, &[4.0]))
            .set_curve(2, 0, curve(0, &[5.0]))
            .build(1);
        let next = base
            .rebuild()
            .set_membership(&[
                membership(1, 35.0, &[1, 2]), // volume moved, members same: keep curves
                membership(2, 20.0, &[3, 4]), // members changed: drop curves
            ])
            .build(2);
        assert_eq!(next.cluster(1).unwrap().curves[0].as_ref().unwrap().values, vec![4.0]);
        assert!(next.cluster(2).unwrap().curves[0].is_none());
        assert_eq!(next.cluster_of_template(4), Some(2));
        // Unchanged-everything reconcile shares by Arc.
        let same = next
            .rebuild()
            .set_membership(&[
                membership(1, 35.0, &[1, 2]),
                membership(2, 20.0, &[3, 4]),
            ])
            .build(3);
        assert_eq!(same.shared_entries_with(&next), 2);
    }

    #[test]
    fn cold_starts_route_and_are_pruned_when_template_joins_a_cluster() {
        let cold_entry = |template: u32, values: &[f64]| ColdStartForecast {
            template,
            origin: ColdStartOrigin::ClusterShare { cluster: 7, share: 0.25 },
            curves: vec![Some(Arc::new(curve(0, values)))],
        };
        let snap = SnapshotBuilder::fresh(0, vec![hourly(1)])
            .set_membership(&[membership(7, 50.0, &[1, 3])])
            .set_cold_starts(vec![cold_entry(9, &[2.5]), cold_entry(5, &[1.0])])
            .build(1);
        // Sorted by template, binary-searchable.
        assert_eq!(snap.cold_starts().len(), 2);
        assert_eq!(snap.cold_starts()[0].template, 5);
        assert_eq!(snap.cold_start(9).unwrap().curves[0].as_ref().unwrap().values, vec![2.5]);
        assert!(snap.cold_start(1).is_none(), "routed templates carry no cold entry");
        assert!(snap.cold_start(99).is_none());

        // Rebuild shares the cold list by Arc when untouched...
        let next = snap.rebuild().build(2);
        assert_eq!(next.cold_starts().len(), 2);
        // ...and prunes an entry once its template joins a tracked cluster.
        let joined = snap
            .rebuild()
            .set_membership(&[membership(7, 55.0, &[1, 3, 9])])
            .build(3);
        assert!(joined.cold_start(9).is_none(), "warm routing supersedes the cold seed");
        assert_eq!(joined.cold_start(5).unwrap().template, 5);
        assert_eq!(joined.cluster_of_template(9), Some(7));
    }

    #[test]
    fn cold_start_entry_shadowed_at_build_time() {
        // A cold entry for an already-routed template is dropped at build.
        let snap = SnapshotBuilder::fresh(0, vec![hourly(1)])
            .set_membership(&[membership(7, 50.0, &[1])])
            .set_cold_starts(vec![ColdStartForecast {
                template: 1,
                origin: ColdStartOrigin::PopulationPrior,
                curves: vec![Some(Arc::new(curve(0, &[9.0])))],
            }])
            .build(1);
        assert!(snap.cold_starts().is_empty());
    }

    #[test]
    fn dropped_cluster_leaves_index() {
        let base = SnapshotBuilder::fresh(0, vec![hourly(1)])
            .set_membership(&[membership(1, 30.0, &[1]), membership(2, 20.0, &[2])])
            .build(1);
        let next = base.rebuild().set_membership(&[membership(1, 30.0, &[1])]).build(2);
        assert_eq!(next.cluster_of_template(2), None);
        assert!(next.cluster(2).is_none());
    }
}
