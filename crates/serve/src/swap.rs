//! The hand-rolled atomic `Arc` swap behind the serving layer.
//!
//! [`Swap<T>`] holds one strong reference to the current value through an
//! [`AtomicPtr`] whose payload is `Arc::into_raw`. Readers acquire their
//! own strong reference without ever taking a lock; publishers install a
//! replacement with a single pointer swap and then retire the previous
//! value once no acquisition can still be touching it.
//!
//! ## Why not just `AtomicPtr` + `Arc::increment_strong_count`?
//!
//! The naive protocol — load the pointer, bump the count — races with a
//! publisher that swaps and drops the old `Arc` between the reader's two
//! steps: the bump then lands on freed memory. The classic fixes are
//! hazard pointers or epoch reclamation; both are overkill for a slot
//! that changes a few times per minute. This module uses the smallest
//! correct protocol instead, a **pin-counted grace period**:
//!
//! * A reader acquiring a fresh `Arc` first increments the shared `pins`
//!   counter (SeqCst), *then* loads the pointer, bumps the strong count,
//!   and decrements `pins`. The pinned window is three atomic ops long.
//! * A publisher swaps the pointer first (SeqCst), then spins until it
//!   observes `pins == 0` before reconstituting and dropping the old
//!   `Arc`. SeqCst ordering makes the argument airtight: if the publisher
//!   reads `pins == 0` *after* a reader's increment, it would have seen
//!   the pin — so any reader it does not see must start its pointer load
//!   after the swap, and can only ever observe the *new* value. Readers
//!   seen pinned are waited out; either way no strong-count bump can land
//!   on a retired allocation.
//!
//! Publishers serialize among themselves with a mutex (publication is
//! rare and already does real work building the new value); readers never
//! touch it. On top of the raw swap, [`ReadHandle`] caches the acquired
//! `Arc` per handle and revalidates it with one relaxed epoch load, so
//! the steady-state read path — the one a query-path caller hits millions
//! of times a second — is a single atomic load plus a branch, with zero
//! shared-cache-line writes.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free single-slot `Arc` store: any number of readers, rare
/// publishers, no external dependencies.
///
/// The value must carry its own version for [`ReadHandle`] caching to
/// work; [`Versioned`] exposes it.
#[derive(Debug)]
pub struct Swap<T: Versioned> {
    /// `Arc::into_raw` of the current value; never null after `new`.
    current: AtomicPtr<T>,
    /// Mirror of the current value's version, so readers can revalidate
    /// a cached `Arc` without dereferencing the shared pointer.
    version: AtomicU64,
    /// Readers mid-acquisition (between pin and unpin).
    pins: AtomicUsize,
    /// Serializes publishers; readers never touch it.
    publish_lock: Mutex<()>,
    /// Live reader handles (observability only).
    readers: AtomicUsize,
}

/// Values storable in a [`Swap`]: they expose the monotonically
/// increasing version readers use to revalidate cached references.
pub trait Versioned {
    /// The value's version; publishers must only ever install values with
    /// strictly increasing versions.
    fn version(&self) -> u64;
}

impl<T: Versioned> Swap<T> {
    /// A swap slot holding `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        let version = initial.version();
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            version: AtomicU64::new(version),
            pins: AtomicUsize::new(0),
            publish_lock: Mutex::new(()),
            readers: AtomicUsize::new(0),
        }
    }

    /// The current version — one relaxed load, the cheapest possible
    /// staleness probe.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Acquires a strong reference to the current value. Lock-free: the
    /// pinned window is three atomic operations and publishers wait for
    /// readers, never the reverse.
    pub fn load(&self) -> Arc<T> {
        // Pin BEFORE loading the pointer: a publisher that swapped before
        // our pin either sees the pin (and waits to retire the old value)
        // or read `pins == 0` after its swap, in which case SeqCst total
        // order puts our pointer load after the swap and we see the new
        // value. Either way the pointer we bump is alive.
        self.pins.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and — per the pin
        // protocol above — its strong count cannot have reached zero.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.pins.fetch_sub(1, Ordering::SeqCst);
        arc
    }

    /// Installs `next` as the current value and retires the previous one.
    /// Returns the version just published.
    ///
    /// # Panics
    /// Panics if `next.version()` does not exceed the published version —
    /// monotone epochs are the staleness contract readers rely on.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        self.publish_with(|_| next)
    }

    /// Builds the next value *from* the current one under the publication
    /// lock and installs it — the shape compare-and-publish needs: `f`
    /// sees a current value that cannot change underneath it, so derived
    /// versions (epoch = current + 1) stay monotone even with racing
    /// publishers. Returns the version just published.
    ///
    /// # Panics
    /// Panics if `f` returns a value whose version does not exceed the
    /// current one.
    pub fn publish_with(&self, f: impl FnOnce(&T) -> Arc<T>) -> u64 {
        let guard = self.publish_lock.lock().expect("swap publish lock poisoned");
        // SAFETY: we hold the publish lock, so no publisher can swap (and
        // retire) the pointer while we borrow it; readers only ever bump
        // strong counts. The pointer came from `Arc::into_raw` and the
        // slot still owns its strong reference.
        let current = unsafe { &*self.current.load(Ordering::SeqCst) };
        let next = f(current);
        let version = next.version();
        assert!(
            version > self.version.load(Ordering::Acquire),
            "Swap::publish_with: version must increase (have {}, got {version})",
            self.version.load(Ordering::Acquire)
        );
        let old = self.current.swap(Arc::into_raw(next).cast_mut(), Ordering::SeqCst);
        self.version.store(version, Ordering::Release);
        // Grace period: wait out readers pinned during the swap. The
        // pinned window is three atomic ops long, so a bounded spin
        // suffices; yield if a reader got preempted mid-acquisition.
        let mut spins = 0u32;
        while self.pins.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins > 1_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` in `new` or a previous
        // publish; the slot's strong reference is ours to drop, and no
        // reader can be mid-bump on it after the grace period.
        drop(unsafe { Arc::from_raw(old) });
        drop(guard);
        version
    }

    /// Registers a reader handle (observability; see [`Swap::reader_count`]).
    pub(crate) fn add_reader(&self) {
        self.readers.fetch_add(1, Ordering::Relaxed);
    }

    /// Unregisters a reader handle.
    pub(crate) fn remove_reader(&self) {
        self.readers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Live reader handles attached to this slot.
    pub fn reader_count(&self) -> usize {
        self.readers.load(Ordering::Relaxed)
    }
}

impl<T: Versioned> Drop for Swap<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers or publishers remain; reclaim the slot's
        // strong reference.
        let ptr = *self.current.get_mut();
        // SAFETY: the pointer was produced by `Arc::into_raw` and the
        // slot still owns its strong count.
        drop(unsafe { Arc::from_raw(ptr) });
    }
}

/// A per-thread read handle over a [`Swap`], caching the last acquired
/// `Arc` so the hot path never writes shared state.
///
/// `ReadHandle` is `Send` but deliberately not `Sync`: each thread clones
/// its own handle, and [`ReadHandle::current`] revalidates the cache with
/// a single atomic version load — the sub-microsecond path. Only when the
/// version moved (a publish happened) does it fall back to the pinned
/// [`Swap::load`].
#[derive(Debug)]
pub struct ReadHandle<T: Versioned> {
    swap: Arc<Swap<T>>,
    cached: std::cell::RefCell<Arc<T>>,
    cached_version: std::cell::Cell<u64>,
}

impl<T: Versioned> ReadHandle<T> {
    /// A handle over `swap`, pre-warmed with the current value.
    pub fn new(swap: Arc<Swap<T>>) -> Self {
        swap.add_reader();
        let cached = swap.load();
        let cached_version = cached.version();
        Self {
            swap,
            cached: std::cell::RefCell::new(cached),
            cached_version: std::cell::Cell::new(cached_version),
        }
    }

    /// The current value. One relaxed-ordered atomic load when nothing
    /// was published since the last call; the pinned slow path otherwise.
    pub fn current(&self) -> Arc<T> {
        let live = self.swap.version();
        if live != self.cached_version.get() {
            let fresh = self.swap.load();
            self.cached_version.set(fresh.version());
            *self.cached.borrow_mut() = fresh;
        }
        Arc::clone(&self.cached.borrow())
    }

    /// Runs `f` against the current value without cloning the `Arc` —
    /// the cheapest read shape (no refcount traffic at all on the fast
    /// path).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let live = self.swap.version();
        if live != self.cached_version.get() {
            let fresh = self.swap.load();
            self.cached_version.set(fresh.version());
            *self.cached.borrow_mut() = fresh;
        }
        f(&self.cached.borrow())
    }

    /// The underlying slot's published version (may be newer than the
    /// cached value until the next read).
    pub fn version(&self) -> u64 {
        self.swap.version()
    }
}

impl<T: Versioned> Clone for ReadHandle<T> {
    fn clone(&self) -> Self {
        Self::new(Arc::clone(&self.swap))
    }
}

impl<T: Versioned> Drop for ReadHandle<T> {
    fn drop(&mut self) {
        self.swap.remove_reader();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[derive(Debug)]
    struct V(u64, Vec<u64>);
    impl Versioned for V {
        fn version(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn load_returns_published_value() {
        let swap = Swap::new(Arc::new(V(1, vec![1])));
        assert_eq!(swap.load().1, vec![1]);
        swap.publish(Arc::new(V(2, vec![2, 2])));
        assert_eq!(swap.load().1, vec![2, 2]);
        assert_eq!(swap.version(), 2);
    }

    #[test]
    #[should_panic(expected = "version must increase")]
    fn non_monotone_publish_panics() {
        let swap = Swap::new(Arc::new(V(5, vec![])));
        swap.publish(Arc::new(V(5, vec![])));
    }

    #[test]
    fn old_values_are_reclaimed_not_leaked() {
        // A drop-counting payload: every published value must be dropped
        // exactly once by the end (no leak from into_raw, no double-free
        // from the grace period).
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted(u64);
        impl Versioned for Counted {
            fn version(&self) -> u64 {
                self.0
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let swap = Swap::new(Arc::new(Counted(1)));
            for v in 2..=10 {
                swap.publish(Arc::new(Counted(v)));
            }
            assert_eq!(DROPS.load(Ordering::SeqCst), 9, "retired values dropped eagerly");
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10, "slot drop reclaims the last value");
    }

    #[test]
    fn read_handle_caches_until_publish() {
        let swap = Arc::new(Swap::new(Arc::new(V(1, vec![7]))));
        let handle = ReadHandle::new(Arc::clone(&swap));
        let a = handle.current();
        let b = handle.current();
        assert!(Arc::ptr_eq(&a, &b), "no publish -> same Arc");
        swap.publish(Arc::new(V(2, vec![8])));
        let c = handle.current();
        assert_eq!(c.1, vec![8]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(handle.with(|v| v.1[0]), 8);
    }

    #[test]
    fn reader_count_tracks_handles() {
        let swap = Arc::new(Swap::new(Arc::new(V(1, vec![]))));
        assert_eq!(swap.reader_count(), 0);
        let h1 = ReadHandle::new(Arc::clone(&swap));
        let h2 = h1.clone();
        assert_eq!(swap.reader_count(), 2);
        drop(h1);
        assert_eq!(swap.reader_count(), 1);
        drop(h2);
        assert_eq!(swap.reader_count(), 0);
    }

    /// The core memory-safety race: readers acquiring while a publisher
    /// swaps and retires. Run under a thread sanitizer this is the test
    /// that would catch a broken grace period; without one it still
    /// catches use-after-free via the consistency payload (each value's
    /// vector is filled with its version, so tearing or a stale free
    /// shows up as a mismatched element).
    #[test]
    fn concurrent_readers_survive_rapid_publishes() {
        let swap = Arc::new(Swap::new(Arc::new(V(1, vec![1; 64]))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let swap = Arc::clone(&swap);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let handle = ReadHandle::new(swap);
                    while !stop.load(Ordering::Relaxed) {
                        handle.with(|v| {
                            let version = v.version();
                            assert!(
                                v.1.iter().all(|&x| x == version),
                                "torn read at version {version}"
                            );
                        });
                    }
                });
            }
            for version in 2..2_000u64 {
                swap.publish(Arc::new(V(version, vec![version; 64])));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(swap.version(), 1_999);
    }
}
