//! # qb-serve — lock-free forecast serving
//!
//! The serving layer that makes QB5000's forecasts consumable *on the
//! query path* of a self-driving DBMS: an immutable, epoch-numbered
//! [`ForecastSnapshot`] published through a hand-rolled atomic `Arc`
//! swap, so any number of [`ForecastReader`] handles answer typed
//! [`ForecastQuery`]s lock-free at sub-microsecond latency while the
//! pipeline keeps ingesting, re-clustering, and retraining.
//!
//! ## Shape
//!
//! * [`swap`] — the concurrency primitive: [`Swap`] (an `AtomicPtr`
//!   slot owning one `Arc` strong count, with a pin-counted grace
//!   period for reclamation) and [`ReadHandle`] (a per-thread handle
//!   whose steady-state read is a single atomic version load).
//! * [`snapshot`] — the data model: [`ForecastSnapshot`],
//!   [`ClusterForecast`], [`Curve`], and the structural-sharing
//!   [`SnapshotBuilder`] (an incremental patch reallocates only the
//!   changed cluster's entry).
//! * [`query`] — the typed reader API: [`ForecastQuery`] (by cluster,
//!   by template, top-K; with staleness bounds) and [`ForecastAnswer`]
//!   (always stamped with the serving epoch).
//!
//! This crate is dependency-free by design (`std` only, plain-integer
//! ids) so a DBMS query path can link it without pulling in the
//! pipeline. The pipeline side — publication points, metrics, trace
//! events — lives in `qb-core::serve`.
//!
//! ## Quick start
//!
//! ```
//! use qb_serve::{
//!     Curve, ForecastQuery, ForecastServer, HorizonMeta, Membership, SnapshotBuilder,
//! };
//!
//! let server = ForecastServer::new(vec![HorizonMeta {
//!     interval_minutes: 60,
//!     window: 24,
//!     horizon: 1,
//! }]);
//! let reader = server.reader(); // cheap; clone one per thread
//!
//! // Publisher side: reconcile membership, patch in a fit curve.
//! server.publish(|current, _epoch| {
//!     current
//!         .rebuild()
//!         .built_at(600)
//!         .set_membership(&[Membership { cluster: 7, volume: 50.0, members: vec![1, 3] }])
//!         .set_curve(7, 0, Curve { start: 660, interval_minutes: 60, values: vec![5.5] })
//! });
//!
//! // Reader side: lock-free, epoch-stamped.
//! let answer = reader.answer(&ForecastQuery::template(3, 0));
//! assert_eq!(answer.epoch, 1);
//! assert_eq!(answer.curve().unwrap().values, vec![5.5]);
//! ```

pub mod query;
pub mod snapshot;
pub mod swap;

pub use query::{ForecastAnswer, ForecastQuery, Missing, Outcome, QueryTarget, StalenessBound};
pub use snapshot::{
    ClusterForecast, ColdStartForecast, ColdStartOrigin, Curve, ForecastSnapshot, HorizonMeta,
    Membership, ServeHealth, SnapshotBuilder,
};
pub use swap::{ReadHandle, Swap, Versioned};

use std::sync::Arc;

/// The publisher-side handle: owns the swap slot, assigns epochs, and
/// hands out [`ForecastReader`]s.
///
/// Cloning shares the slot — the pipeline keeps one clone per
/// publication point (cluster updates, retrains, controller rounds) and
/// all of them publish into the same epoch sequence.
#[derive(Debug, Clone)]
pub struct ForecastServer {
    swap: Arc<Swap<ForecastSnapshot>>,
}

impl ForecastServer {
    /// A server starting from the empty epoch-0 snapshot with the given
    /// horizon slots.
    pub fn new(horizons: Vec<HorizonMeta>) -> Self {
        Self { swap: Arc::new(Swap::new(Arc::new(ForecastSnapshot::empty(horizons)))) }
    }

    /// Publishes the snapshot `f` builds from the current one. `f`
    /// receives the current snapshot and the epoch the new one will be
    /// published at, and returns the builder; the server freezes and
    /// installs it atomically. Publishers serialize; readers never wait.
    /// Returns the new epoch.
    pub fn publish(
        &self,
        f: impl FnOnce(&ForecastSnapshot, u64) -> SnapshotBuilder,
    ) -> u64 {
        self.swap.publish_with(|current| {
            let epoch = current.epoch() + 1;
            Arc::new(f(current, epoch).build(epoch))
        })
    }

    /// A new lock-free reader over this server's snapshots.
    pub fn reader(&self) -> ForecastReader {
        ForecastReader { handle: ReadHandle::new(Arc::clone(&self.swap)) }
    }

    /// The currently served epoch (0 until the first publication).
    pub fn epoch(&self) -> u64 {
        self.swap.version()
    }

    /// The current snapshot (publisher-side convenience; readers should
    /// use their own handle).
    pub fn current(&self) -> Arc<ForecastSnapshot> {
        self.swap.load()
    }

    /// Live reader handles attached to this server.
    pub fn reader_count(&self) -> usize {
        self.swap.reader_count()
    }
}

/// A per-thread, lock-free reader over a [`ForecastServer`]'s snapshots.
///
/// `Send` but not `Sync`: clone one per thread. The steady-state
/// [`ForecastReader::answer`] is a single atomic epoch load plus the
/// lookup — no locks, no shared-cache-line writes, no allocation on the
/// curve path (answers share the snapshot's curves by `Arc`).
#[derive(Debug, Clone)]
pub struct ForecastReader {
    handle: ReadHandle<ForecastSnapshot>,
}

impl ForecastReader {
    /// Answers a typed query against the current snapshot.
    pub fn answer(&self, query: &ForecastQuery) -> ForecastAnswer {
        self.handle.with(|snap| query.answer_from(snap))
    }

    /// Runs `f` against the current snapshot — the zero-copy batch path:
    /// every lookup inside `f` sees one consistent epoch.
    pub fn with_snapshot<R>(&self, f: impl FnOnce(&ForecastSnapshot) -> R) -> R {
        self.handle.with(f)
    }

    /// A strong reference to the current snapshot (pins that epoch for
    /// as long as the caller holds it).
    pub fn snapshot(&self) -> Arc<ForecastSnapshot> {
        self.handle.current()
    }

    /// The epoch currently being served.
    pub fn epoch(&self) -> u64 {
        self.handle.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn hourly(horizon: usize) -> HorizonMeta {
        HorizonMeta { interval_minutes: 60, window: 24, horizon }
    }

    #[test]
    fn epochs_assigned_sequentially_by_server() {
        let server = ForecastServer::new(vec![hourly(1)]);
        assert_eq!(server.epoch(), 0);
        let e1 = server.publish(|cur, _| cur.rebuild());
        let e2 = server.publish(|cur, _| cur.rebuild());
        assert_eq!((e1, e2), (1, 2));
        assert_eq!(server.current().epoch(), 2);
    }

    #[test]
    fn racing_publishers_never_collide_on_epochs() {
        let server = ForecastServer::new(vec![hourly(1)]);
        const PER_THREAD: u64 = 200;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let server = server.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        server.publish(|cur, _| cur.rebuild());
                    }
                });
            }
        });
        assert_eq!(server.epoch(), 4 * PER_THREAD, "every publish got a distinct epoch");
    }

    /// The serving-layer consistency contract: N reader threads racing a
    /// publisher that patches one cluster per epoch, where every curve
    /// value encodes the epoch it was published at. A reader seeing a
    /// half-published snapshot (entries from different epochs under one
    /// epoch number with changed membership, or a torn curve) fails the
    /// per-read assertion.
    #[test]
    fn readers_always_see_consistent_epochs() {
        let server = ForecastServer::new(vec![hourly(4)]);
        // Epoch e publishes: every cluster's curve holds e as all values
        // once patched this round; built_at also carries e.
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = server.reader();
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        reader.with_snapshot(|snap| {
                            let epoch = snap.epoch();
                            assert_eq!(snap.built_at, epoch as i64, "built_at matches epoch");
                            for entry in snap.entries() {
                                for curve in entry.curves.iter().flatten() {
                                    assert!(
                                        curve.values.iter().all(|&v| v as u64 <= epoch),
                                        "curve from the future at epoch {epoch}"
                                    );
                                    assert!(
                                        curve.values.windows(2).all(|w| w[0] == w[1]),
                                        "torn curve at epoch {epoch}"
                                    );
                                }
                            }
                        });
                    }
                });
            }
            for round in 0..1_500u64 {
                server.publish(|cur, epoch| {
                    let cluster = round % 3;
                    let mut b = cur.rebuild().built_at(epoch as i64);
                    if cur.cluster(cluster).is_none() {
                        b = b.set_membership(
                            &(0..=cluster)
                                .map(|c| Membership {
                                    cluster: c,
                                    volume: 10.0,
                                    members: vec![c as u32],
                                })
                                .collect::<Vec<_>>(),
                        );
                    }
                    b.set_curve(
                        cluster,
                        (round % 4) as usize,
                        Curve {
                            start: epoch as i64,
                            interval_minutes: 60,
                            values: vec![epoch as f64; 4],
                        },
                    )
                });
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(server.epoch(), 1_500);
    }

    #[test]
    fn reader_count_visible_to_server() {
        let server = ForecastServer::new(vec![hourly(1)]);
        let r1 = server.reader();
        let r2 = r1.clone();
        assert_eq!(server.reader_count(), 2);
        drop((r1, r2));
        assert_eq!(server.reader_count(), 0);
    }
}
