//! The reader-facing query API: typed [`ForecastQuery`] /
//! [`ForecastAnswer`] pairs replacing ad-hoc tuple returns.
//!
//! A query names a *target* (a cluster, a template routed to its
//! cluster, or the top-K clusters over a horizon window), a horizon
//! slot, and a *staleness bound*. The answer always carries the epoch
//! and build time it was served from, so a caller can correlate answers
//! across readers or against the pipeline's own health report.

use std::sync::Arc;

use crate::snapshot::{ColdStartOrigin, Curve, ForecastSnapshot};

/// What a [`ForecastQuery`] asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryTarget {
    /// One cluster's forecast curve, by cluster id.
    Cluster(u64),
    /// The forecast curve of the cluster a template is routed to.
    Template(u32),
    /// The `k` highest-predicted-volume clusters over the horizon window.
    TopK(usize),
}

/// How stale an answer the caller will accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StalenessBound {
    /// Any published snapshot (the default).
    #[default]
    Any,
    /// Only snapshots at or past this epoch — "I saw epoch E elsewhere;
    /// don't serve me older".
    AtLeastEpoch(u64),
    /// Only snapshots built within `max_age` minutes of the caller's
    /// `now` — wall-alignment for query-path consumers.
    BuiltWithin {
        /// The caller's current minute.
        now: i64,
        /// Maximum acceptable `now - built_at`.
        max_age: i64,
    },
}

impl StalenessBound {
    /// Whether `snapshot` satisfies the bound.
    pub fn admits(self, snapshot: &ForecastSnapshot) -> bool {
        match self {
            StalenessBound::Any => true,
            StalenessBound::AtLeastEpoch(e) => snapshot.epoch() >= e,
            StalenessBound::BuiltWithin { now, max_age } => now - snapshot.built_at <= max_age,
        }
    }
}

/// A typed forecast lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastQuery {
    /// What to look up.
    pub target: QueryTarget,
    /// Which horizon slot (index into [`ForecastSnapshot::horizons`]).
    pub horizon_idx: usize,
    /// How stale an answer is acceptable.
    pub staleness: StalenessBound,
}

impl ForecastQuery {
    /// A cluster-curve query at `horizon_idx`, any staleness.
    pub fn cluster(cluster: u64, horizon_idx: usize) -> Self {
        Self { target: QueryTarget::Cluster(cluster), horizon_idx, staleness: StalenessBound::Any }
    }

    /// A template-routed curve query at `horizon_idx`, any staleness.
    pub fn template(template: u32, horizon_idx: usize) -> Self {
        Self { target: QueryTarget::Template(template), horizon_idx, staleness: StalenessBound::Any }
    }

    /// A top-`k` ranking query at `horizon_idx`, any staleness.
    pub fn top_k(k: usize, horizon_idx: usize) -> Self {
        Self { target: QueryTarget::TopK(k), horizon_idx, staleness: StalenessBound::Any }
    }

    /// The same query with a staleness bound.
    pub fn with_staleness(mut self, staleness: StalenessBound) -> Self {
        self.staleness = staleness;
        self
    }

    /// Evaluates against a snapshot. Readers call this through
    /// [`crate::ForecastReader::answer`]; it is exposed so a caller
    /// holding a pinned `Arc<ForecastSnapshot>` can batch many queries
    /// against one consistent epoch.
    pub fn answer_from(&self, snapshot: &ForecastSnapshot) -> ForecastAnswer {
        let epoch = snapshot.epoch();
        let built_at = snapshot.built_at;
        if !self.staleness.admits(snapshot) {
            return ForecastAnswer { epoch, built_at, outcome: Outcome::TooStale };
        }
        if self.horizon_idx >= snapshot.horizons.len() {
            return ForecastAnswer {
                epoch,
                built_at,
                outcome: Outcome::NotFound(Missing::Horizon(self.horizon_idx)),
            };
        }
        let outcome = match self.target {
            QueryTarget::TopK(k) => Outcome::Ranking(snapshot.top_k(k, self.horizon_idx)),
            QueryTarget::Cluster(cluster) => self.curve_outcome(snapshot, cluster),
            QueryTarget::Template(template) => match snapshot.cluster_of_template(template) {
                None => self.cold_outcome(snapshot, template),
                Some(cluster) => self.curve_outcome(snapshot, cluster),
            },
        };
        ForecastAnswer { epoch, built_at, outcome }
    }

    fn curve_outcome(&self, snapshot: &ForecastSnapshot, cluster: u64) -> Outcome {
        match snapshot.cluster(cluster) {
            None => Outcome::NotFound(Missing::Cluster(cluster)),
            Some(entry) => match &entry.curves[self.horizon_idx] {
                None => Outcome::NotFound(Missing::Unfit { cluster, horizon_idx: self.horizon_idx }),
                Some(curve) => Outcome::Curve { cluster, curve: Arc::clone(curve) },
            },
        }
    }

    /// The cold-start fallback for an unrouted template: a seeded curve
    /// with typed provenance if one was published, otherwise the classic
    /// [`Missing::Template`].
    fn cold_outcome(&self, snapshot: &ForecastSnapshot, template: u32) -> Outcome {
        snapshot
            .cold_start(template)
            .and_then(|entry| {
                entry.curves.get(self.horizon_idx).and_then(|slot| slot.as_ref()).map(|curve| {
                    Outcome::ColdStart {
                        template,
                        origin: entry.origin,
                        curve: Arc::clone(curve),
                    }
                })
            })
            .unwrap_or(Outcome::NotFound(Missing::Template(template)))
    }
}

/// Why a query found nothing — distinguished so callers can react
/// (an unknown template may warrant a cold-start prior; an unfit curve
/// just means "ask again after the next retrain").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Missing {
    /// The cluster id is not in the tracked set.
    Cluster(u64),
    /// The template is not routed to any tracked cluster.
    Template(u32),
    /// The horizon slot index is out of range for this snapshot.
    Horizon(usize),
    /// The cluster is tracked but no model has been fit for this slot yet.
    Unfit {
        /// The tracked cluster.
        cluster: u64,
        /// The unfit horizon slot.
        horizon_idx: usize,
    },
}

/// A query's result payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A forecast curve (shared with the snapshot — no copy).
    Curve {
        /// The cluster the curve belongs to (resolved from the template
        /// for [`QueryTarget::Template`] queries).
        cluster: u64,
        /// The predicted curve.
        curve: Arc<Curve>,
    },
    /// A cold-start curve: the template is not routed to any fit tracked
    /// cluster yet, so the forecast was seeded from its cluster
    /// assignment or a population prior. The provenance is typed so a
    /// consumer can discount the estimate accordingly.
    ColdStart {
        /// The template the seed was published for.
        template: u32,
        /// How the estimate was derived.
        origin: ColdStartOrigin,
        /// The seeded curve (shared with the snapshot — no copy).
        curve: Arc<Curve>,
    },
    /// `(cluster, total predicted volume)` pairs, largest first.
    Ranking(Vec<(u64, f64)>),
    /// Nothing matched; the reason says what was missing.
    NotFound(Missing),
    /// The snapshot violated the query's staleness bound.
    TooStale,
}

/// A typed answer: the payload plus the epoch/build-time provenance every
/// consumer needs to reason about staleness.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastAnswer {
    /// Epoch of the snapshot the answer was served from.
    pub epoch: u64,
    /// Build minute of that snapshot.
    pub built_at: i64,
    /// The result payload.
    pub outcome: Outcome,
}

impl ForecastAnswer {
    /// The curve, if the outcome carries one.
    pub fn curve(&self) -> Option<&Curve> {
        match &self.outcome {
            Outcome::Curve { curve, .. } => Some(curve),
            _ => None,
        }
    }

    /// The ranking, if the outcome carries one.
    pub fn ranking(&self) -> Option<&[(u64, f64)]> {
        match &self.outcome {
            Outcome::Ranking(r) => Some(r),
            _ => None,
        }
    }

    /// The curve regardless of provenance — a trained cluster curve or a
    /// cold-start seed. Callers that must distinguish match on
    /// [`ForecastAnswer::outcome`] or use [`ForecastAnswer::cold_origin`].
    pub fn any_curve(&self) -> Option<&Curve> {
        match &self.outcome {
            Outcome::Curve { curve, .. } | Outcome::ColdStart { curve, .. } => Some(curve),
            _ => None,
        }
    }

    /// The cold-start provenance, if the answer was served from the cold
    /// path.
    pub fn cold_origin(&self) -> Option<ColdStartOrigin> {
        match &self.outcome {
            Outcome::ColdStart { origin, .. } => Some(*origin),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HorizonMeta, Membership, SnapshotBuilder};

    fn snapshot() -> ForecastSnapshot {
        SnapshotBuilder::fresh(
            600,
            vec![HorizonMeta { interval_minutes: 60, window: 24, horizon: 1 }],
        )
        .set_membership(&[
            Membership { cluster: 7, volume: 50.0, members: vec![1, 3] },
            Membership { cluster: 9, volume: 20.0, members: vec![2] },
        ])
        .set_curve(7, 0, Curve { start: 660, interval_minutes: 60, values: vec![5.5] })
        .build(3)
    }

    #[test]
    fn cluster_template_and_topk_targets() {
        let snap = snapshot();
        let by_cluster = ForecastQuery::cluster(7, 0).answer_from(&snap);
        assert_eq!(by_cluster.epoch, 3);
        assert_eq!(by_cluster.curve().unwrap().values, vec![5.5]);
        let by_template = ForecastQuery::template(3, 0).answer_from(&snap);
        assert_eq!(by_template.outcome, by_cluster.outcome, "template routes to its cluster");
        let ranking = ForecastQuery::top_k(2, 0).answer_from(&snap);
        assert_eq!(ranking.ranking().unwrap()[0], (7, 5.5));
    }

    #[test]
    fn not_found_reasons_are_distinguished() {
        let snap = snapshot();
        assert_eq!(
            ForecastQuery::cluster(8, 0).answer_from(&snap).outcome,
            Outcome::NotFound(Missing::Cluster(8))
        );
        assert_eq!(
            ForecastQuery::template(42, 0).answer_from(&snap).outcome,
            Outcome::NotFound(Missing::Template(42))
        );
        assert_eq!(
            ForecastQuery::cluster(9, 0).answer_from(&snap).outcome,
            Outcome::NotFound(Missing::Unfit { cluster: 9, horizon_idx: 0 })
        );
        assert_eq!(
            ForecastQuery::cluster(7, 5).answer_from(&snap).outcome,
            Outcome::NotFound(Missing::Horizon(5))
        );
    }

    #[test]
    fn unrouted_template_falls_back_to_cold_start() {
        use crate::snapshot::{ColdStartForecast, ColdStartOrigin};
        let origin = ColdStartOrigin::ClusterShare { cluster: 7, share: 0.2 };
        let snap = SnapshotBuilder::fresh(
            600,
            vec![HorizonMeta { interval_minutes: 60, window: 24, horizon: 1 }],
        )
        .set_membership(&[Membership { cluster: 7, volume: 50.0, members: vec![1, 3] }])
        .set_curve(7, 0, Curve { start: 660, interval_minutes: 60, values: vec![5.5] })
        .set_cold_starts(vec![ColdStartForecast {
            template: 42,
            origin,
            curves: vec![Some(Arc::new(Curve {
                start: 660,
                interval_minutes: 60,
                values: vec![1.1],
            }))],
        }])
        .build(3);
        let cold = ForecastQuery::template(42, 0).answer_from(&snap);
        assert_eq!(cold.cold_origin(), Some(origin));
        assert_eq!(cold.any_curve().unwrap().values, vec![1.1]);
        assert_eq!(cold.curve(), None, "curve() stays warm-only");
        // A routed template still takes the warm path.
        let warm = ForecastQuery::template(3, 0).answer_from(&snap);
        assert_eq!(warm.cold_origin(), None);
        assert_eq!(warm.curve().unwrap().values, vec![5.5]);
        assert_eq!(warm.any_curve().unwrap().values, vec![5.5]);
        // A template with neither route nor cold entry is still Missing.
        assert_eq!(
            ForecastQuery::template(99, 0).answer_from(&snap).outcome,
            Outcome::NotFound(Missing::Template(99))
        );
        // Out-of-range horizon slot on a cold entry: Missing, not a panic.
        let snap_two_h = SnapshotBuilder::fresh(
            600,
            vec![
                HorizonMeta { interval_minutes: 60, window: 24, horizon: 1 },
                HorizonMeta { interval_minutes: 60, window: 24, horizon: 6 },
            ],
        )
        .set_cold_starts(vec![ColdStartForecast {
            template: 42,
            origin,
            curves: vec![Some(Arc::new(Curve {
                start: 660,
                interval_minutes: 60,
                values: vec![1.1],
            }))],
        }])
        .build(1);
        assert_eq!(
            ForecastQuery::template(42, 1).answer_from(&snap_two_h).outcome,
            Outcome::NotFound(Missing::Template(42)),
            "cold entry without a curve for the slot is Missing"
        );
    }

    #[test]
    fn staleness_bounds() {
        let snap = snapshot(); // epoch 3, built_at 600
        let q = ForecastQuery::cluster(7, 0);
        assert!(q.with_staleness(StalenessBound::AtLeastEpoch(3)).answer_from(&snap).curve().is_some());
        assert_eq!(
            q.with_staleness(StalenessBound::AtLeastEpoch(4)).answer_from(&snap).outcome,
            Outcome::TooStale
        );
        assert!(q
            .with_staleness(StalenessBound::BuiltWithin { now: 650, max_age: 60 })
            .answer_from(&snap)
            .curve()
            .is_some());
        assert_eq!(
            q.with_staleness(StalenessBound::BuiltWithin { now: 700, max_age: 60 })
                .answer_from(&snap)
                .outcome,
            Outcome::TooStale
        );
    }
}
