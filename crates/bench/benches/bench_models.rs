//! Table 4 (model rows): training/prediction cost of LR, RNN, and KR on a
//! three-cluster hourly series.

use criterion::{criterion_group, criterion_main, Criterion};
use qb_forecast::{Forecaster, WindowSpec};

fn series() -> Vec<Vec<f64>> {
    (0..3)
        .map(|c| {
            (0..504) // three weeks hourly
                .map(|t| {
                    let phase = c as f64 * 2.0;
                    120.0
                        + 90.0
                            * (((t % 24) as f64 + phase) / 24.0 * std::f64::consts::TAU).sin()
                })
                .map(|v: f64| v.max(0.0))
                .collect()
        })
        .collect()
}

fn bench_models(c: &mut Criterion) {
    let series = series();
    let spec = WindowSpec { window: 24, horizon: 1 };
    let recent: Vec<Vec<f64>> = series.iter().map(|s| s[s.len() - 24..].to_vec()).collect();

    let mut group = c.benchmark_group("table4_models");

    group.bench_function("lr_train", |b| {
        b.iter(|| {
            let mut m = qb_forecast::LinearRegression::default();
            m.fit(&series, spec).expect("fit");
            m
        })
    });

    group.bench_function("kr_train", |b| {
        b.iter(|| {
            let mut m = qb_forecast::KernelRegression::default();
            m.fit(&series, spec).expect("fit");
            m
        })
    });
    let mut kr = qb_forecast::KernelRegression::default();
    kr.fit(&series, spec).expect("fit");
    group.bench_function("kr_predict", |b| b.iter(|| kr.predict(&recent)));

    group.bench_function("arma_train", |b| {
        b.iter(|| {
            let mut m = qb_forecast::Arma::default();
            m.fit(&series, spec).expect("fit");
            m
        })
    });

    group.sample_size(10);
    group.bench_function("rnn_train_10_epochs", |b| {
        b.iter(|| {
            let cfg = qb_forecast::RnnConfig {
                epochs: 10,
                patience: 10,
                ..qb_forecast::RnnConfig::default()
            };
            let mut m = qb_forecast::Rnn::new(cfg);
            m.fit(&series, spec).expect("fit");
            m
        })
    });
    let mut rnn = qb_forecast::Rnn::new(qb_forecast::RnnConfig {
        epochs: 5,
        ..qb_forecast::RnnConfig::default()
    });
    rnn.fit(&series, spec).expect("fit");
    group.bench_function("rnn_predict", |b| b.iter(|| rnn.predict(&recent)));

    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
