//! Table 4 (component rows): Pre-Processor per-query cost and the
//! Clusterer's per-update cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use qb_preprocessor::{PreProcessor, PreProcessorConfig};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{TraceConfig, Workload};

fn bench_preprocessor(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_preprocessor");

    // Fresh queries (cache miss: full parse + templatize path).
    let queries: Vec<String> = (0..4096)
        .map(|i| {
            format!(
                "SELECT a, b FROM t{} WHERE id = {} AND name = 'user{}' AND score > {}",
                i % 7,
                i,
                i * 31 % 1000,
                i % 97
            )
        })
        .collect();
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("ingest_cold", |b| {
        b.iter_batched(
            || PreProcessor::new(PreProcessorConfig::default()),
            |mut pre| {
                for (i, q) in queries.iter().enumerate() {
                    pre.ingest(i as i64, q).expect("valid");
                }
                pre
            },
            BatchSize::SmallInput,
        )
    });

    // Repeated queries (raw-cache hit: the steady-state OLTP path).
    let hot: Vec<&String> = queries.iter().cycle().take(4096).collect();
    group.bench_function("ingest_hot", |b| {
        let mut pre = PreProcessor::new(PreProcessorConfig::default());
        for (i, q) in queries.iter().enumerate() {
            pre.ingest(i as i64, q).expect("valid");
        }
        b.iter(|| {
            for (i, q) in hot.iter().enumerate() {
                pre.ingest(i as i64, q).expect("valid");
            }
        })
    });
    group.finish();
}

fn bench_clusterer_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_clusterer");
    // Build a realistic bot state from two days of BusTracker, then time
    // one full clustering update.
    let mut bot = qb5000::QueryBot5000::new(qb5000::Qb5000Config::default());
    let cfg = TraceConfig { start: 0, days: 2, scale: 0.05, seed: 1 };
    for ev in Workload::BusTracker.generator(cfg) {
        let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    group.bench_function("daily_update", |b| {
        b.iter(|| bot.update_clusters(2 * MINUTES_PER_DAY))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preprocessor, bench_clusterer_update
}
criterion_main!(benches);
