//! Clusterer scalability: the §5.2 complexity claim (O(n log n) in the
//! number of templates) plus kd-tree nearest-center lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb_clusterer::{
    ClustererConfig, KdTree, OnlineClusterer, TemplateFeature, TemplateSnapshot,
};
use qb_obs::Recorder;

/// Synthetic feature vectors: `n` templates spread over `patterns` distinct
/// arrival shapes with small per-template perturbations.
fn snapshots(n: usize, patterns: usize, dim: usize) -> Vec<TemplateSnapshot> {
    (0..n)
        .map(|i| {
            let p = i % patterns;
            let values: Vec<f64> = (0..dim)
                .map(|d| {
                    let base =
                        ((d + p * 3) as f64 / dim as f64 * std::f64::consts::TAU).sin() + 1.1;
                    base * (1.0 + (i % 7) as f64 * 0.01)
                })
                .collect();
            TemplateSnapshot {
                key: i as u64,
                feature: TemplateFeature::full(values),
                volume: 1.0 + (i % 13) as f64,
                last_seen: 0,
            }
        })
        .collect()
}

fn bench_online_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("clusterer_update");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let snaps = snapshots(n, 8, 64);
        group.bench_with_input(BenchmarkId::new("templates", n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut cl = OnlineClusterer::new(ClustererConfig::default());
                cl.update(snaps.clone(), 0);
                cl.num_clusters()
            })
        });
        // Same update with metric recording on: compare against the row
        // above — the observability layer's budget is < 5% overhead.
        let recorder = Recorder::new();
        group.bench_with_input(BenchmarkId::new("templates_recorded", n), &snaps, |b, snaps| {
            b.iter(|| {
                let mut cl = OnlineClusterer::new(ClustererConfig::default());
                cl.set_recorder(&recorder);
                cl.update(snaps.clone(), 0);
                cl.num_clusters()
            })
        });
    }
    group.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree");
    let points: Vec<(Vec<f64>, usize)> = (0..2000)
        .map(|i| {
            let v: Vec<f64> = (0..32)
                .map(|d| (((i * 31 + d * 7) % 997) as f64 / 997.0) - 0.5)
                .collect();
            (v, i)
        })
        .collect();
    group.bench_function("build_2000x32", |b| {
        b.iter(|| KdTree::build(points.clone()))
    });
    let tree = KdTree::build(points.clone());
    let query: Vec<f64> = (0..32).map(|d| (d as f64 / 32.0) - 0.5).collect();
    group.bench_function("nearest", |b| b.iter(|| tree.nearest(&query)));
    group.finish();
}

criterion_group!(benches, bench_online_update, bench_kdtree);
criterion_main!(benches);
