//! Figure 10b: ENSEMBLE (LR + RNN) training time as a function of the
//! prediction interval — longer intervals mean fewer, smaller training
//! examples and should train faster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qb_forecast::{Forecaster, WindowSpec};

/// One week of per-minute arrivals for one cluster.
fn minute_series() -> Vec<f64> {
    (0..7 * 24 * 60)
        .map(|t| {
            let h = (t / 60) % 24;
            let base = if (7..21).contains(&h) { 40.0 } else { 6.0 };
            base + ((t % 37) as f64) * 0.3
        })
        .collect()
}

/// Aggregates the minute series into `k`-minute buckets.
fn aggregate(series: &[f64], k: usize) -> Vec<f64> {
    series.chunks(k).map(|c| c.iter().sum()).collect()
}

fn bench_intervals(c: &mut Criterion) {
    let minutes = minute_series();
    let mut group = c.benchmark_group("fig10b_train_time");
    group.sample_size(10);

    for interval_min in [10usize, 20, 30, 60, 120] {
        let series = vec![aggregate(&minutes, interval_min)];
        let steps_per_day = 24 * 60 / interval_min;
        let spec = WindowSpec { window: steps_per_day, horizon: 1 };
        group.bench_with_input(
            BenchmarkId::new("ensemble_train", format!("{interval_min}min")),
            &series,
            |b, series| {
                b.iter(|| {
                    let mut lr = qb_forecast::LinearRegression::default();
                    lr.fit(series, spec).expect("fit");
                    let cfg = qb_forecast::RnnConfig {
                        epochs: 5,
                        patience: 5,
                        ..qb_forecast::RnnConfig::default()
                    };
                    let mut rnn = qb_forecast::Rnn::new(cfg);
                    rnn.fit(series, spec).expect("fit");
                    (lr, rnn)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intervals);
criterion_main!(benches);
