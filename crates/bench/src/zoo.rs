//! The model zoo: one constructor per paper model, at quick or
//! paper-faithful effort.

use qb_forecast::{
    Arma, Fnn, Forecaster, KernelRegression, LinearRegression, Psrnn, Rnn, RnnConfig,
};

use crate::Effort;

/// The six standalone models of Table 3, in the paper's order.
pub const STANDALONE: [&str; 6] = ["LR", "KR", "ARMA", "FNN", "RNN", "PSRNN"];

/// All eight rows of Figure 7 (standalone + composites).
pub const ALL_MODELS: [&str; 8] =
    ["LR", "KR", "ARMA", "FNN", "RNN", "PSRNN", "ENSEMBLE", "HYBRID"];

/// RNN settings per effort. `Full` is the paper architecture; `Quick`
/// shrinks it for smoke runs.
pub fn rnn_config(effort: Effort) -> RnnConfig {
    match effort {
        Effort::Full => RnnConfig { epochs: 60, ..RnnConfig::default() },
        Effort::Quick => RnnConfig {
            epochs: 15,
            hidden: 10,
            embedding: 8,
            patience: 5,
            ..RnnConfig::default()
        },
    }
}

/// Builds one standalone model by name.
///
/// # Panics
/// Panics on an unknown model name.
pub fn make_model(name: &str, effort: Effort) -> Box<dyn Forecaster> {
    match name {
        "LR" => Box::new(LinearRegression::default()),
        "KR" => Box::new(KernelRegression::default()),
        "ARMA" => Box::new(Arma::default()),
        "FNN" => {
            let mut cfg = qb_forecast::fnn::FnnConfig::default();
            if effort.is_quick() {
                cfg.epochs = 25;
                cfg.hidden = 16;
            }
            Box::new(Fnn::new(cfg))
        }
        "RNN" => Box::new(Rnn::new(rnn_config(effort))),
        "PSRNN" => {
            let mut cfg = qb_forecast::psrnn::PsrnnConfig::default();
            if effort.is_quick() {
                cfg.epochs = 10;
                cfg.state_dim = 10;
            }
            Box::new(Psrnn::new(cfg))
        }
        other => panic!("unknown model `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_builds_every_standalone_model() {
        for name in STANDALONE {
            let m = make_model(name, Effort::Quick);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        make_model("GPT", Effort::Quick);
    }
}
