//! Figures 1, 3, 5, 6 and the Appendix A sensitivity study (Figures 13–14).

use qb5000::Qb5000Config;
use qb_forecast::WindowSpec;
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::Workload;

use crate::eval::fit_and_roll;
use crate::exp_tables::standard_run;
use crate::pipeline_run::{run_pipeline, RunOptions};
use crate::{write_csv, Effort};

const WORKLOADS: [Workload; 3] = [Workload::Admissions, Workload::BusTracker, Workload::Mooc];

/// Figure 1 — the three workload patterns, as per-minute /
/// cumulative-distinct series.
pub fn fig1(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: Workload Patterns\n");

    // (a) BusTracker cycles over 72 h, queries/min.
    let run = run_pipeline(RunOptions::new(
        Workload::BusTracker,
        3,
        if effort.is_quick() { 0.05 } else { 0.3 },
    ));
    let series = run.total_series(0, 3 * MINUTES_PER_DAY, Interval::TEN_MINUTES);
    let rows: Vec<String> =
        series.iter().enumerate().map(|(i, v)| format!("{},{v:.1}", i * 10)).collect();
    if let Ok(p) = write_csv("fig1a_bustracker_cycles.csv", "minute,queries_per_10min", &rows) {
        out.push_str(&format!("  (a) cycles series written to {p}\n"));
    }
    let peak = series.iter().copied().fold(0.0f64, f64::max);
    let trough = series.iter().copied().fold(f64::INFINITY, f64::min);
    out.push_str(&format!("      72h series: peak {peak:.0}/10min, trough {trough:.0}/10min, peak/trough {:.1}x\n", peak / trough.max(1.0)));

    // (b) Admissions growth into the Dec 15 deadline (final week).
    let start = 341 * MINUTES_PER_DAY; // Dec 8
    let run = run_pipeline(
        RunOptions::new(Workload::Admissions, 8, if effort.is_quick() { 0.05 } else { 0.3 })
            .starting_at(start),
    );
    let series = run.total_series(start, start + 8 * MINUTES_PER_DAY, Interval::HOUR);
    let rows: Vec<String> =
        series.iter().enumerate().map(|(i, v)| format!("{i},{v:.1}")).collect();
    if let Ok(p) = write_csv("fig1b_admissions_growth.csv", "hour,queries_per_hour", &rows) {
        out.push_str(&format!("  (b) growth series written to {p}\n"));
    }
    let first_day: f64 = series[..24].iter().sum();
    let last_day: f64 = series[series.len() - 48..series.len() - 24].iter().sum();
    out.push_str(&format!(
        "      week into deadline: day-1 volume {first_day:.0}, deadline-day volume {last_day:.0} ({:.1}x growth)\n",
        last_day / first_day.max(1.0)
    ));

    // (c) MOOC workload evolution: cumulative distinct templates by day.
    let run = run_pipeline(RunOptions::new(
        Workload::Mooc,
        if effort.is_quick() { 10 } else { 40 },
        if effort.is_quick() { 0.05 } else { 0.2 },
    ));
    let rows: Vec<String> = run
        .daily
        .iter()
        .map(|d| format!("{},{}", d.day, d.num_templates))
        .collect();
    if let Ok(p) = write_csv("fig1c_mooc_evolution.csv", "day,distinct_templates", &rows) {
        out.push_str(&format!("  (c) evolution series written to {p}\n"));
    }
    let first = run.daily.first().map_or(0, |d| d.num_templates);
    let last = run.daily.last().map_or(0, |d| d.num_templates);
    out.push_str(&format!("      distinct templates: day 1 = {first}, final day = {last}\n"));
    out
}

/// Figure 3 — largest-cluster center and its top member templates.
pub fn fig3(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 3: Arrival Rate History (BusTracker largest cluster)\n");
    let run = standard_run(Workload::BusTracker, effort);
    let Some(largest) = run.bot.tracked_clusters().first().cloned() else {
        return out + "  no clusters tracked\n";
    };
    let center = run.bot.cluster_series(&largest, run.start, run.end, Interval::HOUR);
    let center_avg: Vec<f64> =
        center.iter().map(|v| v / largest.members.len() as f64).collect();

    let mut rows = Vec::new();
    let mut members = largest.members.clone();
    members.truncate(4);
    for (h, c) in center_avg.iter().enumerate() {
        let mut cells = vec![h.to_string(), format!("{c:.1}")];
        for &m in &members {
            let s = run.bot.preprocessor().template_series(
                m,
                run.start + h as i64 * 60,
                run.start + (h as i64 + 1) * 60,
                Interval::HOUR,
            );
            cells.push(format!("{:.1}", s.first().copied().unwrap_or(0.0)));
        }
        rows.push(cells.join(","));
    }
    if let Ok(p) = write_csv("fig3_cluster_center.csv", "hour,center,q1,q2,q3,q4", &rows) {
        out.push_str(&format!("  center + top-4 member series written to {p}\n"));
    }
    out.push_str(&format!(
        "  largest cluster: {} members, volume {:.0}; members share the daily cycle\n",
        largest.members.len(),
        largest.volume
    ));
    out
}

/// Figure 5 — coverage ratio of the top-1..5 clusters per workload.
pub fn fig5(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 5: Cluster Coverage (avg over days)\n");
    out.push_str("  workload     k=1     k=2     k=3     k=4     k=5\n");
    for &w in &WORKLOADS {
        let run = standard_run(w, effort);
        let mut avg = [0.0f64; 5];
        for d in &run.daily {
            for k in 0..5 {
                avg[k] += d.coverage[k];
            }
        }
        for a in &mut avg {
            *a /= run.daily.len().max(1) as f64;
        }
        out.push_str(&format!(
            "  {:<11} {:.3}   {:.3}   {:.3}   {:.3}   {:.3}\n",
            w.name(),
            avg[0],
            avg[1],
            avg[2],
            avg[3],
            avg[4]
        ));
    }
    out
}

/// Figure 6 — day-over-day changes among the five largest clusters.
pub fn fig6(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 6: Cluster Change (days with N changed clusters among top-5, %)\n");
    out.push_str("  workload       0       1       2       3      4+\n");
    for &w in &WORKLOADS {
        let run = standard_run(w, effort);
        let mut histogram = [0usize; 5];
        for pair in run.daily.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            // A top-5 cluster "changed" if its member set is absent the
            // next day (allowing identity via identical member sets).
            let changed = a
                .top5_members
                .iter()
                .filter(|m| !b.top5_members.contains(m))
                .count()
                .min(4);
            histogram[changed] += 1;
        }
        let days = histogram.iter().sum::<usize>().max(1) as f64;
        out.push_str(&format!(
            "  {:<11} {:>6.0}% {:>6.0}% {:>6.0}% {:>6.0}% {:>6.0}%\n",
            w.name(),
            100.0 * histogram[0] as f64 / days,
            100.0 * histogram[1] as f64 / days,
            100.0 * histogram[2] as f64 / days,
            100.0 * histogram[3] as f64 / days,
            100.0 * histogram[4] as f64 / days,
        ));
    }
    out
}

/// Figures 13 & 14 — sensitivity of coverage and accuracy to ρ.
pub fn fig13_14(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figures 13-14: Sensitivity to similarity threshold rho\n");
    out.push_str("  workload    rho   coverage(top3)  1h-MSE(log)\n");
    let rhos = [0.5, 0.6, 0.7, 0.8, 0.9];
    for &w in &WORKLOADS {
        for &rho in &rhos {
            let mut qb = Qb5000Config::default();
            qb.clusterer.rho = rho;
            qb.max_clusters = 3;
            qb.coverage_target = 2.0; // always take 3
            let days = if effort.is_quick() { 4 } else { 10 };
            let scale = if effort.is_quick() { 0.05 } else { 0.2 };
            let start = if w == Workload::Admissions { 310 * MINUTES_PER_DAY } else { 0 };
            let mut opts = RunOptions::new(w, days, scale).starting_at(start);
            opts.qb = qb;
            let run = run_pipeline(opts);
            let coverage =
                run.daily.iter().map(|d| d.coverage[2]).sum::<f64>() / run.daily.len().max(1) as f64;

            // 1-hour-horizon LR accuracy on the top-3 clusters.
            let series = run.cluster_series(run.start, run.end, Interval::HOUR);
            let mse = if !series.is_empty() && series[0].len() >= 48 {
                let spec = WindowSpec { window: 24, horizon: 1 };
                let test_start = series[0].len() - series[0].len() / 5;
                let mut lr = qb_forecast::LinearRegression::default();
                match fit_and_roll(&mut lr, &series, spec, test_start) {
                    Ok(pred) => {
                        let (actual, _) =
                            qb_forecast::rolling_forecast(&lr, &series, spec, test_start);
                        let per: Vec<f64> = actual
                            .iter()
                            .zip(&pred)
                            .filter(|(a, _)| !a.is_empty())
                            .map(|(a, p)| qb_timeseries::mse_log_space(a, p))
                            .collect();
                        per.iter().sum::<f64>() / per.len().max(1) as f64
                    }
                    Err(_) => f64::NAN,
                }
            } else {
                f64::NAN
            };
            out.push_str(&format!(
                "  {:<11} {rho:.1}   {coverage:.3}           {mse:.3}\n",
                w.name()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_coverage_high_for_topk() {
        let s = fig5(Effort::Quick);
        assert!(s.contains("BusTracker"), "{s}");
    }

    #[test]
    fn fig6_histogram_rows() {
        let s = fig6(Effort::Quick);
        assert!(s.contains('%'));
    }
}
