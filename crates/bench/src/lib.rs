//! # qb-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the QB5000 paper's evaluation (§7 + appendices). The `repro` binary
//! dispatches one subcommand per artifact; the Criterion benches measure
//! the performance-sensitive components (Table 4, Figure 10b).
//!
//! Absolute numbers differ from the paper (synthetic traces, a simulated
//! DBMS, CPU-only models — see DESIGN.md), but each experiment reproduces
//! the paper's *shape*: which model wins at which horizon, how coverage
//! scales with cluster count, where AUTO overtakes STATIC, and so on.
//! EXPERIMENTS.md records paper-vs-measured values side by side.

pub mod eval;
pub mod exp_ablations;
pub mod exp_clustering;
pub mod exp_forecast;
pub mod exp_index;
pub mod exp_tables;
pub mod pipeline_run;
pub mod zoo;

/// Effort level: `Quick` shrinks traces and training epochs so the full
/// suite finishes in minutes; `Full` uses the paper-faithful settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    Quick,
    Full,
}

impl Effort {
    pub fn is_quick(self) -> bool {
        matches!(self, Effort::Quick)
    }
}

/// Formats a table row with fixed-width columns for terminal output.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Writes a CSV file under `crates/bench/results/`, creating the directory
/// if needed; returns the path written. Errors are surfaced to the caller
/// (the repro binary prints-and-continues).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<String> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(&path, body)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
