//! Ablations of QB5000's design decisions (`repro ablations`).
//!
//! Each ablation isolates one choice the paper argues for and measures the
//! alternative:
//!
//! 1. **Joint vs. independent models** — §7.2 trains one model jointly over
//!    all clusters "which improves the prediction accuracy" via information
//!    sharing. We compare joint LR against per-cluster LRs.
//! 2. **Equal vs. validation-weighted ensemble** — §6.1 rejected weighted
//!    averaging ("that led to overfitting and generated worse results").
//! 3. **Arrival-rate vs. logical clustering features, forecast quality** —
//!    §7.7 attributes AUTO-LOGICAL's loss partly to "templates within the
//!    same logical feature cluster may have multiple arrival rate
//!    patterns; this makes it more difficult for the Forecaster".
//! 4. **Semantic folding** — §4's equivalence heuristic; measures how many
//!    extra templates the tracker carries without it.
//! 5. **Adaptive shift trigger** — our implementation of §5.2's deferred
//!    future work, measured on the churny MOOC trace.

use qb5000::{FeatureMode, Qb5000Config, QueryBot5000};
use qb_clusterer::SimilarityMetric;
use qb_forecast::WindowSpec;
use qb_preprocessor::PreProcessorConfig;
use qb_timeseries::{mse_log_space, Interval};
use qb_workloads::{TraceConfig, Workload};

use crate::eval::fit_and_roll;
use crate::pipeline_run::{run_pipeline, RunOptions};
use crate::Effort;

fn mse_of(actual: &[Vec<f64>], pred: &[Vec<f64>]) -> f64 {
    let per: Vec<f64> = actual
        .iter()
        .zip(pred)
        .filter(|(a, _)| !a.is_empty())
        .map(|(a, p)| mse_log_space(a, p))
        .collect();
    per.iter().sum::<f64>() / per.len().max(1) as f64
}

/// Ablation 1: joint multi-cluster LR vs. one LR per cluster.
fn joint_vs_independent(effort: Effort) -> String {
    let mut out = String::from("Ablation 1: joint vs. per-cluster models (§7.2)\n");
    let days = if effort.is_quick() { 10 } else { 21 };
    let mut opts = RunOptions::new(Workload::BusTracker, days, 0.05);
    opts.qb.max_clusters = 4;
    opts.qb.coverage_target = 2.0;
    let run = run_pipeline(opts);
    let series = run.cluster_series(run.start, run.end, Interval::HOUR);
    if series.len() < 2 {
        return out + "  (needs ≥2 clusters)\n";
    }
    let len = series[0].len();
    for horizon in [1usize, 24] {
        let spec = WindowSpec { window: 24, horizon };
        let test_start = (len - len / 5).max(spec.min_len() + 1);

        let mut joint = qb_forecast::LinearRegression::default();
        let joint_pred = fit_and_roll(&mut joint, &series, spec, test_start).expect("joint");
        let (actual, _) = qb_forecast::rolling_forecast(&joint, &series, spec, test_start);

        // Independent: one single-cluster model per cluster.
        let mut indep_pred: Vec<Vec<f64>> = Vec::new();
        for s in &series {
            let single = vec![s.clone()];
            let mut m = qb_forecast::LinearRegression::default();
            let p = fit_and_roll(&mut m, &single, spec, test_start).expect("indep");
            indep_pred.push(p.into_iter().next().expect("one cluster"));
        }
        out.push_str(&format!(
            "  horizon {horizon:>3}h: joint MSE(log) {:.4} vs independent {:.4}\n",
            mse_of(&actual, &joint_pred),
            mse_of(&actual, &indep_pred),
        ));
    }
    out.push_str("  (paper argues joint training shares information across clusters; on\n");
    out.push_str("   these synthetic traces the clusters are nearly independent, so the\n");
    out.push_str("   joint model's wider input mostly adds variance — the benefit needs\n");
    out.push_str("   genuinely correlated clusters, as in the real traces)\n");
    out
}

/// Ablation 2: equal-weight vs. validation-weighted ensemble.
fn equal_vs_weighted_ensemble(effort: Effort) -> String {
    let mut out = String::from("Ablation 2: equal vs. validation-weighted ensemble (§6.1)\n");
    let days = if effort.is_quick() { 10 } else { 21 };
    let mut opts = RunOptions::new(Workload::BusTracker, days, 0.05);
    opts.qb.max_clusters = 3;
    opts.qb.coverage_target = 2.0;
    let run = run_pipeline(opts);
    let series = run.cluster_series(run.start, run.end, Interval::HOUR);
    let len = series[0].len();
    let spec = WindowSpec { window: 24, horizon: 24 };
    let test_start = (len - len / 5).max(spec.min_len() + 1);

    let rnn_cfg = crate::zoo::rnn_config(effort);
    let mut equal = qb_forecast::Ensemble::new(rnn_cfg.clone());
    let equal_pred = fit_and_roll(&mut equal, &series, spec, test_start).expect("equal");
    let (actual, _) = qb_forecast::rolling_forecast(&equal, &series, spec, test_start);

    let mut weighted = qb_forecast::WeightedEnsemble::new(rnn_cfg);
    let weighted_pred =
        fit_and_roll(&mut weighted, &series, spec, test_start).expect("weighted");

    out.push_str(&format!(
        "  equal weights MSE(log) {:.4} | validation-weighted {:.4} (w_lr = {:.2})\n",
        mse_of(&actual, &equal_pred),
        mse_of(&actual, &weighted_pred),
        weighted.weight_lr(),
    ));
    out.push_str("  (paper rejected weighting: derived weights overfit the validation window)\n");
    out
}

/// Ablation 3: forecastability of arrival-rate vs. logical clusters.
fn feature_forecastability(effort: Effort) -> String {
    let mut out =
        String::from("Ablation 3: arrival-rate vs. logical clustering, forecast MSE (§7.7)\n");
    let days = if effort.is_quick() { 10 } else { 21 };
    for (label, mode) in
        [("arrival-rate", FeatureMode::ArrivalRate), ("logical", FeatureMode::Logical)]
    {
        let mut qb = Qb5000Config {
            feature_mode: mode,
            max_clusters: 3,
            coverage_target: 2.0,
            ..Qb5000Config::default()
        };
        if mode == FeatureMode::Logical {
            qb.clusterer.metric = SimilarityMetric::InverseL2;
            qb.clusterer.rho = 0.30;
        }
        let mut opts = RunOptions::new(Workload::BusTracker, days, 0.05);
        opts.qb = qb;
        let run = run_pipeline(opts);
        let series = run.cluster_series(run.start, run.end, Interval::HOUR);
        if series.is_empty() {
            out.push_str(&format!("  {label:<12}: no clusters\n"));
            continue;
        }
        let len = series[0].len();
        let spec = WindowSpec { window: 24, horizon: 1 };
        let test_start = (len - len / 5).max(spec.min_len() + 1);
        let mut lr = qb_forecast::LinearRegression::default();
        let pred = fit_and_roll(&mut lr, &series, spec, test_start).expect("fit");
        let (actual, _) = qb_forecast::rolling_forecast(&lr, &series, spec, test_start);
        out.push_str(&format!(
            "  {label:<12}: {} clusters, 1h-horizon MSE(log) {:.4}\n",
            series.len(),
            mse_of(&actual, &pred),
        ));
    }
    out.push_str("  (caveat: a logical cluster that mixes day- and night-shaped templates\n");
    out.push_str("   sums to a flatter, easier-to-forecast series — but the forecast is\n");
    out.push_str("   for the wrong unit of work, which is why AUTO-LOGICAL still loses\n");
    out.push_str("   the end-to-end index experiment of Figures 11-12)\n");
    out
}

/// Ablation 4: semantic folding on/off — template counts.
fn semantic_folding(effort: Effort) -> String {
    let mut out = String::from("Ablation 4: semantic-equivalence folding (§4)\n");
    let days = if effort.is_quick() { 2 } else { 7 };
    for (label, folding) in [("folding on", true), ("folding off", false)] {
        let mut count_total = 0usize;
        for w in [Workload::Admissions, Workload::BusTracker, Workload::Mooc] {
            let mut bot = QueryBot5000::new(Qb5000Config {
                preprocessor: PreProcessorConfig {
                    semantic_folding: folding,
                    ..PreProcessorConfig::default()
                },
                ..Qb5000Config::default()
            });
            let cfg = TraceConfig { start: 0, days, scale: 0.03, seed: 0xAB };
            for ev in w.generator(cfg) {
                let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
            }
            count_total += bot.preprocessor().num_templates();
        }
        out.push_str(&format!("  {label:<12}: {count_total} tracked templates across 3 workloads\n"));
    }
    out.push_str("  (folding keeps template counts minimal; the traces' generated SQL is\n");
    out.push_str("   already canonical, so most folding wins come from conjunct reordering)\n");
    out
}

/// Ablation 5: fixed vs. adaptive shift trigger on the churny MOOC trace.
fn adaptive_trigger(effort: Effort) -> String {
    let mut out = String::from("Ablation 5: fixed vs. adaptive workload-shift trigger (§5.2 future work)\n");
    let days = if effort.is_quick() { 20 } else { 40 };
    for (label, adaptive) in [("fixed 0.2", false), ("adaptive", true)] {
        let mut qb = Qb5000Config::default();
        qb.clusterer.adaptive_trigger = adaptive;
        let mut bot = QueryBot5000::new(qb);
        let cfg = TraceConfig { start: 0, days, scale: 0.03, seed: 0xAD };
        let mut next_daily = qb_timeseries::MINUTES_PER_DAY;
        for ev in Workload::Mooc.generator(cfg) {
            if ev.minute >= next_daily {
                bot.update_clusters(next_daily);
                next_daily += qb_timeseries::MINUTES_PER_DAY;
            }
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        out.push_str(&format!(
            "  {label:<10}: {} early re-clusterings over {days} days of MOOC churn\n",
            bot.shift_triggers,
        ));
    }
    out.push_str("  (each early re-clustering forces model retraining — fewer is cheaper,\n");
    out.push_str("   as long as genuine phase switches still fire; see clusterer tests)\n");
    out
}

/// All five ablations.
pub fn ablations(effort: Effort) -> String {
    let mut out = String::from("=== Design-decision ablations (DESIGN.md) ===\n\n");
    out.push_str(&joint_vs_independent(effort));
    out.push('\n');
    out.push_str(&equal_vs_weighted_ensemble(effort));
    out.push('\n');
    out.push_str(&feature_forecastability(effort));
    out.push('\n');
    out.push_str(&semantic_folding(effort));
    out.push('\n');
    out.push_str(&adaptive_trigger(effort));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_folding_section_runs() {
        let s = semantic_folding(Effort::Quick);
        assert!(s.contains("folding on"));
        assert!(s.contains("folding off"));
    }
}
