//! Figures 7, 8, 9, 10, 15, 16, 17 — the forecasting experiments.

use qb_forecast::WindowSpec;
use qb_linalg::{Matrix, Pca};
use qb_timeseries::{mse_log_space, Interval, MINUTES_PER_DAY};
use qb_workloads::Workload;

use crate::eval::{evaluate_all_models, fit_and_roll};
use crate::pipeline_run::{run_pipeline, PipelineRun, RunOptions};
use crate::zoo::{rnn_config, ALL_MODELS};
use crate::{write_csv, Effort};

/// The paper's seven prediction horizons, in hours.
pub const HORIZONS_HOURS: [usize; 7] = [1, 12, 24, 48, 72, 120, 168];
pub const HORIZON_LABELS: [&str; 7] =
    ["1 Hour", "12 Hour", "1 Day", "2 Days", "3 Days", "5 Days", "1 Week"];

fn forecast_run(w: Workload, effort: Effort) -> PipelineRun {
    let days = if effort.is_quick() { 14 } else { 28 };
    let scale = if effort.is_quick() { 0.05 } else { 0.2 };
    let start = match w {
        Workload::Admissions => 300 * MINUTES_PER_DAY,
        _ => 0,
    };
    let mut opts = RunOptions::new(w, days, scale).starting_at(start);
    // Model several clusters jointly (§7.2: three for Admissions /
    // BusTracker, five for MOOC); the synthetic largest cluster covers more
    // volume than the real traces', so take the top-k outright.
    opts.qb.max_clusters = 5;
    opts.qb.coverage_target = 2.0;
    run_pipeline(opts)
}

/// Figure 7 — MSE (log space) of all eight models across horizons and
/// workloads.
pub fn fig7(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 7: Forecasting Model Evaluation (MSE in log space; lower is better)\n");
    for w in [Workload::Admissions, Workload::BusTracker, Workload::Mooc] {
        let run = forecast_run(w, effort);
        let series = run.cluster_series(run.start, run.end, Interval::HOUR);
        if series.is_empty() {
            out.push_str(&format!("  {}: no clusters tracked\n", w.name()));
            continue;
        }
        let len = series[0].len();
        out.push_str(&format!("  -- {} ({} clusters, {len} hourly steps) --\n", w.name(), series.len()));
        out.push_str(&format!("  {:<10}", "model"));
        for l in HORIZON_LABELS {
            out.push_str(&format!("{l:>9}"));
        }
        out.push('\n');

        let mut table: Vec<Vec<f64>> = vec![Vec::new(); ALL_MODELS.len()];
        for &h in &HORIZONS_HOURS {
            let spec = WindowSpec { window: 24, horizon: h };
            // Score the final fifth of the series, but leave room for the
            // window + horizon.
            let min_start = spec.window + h;
            let test_start = (len - len / 5).max(min_start + 1);
            if test_start + 1 >= len {
                for r in &mut table {
                    r.push(f64::NAN);
                }
                continue;
            }
            let eval = evaluate_all_models(&series, spec, test_start, effort, 1.5);
            for (mi, m) in ALL_MODELS.iter().enumerate() {
                table[mi].push(eval.mse(m));
            }
        }
        for (mi, m) in ALL_MODELS.iter().enumerate() {
            out.push_str(&format!("  {m:<10}"));
            for v in &table[mi] {
                out.push_str(&format!("{v:>9.2}"));
            }
            out.push('\n');
        }
        // Who-wins summary per horizon.
        out.push_str("  best:     ");
        for hi in 0..HORIZONS_HOURS.len() {
            let best = ALL_MODELS
                .iter()
                .enumerate()
                .filter(|(mi, _)| table[*mi][hi].is_finite())
                .min_by(|a, b| table[a.0][hi].total_cmp(&table[b.0][hi]))
                .map_or("-", |(_, m)| m);
            out.push_str(&format!("{best:>9}"));
        }
        out.push('\n');
    }
    out
}

/// Figure 8 — actual vs. predicted for the BusTracker largest cluster at
/// 1-hour and 1-week horizons (HYBRID).
pub fn fig8(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 8: Prediction Results (BusTracker largest cluster)\n");
    let run = forecast_run(Workload::BusTracker, effort);
    let all = run.cluster_series(run.start, run.end, Interval::HOUR);
    let Some(largest) = all.first() else { return out + "  no clusters\n" };
    let series = vec![largest.clone()];
    let len = largest.len();

    for (label, horizon) in [("1-hour", 1usize), ("1-week", 168)] {
        let spec = WindowSpec { window: 24, horizon };
        let min_start = spec.window + horizon + 1;
        let test_start = (len - len / 4).max(min_start);
        if test_start + 8 >= len {
            out.push_str(&format!("  {label}: series too short for this horizon at quick effort\n"));
            continue;
        }
        let eval = evaluate_all_models(&series, spec, test_start, effort, 1.5);
        let actual = &eval.actual[0];
        let pred = &eval.predictions["HYBRID"][0];
        let rows: Vec<String> = actual
            .iter()
            .zip(pred)
            .enumerate()
            .map(|(i, (a, p))| format!("{i},{a:.1},{p:.1}"))
            .collect();
        let name = format!("fig8_{label}_horizon.csv");
        if let Ok(p) = write_csv(&name, "hour,actual,predicted", &rows) {
            out.push_str(&format!("  {label} horizon series written to {p}\n"));
        }
        out.push_str(&format!(
            "  {label} horizon: MSE(log) {:.3} over {} points\n",
            mse_log_space(actual, pred),
            actual.len()
        ));
    }
    out.push_str("  (expect 1-hour tighter than 1-week, both tracking the daily cycle)\n");
    out
}

/// Figure 9 + Appendix C (Figure 16) — spike prediction on the two-year
/// Admissions trace.
pub fn fig9_16(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 9: Spike Prediction (Admissions, annual deadlines)\n");

    // Trace spanning the end of year 1 through the end of year 2 so the
    // training data contains last year's Dec 1 / Dec 15 spikes.
    let start = 310 * MINUTES_PER_DAY; // Nov 6, year 1
    let days: u32 = if effort.is_quick() { 420 } else { 425 };
    let scale = if effort.is_quick() { 0.01 } else { 0.05 };
    let run = run_pipeline(RunOptions::new(Workload::Admissions, days, scale).starting_at(start));
    let end = run.end;
    let series = vec![run.total_series(start, end, Interval::HOUR)];
    let len = series[0].len();

    // Test window: Nov 15 (day 319 of year 2) through the trace end.
    let test_begin_day = 365 + 319;
    let test_start = ((test_begin_day * MINUTES_PER_DAY - start) / 60) as usize;
    if test_start + 200 >= len {
        return out + "  trace too short for the spike window\n";
    }
    let horizon = 168; // "identify workload spikes one week before they occur"
    let spec = WindowSpec { window: 24, horizon };

    // LR / RNN / ENSEMBLE with the daily window; KR with a three-week
    // window over the full history (§6.2).
    let mut preds: Vec<(&str, Vec<f64>)> = Vec::new();
    let mut lr = qb_forecast::LinearRegression::default();
    let lr_pred = fit_and_roll(&mut lr, &series, spec, test_start).expect("fit LR");
    let mut rnn = qb_forecast::Rnn::new(rnn_config(effort));
    let rnn_pred = fit_and_roll(&mut rnn, &series, spec, test_start).expect("fit RNN");
    let ens: Vec<f64> = lr_pred[0]
        .iter()
        .zip(&rnn_pred[0])
        .map(|(a, b)| 0.5 * (a + b))
        .collect();
    let kr_window = 504.min(test_start - horizon - 2);
    let kr_spec = WindowSpec { window: kr_window, horizon };
    let mut kr = qb_forecast::KernelRegression::default();
    let kr_pred = fit_and_roll(&mut kr, &series, kr_spec, test_start).expect("fit KR");
    preds.push(("LR", lr_pred[0].clone()));
    preds.push(("RNN", rnn_pred[0].clone()));
    preds.push(("ENSEMBLE", ens.clone()));
    preds.push(("KR", kr_pred[0].clone()));

    let actual: Vec<f64> = series[0][test_start..].to_vec();
    let peak_actual = actual.iter().copied().fold(0.0f64, f64::max);
    let base_actual = actual.iter().sum::<f64>() / actual.len() as f64;
    out.push_str(&format!(
        "  test window: {} hourly points; actual peak {peak_actual:.0} vs mean {base_actual:.0} ({:.1}x)\n",
        actual.len(),
        peak_actual / base_actual.max(1.0)
    ));
    let mut csv_rows: Vec<String> = Vec::new();
    for (i, a) in actual.iter().enumerate() {
        let cells: Vec<String> = std::iter::once(format!("{i},{a:.0}"))
            .chain(preds.iter().map(|(_, p)| format!("{:.0}", p[i])))
            .collect();
        csv_rows.push(cells.join(","));
    }
    if let Ok(p) = write_csv("fig9_spikes.csv", "hour,actual,lr,rnn,ensemble,kr", &csv_rows) {
        out.push_str(&format!("  series written to {p}\n"));
    }
    for (name, p) in &preds {
        let peak_pred = p.iter().copied().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  {name:<9} predicted peak {peak_pred:>9.0}  ({:.0}% of actual peak)  MSE(log) {:.2}\n",
            100.0 * peak_pred / peak_actual.max(1.0),
            mse_log_space(&actual, p)
        ));
    }
    out.push_str("  (expect only KR to approach the actual peak — §7.3)\n");

    // --- Figure 16: HYBRID gamma sensitivity on the same data. ---
    out.push_str("\nFigure 16: HYBRID gamma sensitivity\n");
    for gamma in [1.0, 1.5, 2.0] {
        let hybrid: Vec<f64> = ens
            .iter()
            .zip(&kr_pred[0])
            .map(|(&e, &k)| if k > gamma * e { k } else { e })
            .collect();
        let overrides =
            ens.iter().zip(&kr_pred[0]).filter(|(&e, &k)| k > gamma * e).count();
        let peak = hybrid.iter().copied().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "  gamma={gamma:.1}: MSE(log) {:.2}, predicted peak {:.0}% of actual, KR overrides {overrides}/{}\n",
            mse_log_space(&actual, &hybrid),
            100.0 * peak / peak_actual.max(1.0),
            ens.len()
        ));
    }
    out
}

/// Figure 10 — prediction accuracy and training time vs. interval.
pub fn fig10(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 10: Prediction Interval Evaluation (BusTracker, ENSEMBLE)\n");
    let run = forecast_run(Workload::BusTracker, effort);
    let intervals = [
        ("10min", Interval::TEN_MINUTES),
        ("20min", Interval::TWENTY_MINUTES),
        ("30min", Interval::THIRTY_MINUTES),
        ("60min", Interval::HOUR),
        ("120min", Interval::TWO_HOURS),
    ];
    let horizons_hours = [1usize, 24, 72];
    out.push_str("  horizon  interval  MSE(log)  train_time\n");
    for &hh in &horizons_hours {
        for (label, interval) in intervals {
            let series = run.cluster_series(run.start, run.end, interval);
            if series.is_empty() {
                continue;
            }
            let steps_per_hour = (60 / interval.as_minutes()).max(1) as usize;
            let window = 24 * steps_per_hour; // one day
            let horizon = hh * steps_per_hour;
            let len = series[0].len();
            let min_start = window + horizon + 1;
            let test_start = (len - len / 6).max(min_start);
            if test_start + 4 >= len {
                out.push_str(&format!("  {hh:>4}h    {label:>6}   (series too short)\n"));
                continue;
            }
            let spec = WindowSpec { window, horizon };

            let t0 = std::time::Instant::now();
            let mut lr = qb_forecast::LinearRegression::default();
            let lr_pred = fit_and_roll(&mut lr, &series, spec, test_start).expect("LR fit");
            let mut rnn = qb_forecast::Rnn::new(rnn_config(effort));
            let rnn_pred = fit_and_roll(&mut rnn, &series, spec, test_start).expect("RNN fit");
            let train_time = t0.elapsed();

            let (actual, _) = qb_forecast::rolling_forecast(&lr, &series, spec, test_start);
            let mut per_cluster = Vec::new();
            for c in 0..series.len() {
                if actual[c].is_empty() {
                    continue;
                }
                let ens: Vec<f64> = lr_pred[c]
                    .iter()
                    .zip(&rnn_pred[c])
                    .map(|(a, b)| 0.5 * (a + b))
                    .collect();
                per_cluster.push(mse_log_space(&actual[c], &ens));
            }
            let mse = per_cluster.iter().sum::<f64>() / per_cluster.len().max(1) as f64;
            out.push_str(&format!(
                "  {hh:>4}h    {label:>6}   {mse:>7.3}   {train_time:>8.2?}\n"
            ));
        }
    }
    out.push_str("  (expect: shorter intervals -> lower MSE but longer training)\n");
    out
}

/// Figure 15 — PCA projection of the KR input space (Appendix B).
pub fn fig15(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 15: Input Space Time-Progress (Admissions, 3D PCA)\n");
    let start = 310 * MINUTES_PER_DAY;
    let days: u32 = if effort.is_quick() { 420 } else { 425 };
    let scale = if effort.is_quick() { 0.01 } else { 0.05 };
    let run = run_pipeline(RunOptions::new(Workload::Admissions, days, scale).starting_at(start));
    let total = run.total_series(start, run.end, Interval::HOUR);

    // Inputs: trailing 3-week windows (one per day to keep the point count
    // plottable), in log space like the models see them.
    let window = 504.min(total.len() / 3);
    let stride = 24;
    let mut rows = Vec::new();
    let mut day_of_point = Vec::new();
    let mut t = window;
    while t < total.len() {
        let w: Vec<f64> = total[t - window..t].iter().map(|v| v.ln_1p()).collect();
        rows.push(w);
        day_of_point.push((start / MINUTES_PER_DAY) + (t as i64 / 24));
        t += stride;
    }
    if rows.len() < 10 {
        return out + "  not enough windows\n";
    }
    let data = Matrix::from_rows(&rows);
    let pca = Pca::fit(&data, 3);
    let projected = pca.transform_all(&data);

    let csv: Vec<String> = (0..projected.rows())
        .map(|i| {
            let p = projected.row(i);
            let doy = day_of_point[i].rem_euclid(365);
            format!("{},{doy},{:.3},{:.3},{:.3}", day_of_point[i], p[0], p[1], p[2])
        })
        .collect();
    if let Ok(p) = write_csv("fig15_pca.csv", "abs_day,day_of_year,pc1,pc2,pc3", &csv) {
        out.push_str(&format!("  projected trajectory written to {p}\n"));
    }

    // Spike separation: mean distance of December points (day-of-year
    // 329–365: the deadline run-up) from the centroid of the others.
    let mut normal_centroid = vec![0.0; 3];
    let mut n_normal = 0usize;
    for i in 0..projected.rows() {
        let doy = day_of_point[i].rem_euclid(365);
        if !(329..=365).contains(&doy) {
            for (c, v) in normal_centroid.iter_mut().zip(projected.row(i)) {
                *c += v;
            }
            n_normal += 1;
        }
    }
    for c in &mut normal_centroid {
        *c /= n_normal.max(1) as f64;
    }
    let mut spike_d = 0.0;
    let mut n_spike = 0usize;
    let mut normal_d = 0.0;
    for i in 0..projected.rows() {
        let d = qb_linalg::l2_distance(projected.row(i), &normal_centroid);
        let doy = day_of_point[i].rem_euclid(365);
        if (329..=365).contains(&doy) {
            spike_d += d;
            n_spike += 1;
        } else {
            normal_d += d;
        }
    }
    let spike_d = spike_d / n_spike.max(1) as f64;
    let normal_d = normal_d / n_normal.max(1) as f64;
    out.push_str(&format!(
        "  mean distance from normal centroid: deadline-season points {spike_d:.2}, other points {normal_d:.2} ({:.1}x separation)\n",
        spike_d / normal_d.max(1e-9)
    ));
    out.push_str(&format!(
        "  explained variance (top 3): {:?}\n",
        pca.explained_variance().iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    ));
    out
}

/// Figure 17 — the noisy eight-phase composite workload (Appendix D).
pub fn fig17(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Figure 17: Noisy Workload Prediction (8 OLTP-Bench-style phases)\n");
    let scale = if effort.is_quick() { 0.2 } else { 0.5 };
    // 80 hours of trace; cluster every 4 hours to adapt across phases (the
    // shift trigger also fires on phase switches).
    let mut bot = qb5000::QueryBot5000::new(qb5000::Qb5000Config::default());
    let cfg = qb_workloads::TraceConfig { start: 0, days: 4, scale, seed: 0xA17 };
    let gen = qb_workloads::noisy::generator(cfg);
    let mut shift_count = 0u64;
    for ev in gen {
        let before = bot.shift_triggers;
        let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        shift_count += bot.shift_triggers - before;
    }
    let end = 80 * 60;
    bot.update_clusters(end);
    out.push_str(&format!(
        "  {} templates across phases; {} shift-triggered re-clusterings\n",
        bot.preprocessor().num_templates(),
        shift_count
    ));

    // Predict total volume at a one-hour horizon on one-minute intervals.
    let total: Vec<f64> = {
        let n = end as usize;
        let mut acc = vec![0.0; n];
        for e in bot.preprocessor().templates() {
            let s = e.history.dense_series(0, end, Interval::MINUTE);
            for (a, v) in acc.iter_mut().zip(s) {
                *a += v;
            }
        }
        acc
    };
    let series = vec![total];
    let spec = WindowSpec { window: 120, horizon: 60 };
    let test_start = series[0].len() / 2;
    let mut lr = qb_forecast::LinearRegression::default();
    let pred = fit_and_roll(&mut lr, &series, spec, test_start).expect("fit");
    let (actual, _) = qb_forecast::rolling_forecast(&lr, &series, spec, test_start);
    let rows: Vec<String> = actual[0]
        .iter()
        .zip(&pred[0])
        .enumerate()
        .map(|(i, (a, p))| format!("{},{a:.0},{p:.0}", test_start + i))
        .collect();
    if let Ok(p) = write_csv("fig17_noisy.csv", "minute,actual,predicted", &rows) {
        out.push_str(&format!("  series written to {p}\n"));
    }
    out.push_str(&format!(
        "  MSE(log) {:.2} over the second half (phases 4-8, including two unseen phase switches)\n",
        mse_log_space(&actual[0], &pred[0])
    ));
    out.push_str("  (expect the average level tracked per phase; switches and spikes missed briefly)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons_match_paper() {
        assert_eq!(HORIZONS_HOURS.len(), HORIZON_LABELS.len());
        assert_eq!(HORIZONS_HOURS[0], 1);
        assert_eq!(HORIZONS_HOURS[6], 168);
    }
}
