//! Figures 11 & 12 — the automatic index-selection experiment (§7.6) and
//! the AUTO-LOGICAL ablation (§7.7).

use qb5000::{ControllerConfig, IndexSelectionExperiment, Recorder, Strategy};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::Workload;

use crate::{write_csv, Effort};

fn config(workload: Workload, strategy: Strategy, effort: Effort) -> ControllerConfig {
    let quick = effort.is_quick();
    ControllerConfig::builder()
        .workload(workload)
        .strategy(strategy)
        .db_scale(if quick { 0.08 } else { 0.5 })
        .history_days(if quick { 3 } else { 14 })
        // The Admissions run must reach the next morning's review-season
        // traffic for the workload shift to land inside the window.
        .run_hours(if quick && workload != Workload::Admissions { 8 } else { 16 })
        .trace_scale(if quick { 0.03 } else { 0.08 })
        .index_budget(if quick { 5 } else { 20 })
        .build_period(60)
        .report_window(30)
        .run_start(match workload {
            // Admissions: start hours before the Dec 15 deadline so the
            // measured run crosses into review season — the workload shift
            // STATIC's history-built indexes cannot anticipate (§7.6).
            Workload::Admissions => 348 * MINUTES_PER_DAY + 18 * 60,
            _ => 21 * MINUTES_PER_DAY + 7 * 60,
        })
        .seed(0x1D7)
        .threads(qb_parallel::configured_threads())
        // Each strategy run gets its own recorder so the three parallel
        // experiments don't interleave their stage metrics.
        .recorder(Recorder::new())
        .build()
        .expect("bench controller config is valid by construction")
}

/// Runs one workload under all three strategies and renders the figure.
fn run_figure(figure: &str, workload: Workload, effort: Effort) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{figure}: Index Selection ({}; simulated engine — see DESIGN.md)\n",
        workload.name()
    ));
    let mut rows: Vec<String> = Vec::new();
    let mut header = String::from("minute");
    let mut final_lines = Vec::new();

    // The three strategies are independent end-to-end runs: fan them out
    // across the worker pool and collect in the fixed strategy order.
    let strategies = [Strategy::Static, Strategy::Auto, Strategy::AutoLogical];
    let all = qb_parallel::ThreadPool::default().map(strategies.to_vec(), |_, strategy| {
        IndexSelectionExperiment::new(config(workload, strategy, effort)).run()
    });
    for (strategy, result) in strategies.iter().zip(&all) {
        header.push_str(&format!(
            ",{}_qps,{}_p99ms",
            strategy.name().to_lowercase().replace('-', "_"),
            strategy.name().to_lowercase().replace('-', "_")
        ));
        final_lines.push(format!(
            "  {:<13} final throughput {:>10.0} qps | final p99 {:>7.3} ms | {} indexes | {} queries",
            strategy.name(),
            result.final_throughput(),
            result.final_latency(),
            result.indexes.len(),
            result.total_queries,
        ));
    }
    // Align samples by index (same bucketing across runs).
    let n = all.iter().map(|r| r.samples.len()).min().unwrap_or(0);
    for i in 0..n {
        let mut line = format!("{}", all[0].samples[i].minute);
        for r in &all {
            let s = &r.samples[i];
            line.push_str(&format!(",{:.0},{:.3}", s.throughput_qps, s.p99_latency_ms));
        }
        rows.push(line);
    }
    let file = format!("{}_{}.csv", figure.to_lowercase().replace(' ', ""), workload.name().to_lowercase());
    if let Ok(p) = write_csv(&file, &header, &rows) {
        out.push_str(&format!("  time series written to {p}\n"));
    }
    for l in final_lines {
        out.push_str(&l);
        out.push('\n');
    }
    // The paper's headline comparisons.
    let sta = &all[0];
    let auto = &all[1];
    let logical = &all[2];
    out.push_str(&format!(
        "  AUTO vs STATIC final throughput: {:+.0}%  |  AUTO vs AUTO-LOGICAL: {:+.0}%\n",
        100.0 * (auto.final_throughput() / sta.final_throughput().max(1e-9) - 1.0),
        100.0 * (auto.final_throughput() / logical.final_throughput().max(1e-9) - 1.0),
    ));
    let first_auto = auto.samples.first().map_or(0.0, |s| s.throughput_qps);
    out.push_str(&format!(
        "  AUTO improvement over its own start: {:.1}x throughput\n",
        auto.final_throughput() / first_auto.max(1e-9)
    ));
    // Observability: AUTO's stage timings/counters and the rolling
    // forecast-accuracy rows (Figure 7 style, log-space MSE).
    out.push_str("  AUTO pipeline metrics:\n");
    out.push_str(&auto.metrics.render_table());
    for acc in &auto.health.forecast_accuracy {
        out.push_str(&format!(
            "  forecast accuracy h{}: rolling MSE {} over {} settled predictions\n",
            acc.horizon_idx,
            acc.rolling_mse.map_or_else(|| "n/a".to_string(), |m| format!("{m:.4}")),
            acc.samples,
        ));
    }
    out
}

/// Figure 11 — Admissions (the paper's MySQL host).
pub fn fig11(effort: Effort) -> String {
    run_figure("Figure 11", Workload::Admissions, effort)
}

/// Figure 12 — BusTracker (the paper's PostgreSQL host).
pub fn fig12(effort: Effort) -> String {
    run_figure("Figure 12", Workload::BusTracker, effort)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_respects_effort() {
        let q = config(Workload::BusTracker, Strategy::Auto, Effort::Quick);
        let f = config(Workload::BusTracker, Strategy::Auto, Effort::Full);
        assert!(q.run_hours < f.run_hours);
        assert!(q.index_budget < f.index_budget);
    }
}
