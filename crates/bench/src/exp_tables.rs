//! Tables 1–4.

use qb_forecast::{Forecaster, WindowSpec};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::Workload;

use crate::pipeline_run::{run_pipeline, PipelineRun, RunOptions};
use crate::zoo::rnn_config;
use crate::{row, Effort};

const WORKLOADS: [Workload; 3] = [Workload::Admissions, Workload::BusTracker, Workload::Mooc];

fn trace_days(effort: Effort, w: Workload) -> u32 {
    if effort.is_quick() {
        4
    } else {
        // Capped at two weeks: enough for stable per-day statistics while
        // keeping the full suite tractable (the paper replays 58–507 days).
        w.paper_trace_days().min(14)
    }
}

fn trace_scale(effort: Effort) -> f64 {
    if effort.is_quick() {
        0.05
    } else {
        0.3
    }
}

/// Runs one workload through the pipeline at the chosen effort.
pub fn standard_run(w: Workload, effort: Effort) -> PipelineRun {
    let start = match w {
        // Put Admissions in the pre-deadline season so growth is visible.
        Workload::Admissions => 310 * MINUTES_PER_DAY,
        _ => 0,
    };
    run_pipeline(RunOptions::new(w, trace_days(effort, w), trace_scale(effort)).starting_at(start))
}

/// Table 1 — sample-workload summaries.
pub fn table1(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Sample Workloads (synthetic reproductions; paper values in EXPERIMENTS.md)\n");
    let widths = [26usize, 14, 14, 14];
    out.push_str(&row(
        &["".into(), "Admissions".into(), "BusTracker".into(), "MOOC".into()],
        &widths,
    ));
    out.push('\n');

    let runs: Vec<PipelineRun> = WORKLOADS.iter().map(|&w| standard_run(w, effort)).collect();
    let days: Vec<f64> =
        WORKLOADS.iter().map(|&w| trace_days(effort, w) as f64).collect();

    let metric = |label: &str, f: &dyn Fn(&PipelineRun, f64) -> String, out: &mut String| {
        let mut cells = vec![label.to_string()];
        for (r, d) in runs.iter().zip(&days) {
            cells.push(f(r, *d));
        }
        out.push_str(&row(&cells, &widths));
        out.push('\n');
    };

    // Schema-size row uses the workload constants (the generators model a
    // representative subset of each application's schema).
    let mut cells = vec!["Schema tables (paper)".to_string()];
    for w in WORKLOADS {
        cells.push(w.num_tables().to_string());
    }
    out.push_str(&row(&cells, &widths));
    out.push('\n');
    metric("Trace length (days)", &|_r, d| format!("{d:.0}"), &mut out);
    metric("Avg queries per day", &|r, d| {
        format!("{:.0}", r.total_queries as f64 / d)
    }, &mut out);
    for (label, pick) in [
        ("SELECT", 0usize),
        ("INSERT", 1),
        ("UPDATE", 2),
        ("DELETE", 3),
    ] {
        metric(&format!("Num {label} [%]"), &|r, _| {
            let s = r.bot.preprocessor().stats();
            let v = [s.selects, s.inserts, s.updates, s.deletes][pick];
            format!("{v} [{:.2}%]", 100.0 * v as f64 / s.total_queries.max(1) as f64)
        }, &mut out);
    }
    out
}

/// Table 2 — workload reduction: queries → templates → clusters.
pub fn table2(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Workload Reduction\n");
    let widths = [26usize, 14, 14, 14];
    out.push_str(&row(
        &["".into(), "Admissions".into(), "BusTracker".into(), "MOOC".into()],
        &widths,
    ));
    out.push('\n');

    let runs: Vec<PipelineRun> = WORKLOADS.iter().map(|&w| standard_run(w, effort)).collect();
    let rows_spec: [(&str, Box<dyn Fn(&PipelineRun) -> String>); 4] = [
        ("Total queries", Box::new(|r: &PipelineRun| r.total_queries.to_string())),
        (
            "Total templates",
            Box::new(|r: &PipelineRun| r.bot.preprocessor().num_templates().to_string()),
        ),
        (
            "Avg clusters per day",
            Box::new(|r: &PipelineRun| {
                let avg = r.daily.iter().map(|d| d.num_clusters).sum::<usize>() as f64
                    / r.daily.len().max(1) as f64;
                format!("{avg:.1}")
            }),
        ),
        (
            "Reduction ratio",
            Box::new(|r: &PipelineRun| {
                let clusters = r.daily.last().map_or(1, |d| d.num_clusters).max(1);
                format!("{:.0}x", r.total_queries as f64 / clusters as f64)
            }),
        ),
    ];
    for (label, f) in rows_spec {
        let mut cells = vec![label.to_string()];
        for r in &runs {
            cells.push(f(r));
        }
        out.push_str(&row(&cells, &widths));
        out.push('\n');
    }
    out
}

/// Table 3 — forecasting-model properties (static, from `qb-forecast`).
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("Table 3: Forecasting Models\n");
    let props = qb_forecast::model_properties();
    let widths = [8usize, 6, 6, 6, 6, 6, 6];
    let mut header = vec!["".to_string()];
    header.extend(props.iter().map(|p| p.name.to_string()));
    out.push_str(&row(&header, &widths));
    out.push('\n');
    for (label, get) in [
        ("Linear", Box::new(|p: &qb_forecast::ModelProperties| p.linear) as Box<dyn Fn(_) -> bool>),
        ("Memory", Box::new(|p: &qb_forecast::ModelProperties| p.memory)),
        ("Kernel", Box::new(|p: &qb_forecast::ModelProperties| p.kernel)),
    ] {
        let mut cells = vec![label.to_string()];
        cells.extend(props.iter().map(|p| if get(p) { "yes" } else { "no" }.to_string()));
        out.push_str(&row(&cells, &widths));
        out.push('\n');
    }
    out
}

/// Table 4 — computation & storage overhead of each component.
pub fn table4(effort: Effort) -> String {
    let mut out = String::new();
    out.push_str("Table 4: Computation & Storage Overhead\n");

    for &w in &WORKLOADS {
        let run = standard_run(w, effort);
        let per_query_us =
            run.ingest_wall.as_micros() as f64 / run.total_queries.max(1) as f64;
        let cluster_per_day_ms =
            run.cluster_wall.as_millis() as f64 / run.daily.len().max(1) as f64;
        let stored: usize = run
            .bot
            .preprocessor()
            .templates()
            .iter()
            .map(|e| e.history.stored_entries())
            .sum();
        out.push_str(&format!(
            "  {:<11} Pre-Processor {per_query_us:8.2} us/query | Clusterer {cluster_per_day_ms:8.1} ms/day | history entries {stored}\n",
            w.name(),
        ));

        // Model training time/size on this workload's top clusters.
        let end = run.end;
        let start = run.start;
        let series = run.cluster_series(start, end, Interval::HOUR);
        if series.is_empty() || series[0].len() < 60 {
            continue;
        }
        let spec = WindowSpec { window: 24, horizon: 1 };

        let t0 = std::time::Instant::now();
        let mut lr = qb_forecast::LinearRegression::default();
        lr.fit(&series, spec).expect("enough data");
        let lr_time = t0.elapsed();

        let t0 = std::time::Instant::now();
        let mut rnn = qb_forecast::Rnn::new(rnn_config(effort));
        rnn.fit(&series, spec).expect("enough data");
        let rnn_time = t0.elapsed();

        let t0 = std::time::Instant::now();
        let mut kr = qb_forecast::KernelRegression::default();
        kr.fit(&series, spec).expect("enough data");
        let kr_fit = t0.elapsed();
        let t0 = std::time::Instant::now();
        let recent: Vec<Vec<f64>> =
            series.iter().map(|s| s[s.len() - 24..].to_vec()).collect();
        let _ = kr.predict(&recent);
        let kr_pred = t0.elapsed();

        out.push_str(&format!(
            "  {:<11} LR train {:>8.2?} ({} B serialized) | RNN train {:>8.2?} ({} B serialized, {} epochs) | KR fit {:>8.2?} + predict {:>8.2?} ({} stored rows)\n",
            "",
            lr_time,
            lr.to_bytes().len(),
            rnn_time,
            rnn.to_bytes().len(),
            rnn.epochs_run,
            kr_fit,
            kr_pred,
            kr.num_stored(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_is_static_and_complete() {
        let t = table3();
        for name in ["LR", "ARMA", "KR", "RNN", "FNN", "PSRNN"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn table1_reports_select_majority() {
        let t = table1(Effort::Quick);
        assert!(t.contains("SELECT"), "{t}");
        assert!(t.contains("Admissions"));
    }

    #[test]
    fn table2_reduction_monotone() {
        let t = table2(Effort::Quick);
        assert!(t.contains("Reduction ratio"));
    }
}
