//! `repro` — regenerates every table and figure of the QB5000 paper.
//!
//! ```text
//! repro [--full] <artifact>...
//! repro --full all
//! ```
//!
//! Artifacts: `table1 table2 table3 table4 fig1 fig3 fig5 fig6 fig7 fig8
//! fig9 fig10 fig11 fig12 fig13 fig15 fig16 fig17 all`
//! (`fig13` also prints Figure 14; `fig9` also prints Figure 16.)
//!
//! Default effort is quick (shrunk traces / epochs, minutes of runtime);
//! `--full` uses paper-faithful settings.

use qb_bench::{exp_ablations, exp_clustering, exp_forecast, exp_index, exp_tables, Effort};

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "fig1", "fig3", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13", "fig15", "fig17", "ablations",
];

fn run(artifact: &str, effort: Effort) -> Option<String> {
    let out = match artifact {
        "table1" => exp_tables::table1(effort),
        "table2" => exp_tables::table2(effort),
        "table3" => exp_tables::table3(),
        "table4" => exp_tables::table4(effort),
        "fig1" => exp_clustering::fig1(effort),
        "fig3" => exp_clustering::fig3(effort),
        "fig5" => exp_clustering::fig5(effort),
        "fig6" => exp_clustering::fig6(effort),
        "fig7" => exp_forecast::fig7(effort),
        "fig8" => exp_forecast::fig8(effort),
        "fig9" | "fig16" => exp_forecast::fig9_16(effort),
        "fig10" => exp_forecast::fig10(effort),
        "fig11" => exp_index::fig11(effort),
        "fig12" => exp_index::fig12(effort),
        "fig13" | "fig14" => exp_clustering::fig13_14(effort),
        "fig15" => exp_forecast::fig15(effort),
        "fig17" => exp_forecast::fig17(effort),
        "ablations" => exp_ablations::ablations(effort),
        _ => return None,
    };
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Quick;
    let mut targets: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => effort = Effort::Full,
            "--quick" => effort = Effort::Quick,
            "all" => targets.extend(ARTIFACTS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("usage: repro [--full] <artifact>... | all");
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(2);
    }
    for t in targets {
        let t0 = std::time::Instant::now();
        match run(&t, effort) {
            Some(out) => {
                // Write via the fallible API: a closed pipe (`repro ... |
                // head`) ends the program quietly instead of panicking.
                use std::io::Write;
                let mut stdout = std::io::stdout();
                if writeln!(stdout, "{out}\n  [{t} completed in {:.1?}]\n", t0.elapsed())
                    .is_err()
                {
                    std::process::exit(0);
                }
            }
            None => {
                eprintln!("unknown artifact `{t}`; known: {}", ARTIFACTS.join(" "));
                std::process::exit(2);
            }
        }
    }
}
