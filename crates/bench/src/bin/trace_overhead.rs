//! CI guard: tracing must be (nearly) free on the hot paths.
//!
//! Replays the same workload with the flight recorder off and on, times
//! the clusterer-update rounds and the forecast train/predict rounds, and
//! fails (exit 1) if the traced runs are more than `QB_TRACE_OVERHEAD_PCT`
//! percent slower (default 5%). Each measurement is the best of several
//! trials so scheduler noise doesn't produce false alarms.
//!
//! ```text
//! cargo run --release -p qb-bench --bin trace_overhead
//! ```

use qb5000::{ForecastManager, HorizonSpec, QueryBot5000, RetrainOutcome, Tracer};
use qb_bench::pipeline_run::{run_pipeline, PipelineRun, RunOptions};
use qb_forecast::LinearRegression;
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::Workload;
use std::time::{Duration, Instant};

const TRIALS: usize = 5;
const FORECAST_ROUNDS: usize = 20;
const DAYS: u32 = 3;

fn replay(traced: bool) -> PipelineRun {
    let mut opts = RunOptions::new(Workload::BusTracker, DAYS, 0.05);
    if traced {
        opts = opts.traced(&Tracer::enabled());
    }
    run_pipeline(opts)
}

/// Steady-state forecast rounds: repeated full retrain + predict against
/// an already-built pipeline (the template/cluster event burst happened
/// during the replay, so these rounds emit only a handful of events).
fn forecast_rounds(bot: &QueryBot5000) -> Duration {
    let now = DAYS as i64 * MINUTES_PER_DAY;
    let specs = vec![
        HorizonSpec { interval: Interval::HOUR, window: 24, horizon: 1, train_steps: 48 },
        HorizonSpec { interval: Interval::HOUR, window: 24, horizon: 12, train_steps: 48 },
    ];
    let t0 = Instant::now();
    for _ in 0..FORECAST_ROUNDS {
        let mut mgr =
            ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
        mgr.set_tracer(bot.tracer());
        let outcome = mgr.ensure_trained(bot, now).expect("training succeeds");
        assert!(matches!(outcome, RetrainOutcome::Retrained { .. }));
        for h in 0..specs.len() {
            std::hint::black_box(mgr.predict(bot, now, h));
        }
    }
    t0.elapsed()
}

/// Best-of-`TRIALS` (cluster_wall, forecast_wall) for one mode.
fn measure(traced: bool) -> (Duration, Duration) {
    let mut best_cluster = Duration::MAX;
    let mut best_forecast = Duration::MAX;
    for _ in 0..TRIALS {
        let run = replay(traced);
        best_cluster = best_cluster.min(run.cluster_wall);
        best_forecast = best_forecast.min(forecast_rounds(&run.bot));
    }
    (best_cluster, best_forecast)
}

fn overhead_pct(untraced: Duration, traced: Duration) -> f64 {
    (traced.as_secs_f64() - untraced.as_secs_f64()) / untraced.as_secs_f64() * 100.0
}

fn main() {
    let limit: f64 = std::env::var("QB_TRACE_OVERHEAD_PCT")
        .ok()
        .map(|s| s.parse().expect("numeric QB_TRACE_OVERHEAD_PCT"))
        .unwrap_or(5.0);

    // Warm up caches/allocator before anything is timed.
    std::hint::black_box(replay(false));

    let (cluster_off, forecast_off) = measure(false);
    let (cluster_on, forecast_on) = measure(true);

    let mut failed = false;
    println!("trace overhead guard (limit {limit:.1}%, best of {TRIALS} trials):");
    for (name, off, on) in
        [("clusterer_update", cluster_off, cluster_on), ("forecast_round", forecast_off, forecast_on)]
    {
        let pct = overhead_pct(off, on);
        let verdict = if pct <= limit { "ok" } else { "FAIL" };
        println!(
            "  {name:<16} untraced {:>9.3}ms | traced {:>9.3}ms | overhead {pct:>+6.2}% {verdict}",
            off.as_secs_f64() * 1e3,
            on.as_secs_f64() * 1e3,
        );
        failed |= pct > limit;
    }
    if failed {
        eprintln!("tracing overhead exceeded {limit:.1}% on a hot path");
        std::process::exit(1);
    }
}
