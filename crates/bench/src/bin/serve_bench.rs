//! Lock-free serving throughput under a live, adapting pipeline.
//!
//! The demo the serving layer exists for: four reader threads hammer
//! [`ForecastQuery`] answers while the main thread keeps the pipeline
//! busy — sharded batch ingest of a faulted trace, hourly cluster
//! updates (each publishing a membership patch), and manager retrains
//! (each publishing fresh per-horizon curves). Readers never block the
//! pipeline and the pipeline never blocks readers.
//!
//! Measured:
//!
//! * sustained reads/sec across the reader fleet (target: ≥ 1M/s from
//!   4 threads, concurrent with ingest + publications);
//! * sampled per-read latency (p50/p99);
//! * publish latency from the `serve.publish` histogram (mean + p99) —
//!   the number the CI regression guard holds against
//!   `BENCH_serving_baseline.json`;
//! * a final bit-identity audit: at the last published epoch, every
//!   served curve must equal a synchronous
//!   [`QueryBot5000::forecast_job_with`] fit-and-pull at the same cut,
//!   bit for bit.
//!
//! Results land in `BENCH_serving.json` for CI to archive; the run exits
//! non-zero only if the pipeline fails or the bit-identity audit does.
//! `QB_THREADS` sizes the ingest pool; `QB_BENCH_DAYS` resizes the trace
//! for quick local runs.
//!
//! ```text
//! cargo run --release -p qb-bench --bin serve_bench
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qb5000::{
    BatchItem, ForecastManager, ForecastQuery, ForecastService, HorizonSpec, JobSpan,
    Qb5000Config, QueryBot5000, Recorder, RetrainOutcome,
};
use qb_forecast::LinearRegression;
use qb_timeseries::{MINUTES_PER_DAY, MINUTES_PER_HOUR};
use qb_workloads::{FaultPlan, QueryEvent, TraceConfig, Workload};

const READER_THREADS: usize = 4;
/// Every Nth read records its latency, bounding sample memory while the
/// fleet runs tens of millions of reads.
const LATENCY_SAMPLE_EVERY: u64 = 64;
const DEFAULT_DAYS: u32 = 3;
const TRACE_SCALE: f64 = 0.05;
const SEED: u64 = 0x5E4E;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Upper bucket bound (nanos) containing the `p`-quantile observation.
fn histogram_percentile_nanos(h: &qb_obs::HistogramSnapshot, p: f64) -> f64 {
    let target = (h.count as f64 * p).ceil() as u64;
    let mut cum = 0u64;
    for (i, count) in h.buckets.iter().enumerate() {
        cum += count;
        if cum >= target {
            return match h.bounds_nanos.get(i) {
                Some(&b) => b as f64,
                // The overflow bucket: report the mean of what landed there.
                None => h.sum_nanos as f64 / h.count.max(1) as f64,
            };
        }
    }
    0.0
}

fn main() {
    let days: u32 = std::env::var("QB_BENCH_DAYS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DAYS);
    let recorder = Recorder::new();
    let specs = vec![HorizonSpec::hourly(1), HorizonSpec::hourly(12)];
    let mut service = ForecastService::for_specs(&specs);
    service.set_recorder(&recorder);
    let config = Qb5000Config::builder()
        .serve(service.clone())
        .recorder(recorder.clone())
        .build()
        .expect("bench config is valid");
    let mut bot = QueryBot5000::new(config);

    // --- Warm-up: one day of clean history so the first retrain has a
    // full training window before the measured phase starts. ---
    let warm = TraceConfig { start: 0, days: 1, scale: TRACE_SCALE, seed: SEED };
    for ev in Workload::BusTracker.generator(warm) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
    }
    bot.update_clusters(MINUTES_PER_DAY);

    // --- Concurrent phase: readers race the adapting pipeline. ---
    let stop = Arc::new(AtomicBool::new(false));
    let total_reads = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READER_THREADS)
        .map(|_| {
            let reader = service.reader();
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total_reads);
            std::thread::spawn(move || {
                let queries = [
                    ForecastQuery::top_k(3, 0),
                    ForecastQuery::cluster(0, 0),
                    ForecastQuery::cluster(1, 1),
                    ForecastQuery::template(0, 0),
                ];
                let mut samples: Vec<u64> = Vec::with_capacity(1 << 16);
                let mut reads = 0u64;
                let mut max_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let q = &queries[(reads % 4) as usize];
                    if reads.is_multiple_of(LATENCY_SAMPLE_EVERY) {
                        let t = Instant::now();
                        let answer = reader.answer(q);
                        samples.push(t.elapsed().as_nanos() as u64);
                        max_epoch = max_epoch.max(answer.epoch);
                    } else {
                        let answer = reader.answer(q);
                        max_epoch = max_epoch.max(answer.epoch);
                    }
                    reads += 1;
                }
                total.fetch_add(reads, Ordering::Relaxed);
                (samples, max_epoch)
            })
        })
        .collect();

    // The measured trace: faulted, so cluster churn forces retrains and
    // the membership the readers see keeps shifting under them.
    let trace = TraceConfig {
        start: MINUTES_PER_DAY,
        days,
        scale: TRACE_SCALE,
        seed: SEED ^ 0x52,
    };
    let plan = FaultPlan::with_intensity(SEED, 1.0);
    let events: Vec<QueryEvent> =
        plan.inject(Workload::BusTracker.generator(trace)).collect();
    let mut mgr = ForecastManager::new(specs.clone(), || {
        Box::new(LinearRegression::default())
    });
    let mut retrains = 0u64;
    let wall = Instant::now();
    let mut next_update = MINUTES_PER_DAY + MINUTES_PER_HOUR;
    let mut tick_start = 0usize;
    for i in 1..=events.len() {
        if i < events.len() && events[i].minute == events[tick_start].minute {
            continue;
        }
        let minute = events[tick_start].minute;
        while minute >= next_update {
            bot.update_clusters(next_update);
            if let Ok(RetrainOutcome::Retrained { .. }) = mgr.ensure_trained(&bot, next_update)
            {
                retrains += 1;
            }
            next_update += MINUTES_PER_HOUR;
        }
        let batch: Vec<BatchItem<'_>> = events[tick_start..i]
            .iter()
            .map(|ev| BatchItem { minute: ev.minute, sql: &ev.sql, count: ev.count })
            .collect();
        bot.ingest_batch(&batch);
        tick_start = i;
    }
    let end = MINUTES_PER_DAY + days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(end);
    // A final fresh-manager retrain guarantees the last publication's
    // curves are cut exactly at `end` — the cut the audit refits below.
    let mut final_mgr = ForecastManager::new(specs.clone(), || {
        Box::new(LinearRegression::default())
    });
    final_mgr
        .ensure_trained(&bot, end)
        .expect("final retrain succeeds on a full trace");
    retrains += 1;
    let concurrent_wall = wall.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let mut samples: Vec<u64> = Vec::new();
    let mut fleet_max_epoch = 0u64;
    for h in readers {
        let (s, e) = h.join().expect("reader thread panicked");
        samples.extend(s);
        fleet_max_epoch = fleet_max_epoch.max(e);
    }
    samples.sort_unstable();
    let reads = total_reads.load(Ordering::Relaxed);
    let reads_per_sec = reads as f64 / concurrent_wall;

    // --- Bit-identity audit at the final epoch. ---
    let reader = service.reader();
    let epoch = service.epoch();
    assert!(fleet_max_epoch <= epoch, "readers saw an unpublished epoch");
    let mut audited = 0usize;
    for (slot, spec) in specs.iter().enumerate() {
        let job = bot
            .forecast_job_with(
                end,
                spec.interval,
                spec.window,
                spec.horizon,
                JobSpan::Steps(spec.train_steps),
            )
            .expect("enough history for the audit");
        let pulled = job
            .fit_predict(&mut LinearRegression::default())
            .expect("audit fit succeeds");
        for (ci, cluster) in job.clusters.iter().enumerate() {
            let answer = reader.answer(&ForecastQuery::cluster(cluster.id.0, slot));
            assert_eq!(answer.epoch, epoch);
            let curve = answer.curve().expect("final epoch serves every tracked cluster");
            assert_eq!(
                curve.values[0].to_bits(),
                pulled[ci].to_bits(),
                "served curve for cluster {} slot {slot} diverged from the synchronous pull",
                cluster.id.0
            );
            audited += 1;
        }
    }

    let snap = recorder.snapshot();
    let publish = snap.histograms.get("serve.publish").expect("publications were timed");
    let publish_mean_us = publish.sum_nanos as f64 / publish.count.max(1) as f64 / 1e3;
    let publish_p99_us = histogram_percentile_nanos(publish, 0.99) / 1e3;
    let json = format!(
        "{{\n  \"reader_threads\": {READER_THREADS},\n  \
         \"trace_days\": {days},\n  \
         \"concurrent_wall_secs\": {concurrent_wall:.3},\n  \
         \"reads_total\": {reads},\n  \
         \"reads_per_sec\": {reads_per_sec:.1},\n  \
         \"meets_1m_reads_target\": {},\n  \
         \"read_p50_ns\": {},\n  \
         \"read_p99_ns\": {},\n  \
         \"publishes\": {},\n  \
         \"retrains\": {retrains},\n  \
         \"final_epoch\": {epoch},\n  \
         \"publish_mean_us\": {publish_mean_us:.2},\n  \
         \"publish_p99_us\": {publish_p99_us:.2},\n  \
         \"curves_audited_bit_identical\": {audited}\n}}\n",
        reads_per_sec >= 1e6,
        percentile(&samples, 0.50),
        percentile(&samples, 0.99),
        publish.count,
    );
    std::fs::write("BENCH_serving.json", &json).expect("BENCH_serving.json writable");
    println!("{json}");
    println!("wrote BENCH_serving.json");
}
