//! CI guard: self-monitoring must be (nearly) free on the control loop.
//!
//! Runs the same fault-injected AUTO experiment with the monitor detached
//! and attached (metrics recorder enabled in both modes, so the only
//! delta is the per-round snapshot diff, rule evaluation, and state
//! publication), and fails (exit 1) if the monitored run is more than
//! `QB_MONITOR_OVERHEAD_PCT` percent slower per controller round
//! (default 5%). Each measurement is the best of several trials so
//! scheduler noise doesn't produce false alarms.
//!
//! ```text
//! cargo run --release -p qb-bench --bin monitor_overhead
//! ```

use qb5000::{ControllerConfig, IndexSelectionExperiment, MonitorConfig, Recorder, Strategy};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{FaultPlan, Workload};
use std::time::{Duration, Instant};

const TRIALS: usize = 3;

fn experiment_cfg(monitored: bool) -> ControllerConfig {
    let mut b = ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.05)
        .history_days(2)
        .run_hours(6)
        .trace_scale(0.05)
        .index_budget(6)
        .build_period(60)
        .report_window(60)
        .run_start(14 * MINUTES_PER_DAY + 7 * 60)
        .seed(0xBE7C)
        .threads(qb_parallel::configured_threads())
        .fault_plan(FaultPlan::with_intensity(0xBE7C, 1.0))
        // Both modes pay for metrics, so the measured delta is the
        // monitor itself rather than the recorder it forces on.
        .recorder(Recorder::new());
    if monitored {
        // The stock rule set, no HTTP endpoint: the guard times the
        // per-round observe path, not socket accept latency.
        b = b.monitor(MonitorConfig::with_default_slos(2, 0.5));
    }
    b.build().expect("overhead config is valid")
}

/// Best-of-`TRIALS` wall time per controller round for one mode.
fn measure(monitored: bool) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let result = IndexSelectionExperiment::new(experiment_cfg(monitored)).run();
        let wall = t0.elapsed();
        let rounds = result.metrics.counters["controller.rounds"].max(1);
        best = best.min(wall / rounds as u32);
    }
    best
}

fn main() {
    let limit: f64 = std::env::var("QB_MONITOR_OVERHEAD_PCT")
        .ok()
        .map(|s| s.parse().expect("numeric QB_MONITOR_OVERHEAD_PCT"))
        .unwrap_or(5.0);

    // Warm up caches/allocator before anything is timed.
    std::hint::black_box(IndexSelectionExperiment::new(experiment_cfg(false)).run());

    let off = measure(false);
    let on = measure(true);
    let pct = (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64() * 100.0;
    let verdict = if pct <= limit { "ok" } else { "FAIL" };
    println!("monitor overhead guard (limit {limit:.1}%, best of {TRIALS} trials):");
    println!(
        "  controller_round  unmonitored {:>9.3}ms | monitored {:>9.3}ms | overhead {pct:>+6.2}% \
         {verdict}",
        off.as_secs_f64() * 1e3,
        on.as_secs_f64() * 1e3,
    );
    if pct > limit {
        eprintln!("self-monitoring overhead exceeded {limit:.1}% per controller round");
        std::process::exit(1);
    }
}
