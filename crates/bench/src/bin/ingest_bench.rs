//! Sustained-ingest throughput for the sharded batch engine.
//!
//! Drives a [`PreProcessor`] directly (no clusterer or forecaster costs)
//! through three phases over 1M+ distinct templates:
//!
//! * **Cold** — every statement interns a brand-new template: parse +
//!   templatize + intern throughput, the worst case.
//! * **Hot** — every statement repeats a known raw SQL text with a
//!   weighted arrival count: the zero-alloc shard-cache fast path. This
//!   is the path the 1M-weighted-arrivals/sec target measures.
//! * **Churn** — a repeat stream with a fixed fraction of never-seen
//!   templates mixed in, the sustained-traffic shape that used to
//!   collapse the fill-once raw cache.
//!
//! Results land in `BENCH_ingest.json` for CI to archive; the run is
//! informational and always exits 0 unless the pipeline itself fails.
//! `QB_THREADS` sizes the worker pool; `QB_BENCH_TEMPLATES` overrides the
//! distinct-template population for quick local runs.
//!
//! ```text
//! cargo run --release -p qb-bench --bin ingest_bench
//! ```

use qb_parallel::ThreadPool;
use qb_preprocessor::{BatchItem, PreProcessor, PreProcessorConfig};
use std::time::Instant;

const DEFAULT_TEMPLATES: usize = 1_000_000;
const BATCH: usize = 4096;
/// Weighted count per hot-phase statement: the fast path bumps a history
/// by `count`, so weight multiplies arrivals without extra parsing.
const HOT_WEIGHT: u64 = 4;
/// One churn op in `CHURN_NEW_EVERY` is a brand-new template.
const CHURN_NEW_EVERY: usize = 8;
const CHURN_OPS: usize = 500_000;

fn statement(i: usize) -> String {
    // Distinct table names make distinct templates (constants alone would
    // fold into one), while staying cheap to parse.
    format!("SELECT a, b FROM t{i} WHERE k = {} AND a > 7", i % 97)
}

/// Feeds `sqls[range]` through `ingest_batch` in fixed-size ticks, each
/// statement carrying `count` arrivals. Returns (statements, arrivals).
fn drive(
    pre: &mut PreProcessor,
    pool: &ThreadPool,
    sqls: &[String],
    count: u64,
) -> (u64, u64) {
    let mut statements = 0u64;
    let mut arrivals = 0u64;
    for (tick, chunk) in sqls.chunks(BATCH).enumerate() {
        let batch: Vec<BatchItem<'_>> = chunk
            .iter()
            .map(|sql| BatchItem { minute: tick as i64, sql, count })
            .collect();
        let report = pre.ingest_batch(pool, &batch);
        statements += report.statements;
        arrivals += report.arrivals;
    }
    (statements, arrivals)
}

fn main() {
    let templates: usize = std::env::var("QB_BENCH_TEMPLATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TEMPLATES);
    let pool = ThreadPool::default();
    let config = PreProcessorConfig {
        // Size the cache above the whole population (plus churn) so the
        // hot phase measures the fast path, not eviction.
        raw_cache_limit: templates * 2 + CHURN_OPS,
        ..PreProcessorConfig::default()
    };
    let shards = config.ingest_shards;
    let mut pre = PreProcessor::new(config);

    let sqls: Vec<String> = (0..templates).map(statement).collect();

    // Phase 1: cold — every statement is a new template.
    let t0 = Instant::now();
    let (cold_stmts, _) = drive(&mut pre, &pool, &sqls, 1);
    let cold_wall = t0.elapsed().as_secs_f64();
    assert_eq!(cold_stmts as usize, templates, "every cold statement ingests");
    assert_eq!(pre.num_templates(), templates, "every cold statement is distinct");

    // Phase 2: hot — pure repeat arrivals over the full population.
    let t0 = Instant::now();
    let (hot_stmts, hot_arrivals) = drive(&mut pre, &pool, &sqls, HOT_WEIGHT);
    let hot_wall = t0.elapsed().as_secs_f64();
    assert_eq!(pre.num_templates(), templates, "hot phase must not intern");

    // Phase 3: churn — repeats with a fixed fraction of new templates.
    let churn_sqls: Vec<String> = (0..CHURN_OPS)
        .map(|i| {
            if i % CHURN_NEW_EVERY == 0 {
                statement(templates + i) // never seen before
            } else {
                statement(i * 31 % templates) // a repeat
            }
        })
        .collect();
    let t0 = Instant::now();
    let (churn_stmts, churn_arrivals) = drive(&mut pre, &pool, &churn_sqls, HOT_WEIGHT);
    let churn_wall = t0.elapsed().as_secs_f64();

    let hot_stmts_per_sec = hot_stmts as f64 / hot_wall;
    let hot_weighted_per_sec = hot_arrivals as f64 / hot_wall;
    let json = format!(
        "{{\n  \"distinct_templates\": {templates},\n  \"threads\": {},\n  \
         \"ingest_shards\": {shards},\n  \"batch_size\": {BATCH},\n  \
         \"cold_templates_per_sec\": {:.1},\n  \
         \"hot_statements_per_sec\": {hot_stmts_per_sec:.1},\n  \
         \"hot_weight\": {HOT_WEIGHT},\n  \
         \"hot_weighted_arrivals_per_sec\": {hot_weighted_per_sec:.1},\n  \
         \"meets_1m_weighted_target\": {},\n  \
         \"churn_new_template_ratio\": {:.4},\n  \
         \"churn_statements_per_sec\": {:.1},\n  \
         \"churn_weighted_arrivals_per_sec\": {:.1}\n}}\n",
        pool.threads(),
        cold_stmts as f64 / cold_wall,
        hot_weighted_per_sec >= 1e6,
        1.0 / CHURN_NEW_EVERY as f64,
        churn_stmts as f64 / churn_wall,
        churn_arrivals as f64 / churn_wall,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("BENCH_ingest.json writable");
    println!("{json}");
    println!("wrote BENCH_ingest.json");
}
