//! Durability cost accounting: how much does crash-safety cost, and how
//! fast does a warm restart come back?
//!
//! Replays a BusTracker trace through a [`DurablePipeline`], timing the
//! three durable paths separately:
//!
//! * **WAL append** — per-sighting overhead of frame + fsync on the
//!   ingest path (throughput over the whole replay).
//! * **Snapshot** — full-state serialize + tmp/fsync/rename rotation,
//!   best and mean over repeated rounds, with the payload size.
//! * **Recovery** — `DurablePipeline::open` against (a) a directory whose
//!   WAL tail is empty (snapshot-only load) and (b) one carrying a tail
//!   of unsnapshotted sightings that must replay through the ingest path.
//!
//! Results land in `BENCH_durability.json` for CI to archive; the run is
//! informational and always exits 0 unless the pipeline itself fails.
//!
//! ```text
//! cargo run --release -p qb-bench --bin durability_bench
//! ```

use qb5000::{DurabilityConfig, DurablePipeline, Qb5000Config};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::{TraceConfig, Workload};
use std::time::Instant;

const DAYS: u32 = 3;
const SCALE: f64 = 0.02;
const SEED: u64 = 0xD07A61;
const SNAPSHOT_TRIALS: usize = 8;
const TAIL_FRAMES: usize = 2_000;

fn durable_config(dir: &std::path::Path) -> Qb5000Config {
    Qb5000Config::builder()
        // Snapshots are driven explicitly below; keep the policy out of
        // the way so each phase times exactly one thing.
        .durability(DurabilityConfig::new(dir).snapshot_every_rounds(u64::MAX))
        .build()
        .expect("durability bench config is valid")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("qb-durability-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let trace =
        TraceConfig { start: 0, days: DAYS, scale: SCALE, seed: SEED };
    let events: Vec<_> = Workload::BusTracker.generator(trace).collect();
    assert!(!events.is_empty(), "trace must generate work");

    // Phase 1: WAL append throughput over the full replay.
    let (mut p, _) = DurablePipeline::open(durable_config(&dir)).expect("fresh open");
    let t0 = Instant::now();
    for ev in &events {
        let _ = p.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    let append_wall = t0.elapsed();
    p.update_clusters(DAYS as i64 * MINUTES_PER_DAY).expect("cluster update");

    // Phase 2: snapshot cost at steady state.
    let mut snapshot_times = Vec::with_capacity(SNAPSHOT_TRIALS);
    for _ in 0..SNAPSHOT_TRIALS {
        let t = Instant::now();
        p.snapshot().expect("snapshot succeeds");
        snapshot_times.push(t.elapsed());
    }
    let snapshot_bytes = p.store_stats().last_snapshot_bytes;
    let durable_seq = p.durable_seq();
    drop(p);

    // Phase 3a: recovery with an empty WAL tail (snapshot-only load).
    let t = Instant::now();
    let (p, report) = DurablePipeline::open(durable_config(&dir)).expect("snapshot-only recovery");
    let recovery_snapshot_only = t.elapsed();
    assert_eq!(report.frames_replayed, 0, "tail must be empty after a snapshot");
    assert_eq!(p.durable_seq(), durable_seq, "recovery lands on the durable seq");

    // Phase 3b: recovery with a WAL tail that replays through ingest.
    let mut p = p;
    for ev in events.iter().cycle().take(TAIL_FRAMES) {
        let _ = p.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    drop(p);
    let t = Instant::now();
    let (p, report) = DurablePipeline::open(durable_config(&dir)).expect("tail recovery");
    let recovery_with_tail = t.elapsed();
    assert_eq!(report.frames_replayed, TAIL_FRAMES as u64, "the whole tail replays");
    drop(p);
    let _ = std::fs::remove_dir_all(&dir);

    let appends_per_sec = events.len() as f64 / append_wall.as_secs_f64();
    let best = snapshot_times.iter().min().expect("trials ran").as_secs_f64() * 1e3;
    let mean = snapshot_times.iter().map(|d| d.as_secs_f64()).sum::<f64>()
        / snapshot_times.len() as f64
        * 1e3;

    let json = format!(
        "{{\n  \"workload\": \"{}\",\n  \"days\": {DAYS},\n  \"scale\": {SCALE},\n  \
         \"statements\": {},\n  \"wal_appends_per_sec\": {appends_per_sec:.1},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \"snapshot_ms_best\": {best:.3},\n  \
         \"snapshot_ms_mean\": {mean:.3},\n  \"recovery_snapshot_only_ms\": {:.3},\n  \
         \"recovery_tail_frames\": {TAIL_FRAMES},\n  \"recovery_with_tail_ms\": {:.3}\n}}\n",
        Workload::BusTracker.name(),
        events.len(),
        recovery_snapshot_only.as_secs_f64() * 1e3,
        recovery_with_tail.as_secs_f64() * 1e3,
    );
    std::fs::write("BENCH_durability.json", &json).expect("BENCH_durability.json writable");
    println!("{json}");
    println!("wrote BENCH_durability.json");
}
