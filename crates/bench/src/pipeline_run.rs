//! Feeding a synthetic trace through the full QB5000 pipeline, with the
//! daily clustering cadence the paper uses ("the frequency at which it
//! performs \[the\] incremental clustering algorithm \[is\] once per day").

use qb5000::{Qb5000Config, QueryBot5000};
use qb_timeseries::{Interval, Minute, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

/// Per-day clustering statistics collected while feeding.
#[derive(Debug, Clone)]
pub struct DailyStats {
    pub day: i64,
    pub num_clusters: usize,
    pub num_templates: usize,
    /// Coverage ratio of the top-1..=5 clusters.
    pub coverage: [f64; 5],
    /// Member sets of the five largest clusters (template ids).
    pub top5_members: Vec<Vec<u32>>,
}

/// A completed pipeline feed.
pub struct PipelineRun {
    pub bot: QueryBot5000,
    pub start: Minute,
    pub end: Minute,
    pub daily: Vec<DailyStats>,
    /// Total queries replayed.
    pub total_queries: u64,
    /// Wall time spent inside `ingest` (Table 4's Pre-Processor cost).
    pub ingest_wall: std::time::Duration,
    /// Wall time spent inside `update_clusters` (Table 4's Clusterer cost).
    pub cluster_wall: std::time::Duration,
}

/// Replay options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub workload: Workload,
    pub start: Minute,
    pub days: u32,
    pub scale: f64,
    pub seed: u64,
    pub qb: Qb5000Config,
}

impl RunOptions {
    pub fn new(workload: Workload, days: u32, scale: f64) -> Self {
        Self { workload, start: 0, days, scale, seed: 0xBEE, qb: Qb5000Config::default() }
    }

    pub fn starting_at(mut self, start: Minute) -> Self {
        self.start = start;
        self
    }

    /// Attaches a metrics recorder to the pipeline: every stage reports
    /// counters and stage timings into it while the trace replays.
    pub fn recorded(mut self, recorder: &qb5000::Recorder) -> Self {
        self.qb.recorder = recorder.clone();
        self
    }

    /// Attaches a [`qb5000::Tracer`]: every stage records lineage events
    /// into its flight recorder while the trace replays.
    pub fn traced(mut self, tracer: &qb5000::Tracer) -> Self {
        self.qb.tracer = tracer.clone();
        self
    }
}

/// Feeds `days` of the workload through QB5000 with daily clustering and
/// history compaction.
pub fn run_pipeline(opts: RunOptions) -> PipelineRun {
    let mut bot = QueryBot5000::new(opts.qb.clone());
    let cfg = TraceConfig { start: opts.start, days: opts.days, scale: opts.scale, seed: opts.seed };
    let mut daily = Vec::new();
    let mut next_day_boundary = opts.start + MINUTES_PER_DAY;
    let mut total_queries = 0u64;
    let mut ingest_wall = std::time::Duration::ZERO;
    let mut cluster_wall = std::time::Duration::ZERO;

    let do_daily = |bot: &mut QueryBot5000, boundary: Minute, daily: &mut Vec<DailyStats>,
                        cluster_wall: &mut std::time::Duration| {
        let t0 = std::time::Instant::now();
        bot.update_clusters(boundary);
        *cluster_wall += t0.elapsed();
        // Keep memory bounded on long (multi-year) feeds.
        bot.compact_histories();
        let clusterer = bot.clusterer();
        let coverage = [
            bot.coverage_ratio(1),
            bot.coverage_ratio(2),
            bot.coverage_ratio(3),
            bot.coverage_ratio(4),
            bot.coverage_ratio(5),
        ];
        let top5_members: Vec<Vec<u32>> = clusterer
            .largest_clusters(5)
            .iter()
            .map(|c| {
                let mut m: Vec<u32> = c.members.iter().map(|&k| k as u32).collect();
                m.sort_unstable();
                m
            })
            .collect();
        daily.push(DailyStats {
            day: (boundary - opts.start) / MINUTES_PER_DAY,
            num_clusters: clusterer.num_clusters(),
            num_templates: clusterer.num_templates(),
            coverage,
            top5_members,
        });
    };

    for ev in opts.workload.generator(cfg) {
        while ev.minute >= next_day_boundary {
            do_daily(&mut bot, next_day_boundary, &mut daily, &mut cluster_wall);
            next_day_boundary += MINUTES_PER_DAY;
        }
        let t0 = std::time::Instant::now();
        let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        ingest_wall += t0.elapsed();
        total_queries += ev.count;
    }
    let end = opts.start + opts.days as i64 * MINUTES_PER_DAY;
    do_daily(&mut bot, end, &mut daily, &mut cluster_wall);

    PipelineRun { bot, start: opts.start, end, daily, total_queries, ingest_wall, cluster_wall }
}

impl PipelineRun {
    /// Cluster-major series (one row per tracked cluster) over
    /// `[start, end)` at `interval`.
    pub fn cluster_series(&self, start: Minute, end: Minute, interval: Interval) -> Vec<Vec<f64>> {
        self.bot
            .tracked_clusters()
            .iter()
            .map(|c| self.bot.cluster_series(c, start, end, interval))
            .collect()
    }

    /// Snapshot of every metric the run's recorder collected (empty when
    /// [`RunOptions::recorded`] was never called).
    pub fn metrics(&self) -> qb5000::MetricsSnapshot {
        self.bot.recorder().snapshot()
    }

    /// The workload's total per-interval series (all templates).
    pub fn total_series(&self, start: Minute, end: Minute, interval: Interval) -> Vec<f64> {
        let n = interval.buckets_between(start, end);
        let mut out = vec![0.0; n];
        for e in self.bot.preprocessor().templates() {
            let s = e.history.dense_series(start, end, interval);
            for (o, v) in out.iter_mut().zip(s) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bustracker_run_produces_daily_stats() {
        let run = run_pipeline(RunOptions::new(Workload::BusTracker, 3, 0.05));
        assert_eq!(run.daily.len(), 3);
        assert!(run.total_queries > 1000);
        let last = run.daily.last().unwrap();
        assert!(last.num_templates >= 10, "{last:?}");
        // Coverage is monotone in k.
        for w in last.coverage.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn recorded_run_collects_stage_metrics() {
        let recorder = qb5000::Recorder::new();
        let run = run_pipeline(
            RunOptions::new(Workload::BusTracker, 2, 0.05).recorded(&recorder),
        );
        let m = run.metrics();
        assert!(m.counters.get("preprocessor.ingested_statements").copied().unwrap_or(0) > 0);
        assert!(m.histograms.get("clusterer.update").is_some_and(|h| h.count >= 2));
        // An unrecorded run stays empty.
        let clean = run_pipeline(RunOptions::new(Workload::BusTracker, 2, 0.05));
        assert_eq!(clean.metrics(), qb5000::MetricsSnapshot::default());
    }

    #[test]
    fn cluster_series_nonempty_after_run() {
        let run = run_pipeline(RunOptions::new(Workload::BusTracker, 3, 0.05));
        let series = run.cluster_series(run.start, run.end, Interval::HOUR);
        assert!(!series.is_empty());
        assert_eq!(series[0].len(), 72);
        assert!(series[0].iter().sum::<f64>() > 0.0);
    }
}
