//! Train/test evaluation with a proper temporal split, plus the derived
//! ENSEMBLE and HYBRID predictions.
//!
//! Models are fitted on the series *prefix* and rolled over the held-out
//! suffix (no leakage). ENSEMBLE and HYBRID are then composed from the
//! standalone LR / RNN / KR prediction series exactly as §6.1 defines them,
//! so the composites share their members' training work.

use std::collections::BTreeMap;

use qb_forecast::{Forecaster, WindowSpec};
use qb_timeseries::mse_log_space;

use crate::zoo::{make_model, ALL_MODELS, STANDALONE};
use crate::Effort;

/// Per-model rolling predictions over the test range.
pub struct EvalOutput {
    /// Actual values per cluster over the scored points.
    pub actual: Vec<Vec<f64>>,
    /// model name → per-cluster predicted series (aligned with `actual`).
    pub predictions: BTreeMap<&'static str, Vec<Vec<f64>>>,
}

impl EvalOutput {
    /// Average log-space MSE across clusters for one model. NaN when no
    /// cluster produced any scored points (0/0 must not read as a perfect
    /// score).
    pub fn mse(&self, model: &str) -> f64 {
        let preds = &self.predictions[model];
        let per_cluster: Vec<f64> = self
            .actual
            .iter()
            .zip(preds)
            .filter(|(a, _)| !a.is_empty())
            .map(|(a, p)| mse_log_space(a, p))
            .collect();
        if per_cluster.is_empty() {
            return f64::NAN;
        }
        per_cluster.iter().sum::<f64>() / per_cluster.len() as f64
    }
}

/// The actual values a rolling forecast over `[test_start, len)` scores,
/// aligned with [`qb_forecast::rolling_forecast`]'s skip rule. Computed
/// directly from the series — no model needed.
pub fn aligned_actuals(
    series: &[Vec<f64>],
    spec: WindowSpec,
    test_start: usize,
) -> Vec<Vec<f64>> {
    let len = series.first().map_or(0, Vec::len);
    let mut actual = vec![Vec::new(); series.len()];
    for t in test_start..len {
        let scored = match t.checked_sub(spec.horizon) {
            Some(e) => e + 1 >= spec.window,
            None => false,
        };
        if !scored {
            continue;
        }
        for (c, s) in series.iter().enumerate() {
            actual[c].push(s[t]);
        }
    }
    actual
}

/// Fits a model on `series[..test_start]` and rolls predictions over the
/// suffix. Returns per-cluster predictions aligned with the actuals.
pub fn fit_and_roll(
    model: &mut dyn Forecaster,
    series: &[Vec<f64>],
    spec: WindowSpec,
    test_start: usize,
) -> Result<Vec<Vec<f64>>, qb_forecast::ForecastError> {
    let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
    model.fit(&train, spec)?;
    let (_, predicted) = qb_forecast::rolling_forecast(model, series, spec, test_start);
    Ok(predicted)
}

/// Evaluates every Figure 7 model on one workload's cluster series.
///
/// `gamma` is HYBRID's spike threshold (1.5 in the paper).
pub fn evaluate_all_models(
    series: &[Vec<f64>],
    spec: WindowSpec,
    test_start: usize,
    effort: Effort,
    gamma: f64,
) -> EvalOutput {
    let actual = aligned_actuals(series, spec, test_start);

    // Each standalone model trains and rolls independently: fan the six
    // fits across the worker pool. Results come back in the fixed
    // STANDALONE order, so the map contents (and any panic) are identical
    // to a sequential run.
    let rolled = qb_parallel::ThreadPool::default().map(STANDALONE.to_vec(), |_, name| {
        let mut model = make_model(name, effort);
        let res = fit_and_roll(model.as_mut(), series, spec, test_start);
        (name, res)
    });
    let mut predictions: BTreeMap<&'static str, Vec<Vec<f64>>> = BTreeMap::new();
    for (name, res) in rolled {
        match res {
            Ok(p) => {
                predictions.insert(name, p);
            }
            Err(e) => panic!("{name} failed to fit: {e}"),
        }
    }

    // ENSEMBLE = avg(LR, RNN) elementwise (§6.1).
    let ensemble: Vec<Vec<f64>> = predictions["LR"]
        .iter()
        .zip(&predictions["RNN"])
        .map(|(lr, rnn)| lr.iter().zip(rnn).map(|(a, b)| 0.5 * (a + b)).collect())
        .collect();
    // HYBRID = KR when KR > γ·ENSEMBLE, else ENSEMBLE (§6.1).
    let hybrid: Vec<Vec<f64>> = ensemble
        .iter()
        .zip(&predictions["KR"])
        .map(|(ens, kr)| {
            ens.iter()
                .zip(kr)
                .map(|(&e, &k)| if k > gamma * e { k } else { e })
                .collect()
        })
        .collect();
    predictions.insert("ENSEMBLE", ensemble);
    predictions.insert("HYBRID", hybrid);

    debug_assert!(ALL_MODELS.iter().all(|m| predictions.contains_key(m)));
    EvalOutput { actual, predictions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_series(len: usize) -> Vec<Vec<f64>> {
        vec![
            (0..len)
                .map(|t| 100.0 + 70.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
                .collect(),
            (0..len)
                .map(|t| 40.0 + 30.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).cos())
                .collect(),
        ]
    }

    #[test]
    fn all_eight_models_evaluated() {
        let series = cyclic_series(260);
        let spec = WindowSpec { window: 24, horizon: 1 };
        let out = evaluate_all_models(&series, spec, 220, Effort::Quick, 1.5);
        for name in ALL_MODELS {
            let mse = out.mse(name);
            assert!(mse.is_finite(), "{name}: {mse}");
        }
        // A pure cycle: LR must do well; its predictions align with actuals.
        assert!(out.mse("LR") < 0.2, "{}", out.mse("LR"));
    }

    #[test]
    fn no_training_leakage() {
        // A series whose test suffix differs radically from training: a
        // leaky fit would score unrealistically well. We check the actuals
        // really come from the suffix.
        let mut series = cyclic_series(200);
        for v in series[0][160..].iter_mut() {
            *v = 1e4;
        }
        let spec = WindowSpec { window: 12, horizon: 1 };
        let out = evaluate_all_models(&series, spec, 160, Effort::Quick, 1.5);
        assert!(out.actual[0].iter().all(|&a| a == 1e4));
    }

    #[test]
    fn hybrid_equals_ensemble_without_spikes() {
        let series = cyclic_series(200);
        let spec = WindowSpec { window: 24, horizon: 1 };
        let out = evaluate_all_models(&series, spec, 170, Effort::Quick, 1.5);
        // On a smooth series KR rarely exceeds 1.5×ENSEMBLE, so the two
        // composites should be near-identical.
        let e = out.mse("ENSEMBLE");
        let h = out.mse("HYBRID");
        assert!((e - h).abs() < 0.3, "ENSEMBLE {e} vs HYBRID {h}");
    }
}
