//! Deterministic end-to-end simulation matrix.
//!
//! Sweeps (workload × fault intensity × seed) through the full generator →
//! fault injector → pre-processor → clusterer → forecaster pipeline at
//! thread widths {1, 4} and horizons {1, 6}, checking the five invariants
//! documented on `qb_testkit::sim` (accounting identity, quarantine bound,
//! finite forecasts, degradation chain, thread-width bit-identity).
//!
//! On failure the panic message contains a copy-pasteable one-case repro:
//!
//! ```text
//! QB_SIM_SEED=0x... QB_SIM_WORKLOAD=... QB_SIM_INTENSITY=... QB_SIM_DAYS=3 \
//!   cargo test -p qb-testkit --test simtest single_seed_repro -- --nocapture
//! ```

use qb_testkit::sim::{case_from_env, run_batched, run_case, run_monitored, run_served, SimCase};
use qb_workloads::{ChurnScenario, Workload};

const HORIZONS: &[usize] = &[1, 6];
const WIDTHS: &[usize] = &[1, 4];

/// The checked-in seed list (also the CI matrix). Two seeds per cell keeps
/// the full sweep under a minute; new seeds can be appended freely — any
/// failure prints its own repro line.
const SEEDS: &[u64] = &[0x5EED_CAFE, 0x0DDB_A11];

#[test]
fn simulation_matrix() {
    let workloads = [Workload::Admissions, Workload::BusTracker, Workload::Mooc];
    let mut ran = 0;
    for &workload in &workloads {
        for intensity in [0.0, 1.0] {
            for &seed in SEEDS {
                let case = SimCase::new(workload, intensity, seed);
                match run_case(&case, HORIZONS, WIDTHS) {
                    Ok(outcome) => {
                        assert!(outcome.num_clusters > 0);
                        ran += 1;
                    }
                    Err(failure) => panic!("{failure}"),
                }
            }
        }
    }
    assert_eq!(ran, workloads.len() * 2 * SEEDS.len());
}

/// The batched-ingest determinism matrix (invariant 7): every workload at
/// both fault intensities runs through the sharded batch engine, checking
/// width bit-identity, tick-split invariance, and agreement with the
/// sequential ingest path. One seed per cell — each case replays the
/// trace four times (two widths, one halved-tick pass, one sequential
/// reference), so this matrix costs ~2× `simulation_matrix` per seed.
#[test]
fn batched_ingest_matrix() {
    for workload in [Workload::Admissions, Workload::BusTracker, Workload::Mooc] {
        for intensity in [0.0, 1.0] {
            let case = SimCase::new(workload, intensity, SEEDS[0]);
            if let Err(failure) = run_batched(&case, HORIZONS, WIDTHS) {
                panic!("{failure}");
            }
        }
    }
}

/// The serving determinism matrix (invariant 8): every workload at both
/// fault intensities replays with the lock-free serving layer enabled,
/// checking that reader answers at the final published epoch — curves and
/// top-K rankings — are bit-identical across widths and equal the
/// manager's synchronous predictions bit-for-bit. One seed per cell, like
/// `batched_ingest_matrix`.
#[test]
fn served_forecast_matrix() {
    for workload in [Workload::Admissions, Workload::BusTracker, Workload::Mooc] {
        for intensity in [0.0, 1.0] {
            let case = SimCase::new(workload, intensity, SEEDS[0]);
            if let Err(failure) = run_served(&case, HORIZONS, WIDTHS) {
                panic!("{failure}");
            }
        }
    }
}

/// The alert-stream determinism matrix (invariant 9): churn scenarios ×
/// fault intensities replay through the sharded batch engine with a
/// monitor folding metric deltas and evaluating deterministic SLO rules
/// every six simulated hours. The firing/resolved transition log must be
/// byte-identical at widths 1 and 4 and across a same-seed re-run, and
/// the faulted cells must actually trip the quarantine-share rule.
/// Two churn shapes per intensity keeps this matrix near
/// `batched_ingest_matrix` cost (each cell replays three times).
#[test]
fn monitored_alert_matrix() {
    for scenario in [ChurnScenario::FeatureLaunch, ChurnScenario::FlashCrowd] {
        for intensity in [0.0, 1.0] {
            let case = SimCase::new(Workload::Admissions, intensity, SEEDS[0]);
            match run_monitored(&case, scenario, WIDTHS) {
                Ok(log) => {
                    if intensity > 0.0 {
                        assert!(!log.is_empty(), "faulted {scenario:?} produced no transitions");
                    }
                }
                Err(failure) => panic!("{failure}"),
            }
        }
    }
}

/// Replays exactly one case from `QB_SIM_*` environment overrides — the
/// target of the repro command printed by a `simulation_matrix` failure.
/// With no overrides it runs one default faulted case, so it also serves
/// as a smoke test.
#[test]
fn single_seed_repro() {
    let case = case_from_env();
    match run_case(&case, HORIZONS, WIDTHS) {
        Ok(outcome) => {
            println!(
                "case {case:?}: {} templates, {} clusters, faults {:?}",
                outcome.num_templates, outcome.num_clusters, outcome.stats
            );
        }
        Err(failure) => panic!("{failure}"),
    }
}
