//! Evolving-workload scenario matrix.
//!
//! Sweeps (churn scenario × churn intensity × fault intensity × seed)
//! through the serving pipeline with the cold-start path enabled, at
//! thread widths {1, 4} and horizons {1, 6}, checking the invariants
//! documented on `qb_testkit::scenario` (chaos accounting identity under
//! churn, degradation chain, finite scoring, cross-width bit-identity).
//!
//! On failure the panic message contains a copy-pasteable one-case repro:
//!
//! ```text
//! QB_SIM_SEED=0x... QB_SCENARIO=... QB_SCENARIO_INTENSITY=... \
//!   QB_SIM_INTENSITY=... QB_SIM_DAYS=4 \
//!   cargo test -p qb-testkit --test scenario_matrix single_scenario_repro -- --nocapture
//! ```

use qb5000::{
    ForecastManager, ForecastService, HorizonSpec, Qb5000Config, QueryBot5000,
};
use qb_forecast::LinearRegression;
use qb_testkit::scenario::{run_scenario, scenario_from_env, ScenarioCase};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{ChurnScenario, TraceConfig, CHURN_SCENARIOS};

const HORIZONS: &[usize] = &[1, 6];
const WIDTHS: &[usize] = &[1, 4];

/// The checked-in seed list (also the CI matrix).
const SEEDS: &[u64] = &[0x5EED_CAFE, 0x0DDB_A11];

#[test]
fn scenario_matrix() {
    let mut ran = 0;
    // At churn intensity 0 every scenario collapses to the same stable
    // base population (gated churn templates consume no RNG), so results
    // must be identical across scenarios for a given (fault, seed) cell.
    let mut zero_churn: std::collections::BTreeMap<(u64, u64), (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for &scenario in &CHURN_SCENARIOS {
        for intensity in [0.0, 1.0] {
            for fault in [0.0, 1.0] {
                for &seed in SEEDS {
                    let case = ScenarioCase::new(scenario, intensity, fault, seed);
                    match run_scenario(&case, HORIZONS, WIDTHS) {
                        Ok(outcome) => {
                            assert!(outcome.num_clusters > 0);
                            if intensity == 0.0 {
                                let key = (fault.to_bits(), seed);
                                let row = (
                                    outcome.num_templates,
                                    outcome.num_clusters,
                                    outcome.cold_templates,
                                );
                                let prev = zero_churn.entry(key).or_insert(row);
                                assert_eq!(
                                    *prev, row,
                                    "churn-free results must be scenario-independent \
                                     ({scenario:?}, fault {fault}, seed {seed:#x})"
                                );
                            }
                            ran += 1;
                        }
                        Err(failure) => panic!("{failure}"),
                    }
                }
            }
        }
    }
    assert_eq!(ran, CHURN_SCENARIOS.len() * 2 * 2 * SEEDS.len());
}

/// The paper-motivating comparison: on burst-shaped churn (a feature
/// launch, tenant onboarding waves) the cluster-seeded cold-start
/// estimates must score a strictly better log-space MSE than the
/// wait-for-history baseline that serves nothing until a full window
/// accrues. Flash crowds are excluded by design — their 2-hour pulses may
/// already be over at settlement, where predicting 0 is optimal.
#[test]
fn cold_start_beats_wait_for_history_on_bursts() {
    for scenario in [ChurnScenario::FeatureLaunch, ChurnScenario::TenantOnboarding] {
        for &seed in SEEDS {
            let case = ScenarioCase::new(scenario, 1.0, 0.0, seed);
            let outcome = run_scenario(&case, HORIZONS, WIDTHS).unwrap_or_else(|f| panic!("{f}"));
            assert!(
                outcome.cold_templates > 0,
                "{scenario:?} seed {seed:#x}: churn must land templates in the \
                 new-template gap, got none"
            );
            let cold = outcome.cold_mse.expect("cold claims settled");
            let base = outcome.baseline_mse.expect("baseline claims settled");
            assert!(
                cold < base,
                "{scenario:?} seed {seed:#x}: cold-start MSE {cold} must beat \
                 wait-for-history {base} over {} templates",
                outcome.cold_templates
            );
        }
    }
}

/// Differential: at churn intensity 0 the cold-start-enabled pipeline is
/// byte-identical to today's — same exported pipeline state, and warm
/// forecasts bit-for-bit equal to a plain (no serving, no cold start)
/// pipeline over the same stream. Cold start only *adds* entries for
/// unrouted templates; it never perturbs ingest, clustering, or training.
#[test]
fn intensity_zero_cold_start_is_byte_identical_to_plain_pipeline() {
    let specs = vec![HorizonSpec {
        interval: Interval::HOUR,
        window: 24,
        horizon: 1,
        train_steps: 3 * 24,
    }];
    let cfg = TraceConfig { start: 0, days: 4, scale: 0.05, seed: SEEDS[0] };
    let events: Vec<_> = ChurnScenario::SchemaMigration.generator(cfg, 0.0).collect();
    let now = 4 * MINUTES_PER_DAY;

    let run = |config: Qb5000Config| {
        let mut bot = QueryBot5000::new(config);
        for ev in &events {
            bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("valid SQL");
        }
        bot.update_clusters(now);
        let mut mgr =
            ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
        mgr.ensure_trained(&bot, now).expect("training succeeds");
        let bits: Vec<u64> = mgr.predict(&bot, now, 0).iter().map(|v| v.to_bits()).collect();
        (bot.export_state(), bits)
    };

    let (plain_state, plain_bits) = run(Qb5000Config::default());
    let service = ForecastService::for_specs(&specs);
    let (cold_state, cold_bits) = run(
        Qb5000Config::builder()
            .serve(service.clone())
            .cold_start(true)
            .build()
            .expect("served cold-start config is valid"),
    );
    assert_eq!(plain_state, cold_state, "pipeline state diverged with cold start on");
    assert_eq!(plain_bits, cold_bits, "warm forecasts diverged with cold start on");
    assert!(service.epoch() >= 1, "the cold-start pipeline still published");
}

/// The receiving end of the repro line every failure prints: replays
/// exactly one env-specified case with verbose output.
#[test]
fn single_scenario_repro() {
    let case = scenario_from_env();
    println!("replaying {case:?}");
    match run_scenario(&case, HORIZONS, WIDTHS) {
        Ok(outcome) => println!("ok: {outcome:?}"),
        Err(failure) => panic!("{failure}"),
    }
}
