//! Golden-trace regression suite.
//!
//! Each case in `qb_testkit::golden::CASES` replays a seeded mini trace
//! through the full pipeline and diffs the JSON summary (template counts,
//! cluster membership, per-horizon log-space MSE) byte-for-byte against
//! `crates/testkit/fixtures/<name>.json`. Regenerate after an intentional
//! behavior change with:
//!
//! ```text
//! QB_BLESS_GOLDEN=1 cargo test -p qb-testkit --test golden_traces
//! ```

use qb_testkit::golden::{capture, check_or_bless, CASES};

#[test]
fn golden_traces_match_fixtures() {
    for case in CASES {
        check_or_bless(case.name, &capture(case));
    }
}

/// Blessing must be reproducible: capturing the same case twice yields
/// byte-identical JSON (guards against hidden nondeterminism sneaking into
/// the pipeline or the summary renderer).
#[test]
fn capture_is_deterministic() {
    for case in CASES {
        assert_eq!(capture(case), capture(case), "capture of {} not reproducible", case.name);
    }
}
