//! Trace determinism (sim invariant 6) and the issue's acceptance
//! criteria: for seeded runs, `explain()` on an index-build decision and
//! on a degradation transition returns a complete causal chain that is
//! bit-identical across thread-pool widths 1 and 4, and the Chrome trace
//! export is valid JSON with at least one complete span per stage.

use qb5000::{ControllerConfig, EventKind, IndexSelectionExperiment, Strategy, Tracer};
use qb_forecast::{DegradationLevel, ForecastError, Forecaster, LinearRegression, WindowSpec};
use qb_testkit::sim::{run_traced, SimCase};
use qb_timeseries::MINUTES_PER_DAY;
use qb_workloads::Workload;

fn lr() -> Box<dyn Forecaster> {
    Box::new(LinearRegression::default())
}

/// Sim stream + fit lineage + dumps are byte-identical at widths 1 and 4,
/// on both a clean and a heavily-faulted case.
#[test]
fn traced_stream_bit_identical_across_widths() {
    for intensity in [0.0, 1.0] {
        let case = SimCase::new(Workload::Admissions, intensity, 0x5EED_CAFE);
        let outcomes = run_traced(&case, &[1, 12], &[1, 4], lr).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(outcomes.len(), 2);
        let first = &outcomes[0];
        assert!(first.stream.contains("ModelFit"), "no fit in stream:\n{}", first.stream);
        assert!(
            first.fit_lineage.contains("ClustersUpdated"),
            "fit lineage misses the cluster snapshot:\n{}",
            first.fit_lineage
        );
    }
}

/// Same seed, same case, two independent replays: `explain()` and the
/// deterministic stream are byte-stable across runs.
#[test]
fn explain_is_byte_stable_across_runs_with_same_seed() {
    let case = SimCase::new(Workload::Mooc, 0.5, 0xB5EED);
    let a = run_traced(&case, &[1], &[2], lr).unwrap_or_else(|f| panic!("{f}"));
    let b = run_traced(&case, &[1], &[2], lr).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(a[0].stream, b[0].stream, "stream not byte-stable across runs");
    assert_eq!(a[0].fit_lineage, b[0].fit_lineage, "explain() not byte-stable across runs");
}

/// A model that fits fine but reports the degradation level a shared
/// switch dictates — deterministically trips a downgrade transition.
struct ReportsSingle(LinearRegression);

impl Forecaster for ReportsSingle {
    fn name(&self) -> &'static str {
        "SINGLE"
    }
    fn degradation(&self) -> DegradationLevel {
        DegradationLevel::Single
    }
    fn fit(&mut self, series: &[Vec<f64>], spec: WindowSpec) -> Result<(), ForecastError> {
        self.0.fit(series, spec)
    }
    fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        self.0.predict(recent)
    }
}

/// A degradation transition's lineage is complete and bit-identical
/// across widths, and the downgrade snapshots a "degraded" dump.
#[test]
fn degradation_lineage_bit_identical_across_widths() {
    let case = SimCase::new(Workload::BusTracker, 0.0, 0xD00DAD);
    let outcomes = run_traced(&case, &[1], &[1, 4], || {
        Box::new(ReportsSingle(LinearRegression::default())) as Box<dyn Forecaster>
    })
    .unwrap_or_else(|f| panic!("{f}"));

    let mut lineages = Vec::new();
    for out in &outcomes {
        let transition = out
            .view
            .latest(EventKind::DegradationTransition)
            .unwrap_or_else(|| panic!("no transition at width {}:\n{}", out.width, out.stream));
        let lineage = out.view.explain(transition.id);
        for needed in ["DegradationTransition", "ModelFit", "ClustersUpdated"] {
            assert!(lineage.contains(needed), "{needed} missing from lineage:\n{lineage}");
        }
        assert!(
            out.dumps.iter().any(|d| d.reason == "degraded"),
            "downgrade did not snapshot a dump at width {}",
            out.width
        );
        lineages.push(lineage);
    }
    assert_eq!(lineages[0], lineages[1], "degradation lineage diverged across widths");
}

fn experiment_config(threads: usize, tracer: Tracer) -> ControllerConfig {
    ControllerConfig::builder()
        .workload(Workload::BusTracker)
        .strategy(Strategy::Auto)
        .db_scale(0.05)
        .history_days(2)
        .run_hours(4)
        .trace_scale(0.02)
        .index_budget(4)
        .build_period(60)
        .report_window(60)
        .run_start(7 * MINUTES_PER_DAY)
        .seed(9)
        .threads(threads)
        .trace(tracer)
        .build()
        .expect("experiment config is valid")
}

/// Acceptance: `explain()` on an index-build decision reconstructs the
/// full chain (blend → per-horizon forecasts → fits → cluster state) and
/// the whole retained trace is bit-identical at threads 1 vs 4; the
/// Chrome export is valid JSON with complete spans for every stage.
#[test]
fn index_build_lineage_bit_identical_across_widths() {
    let mut per_width = Vec::new();
    for threads in [1usize, 4] {
        let tracer = Tracer::enabled();
        let result = IndexSelectionExperiment::new(experiment_config(threads, tracer.clone())).run();
        assert!(!result.indexes.is_empty(), "AUTO built no indexes at threads {threads}");
        let view = tracer.view();
        let built = view.latest(EventKind::IndexBuilt).expect("an IndexBuilt event was traced");
        per_width.push((threads, view.deterministic_stream(), view.explain(built.id), view));
    }
    let (_, stream_1, lineage_1, view) = &per_width[0];
    let (_, stream_4, lineage_4, _) = &per_width[1];
    assert_eq!(stream_1, stream_4, "event stream diverged across thread widths");
    assert_eq!(lineage_1, lineage_4, "index-build lineage diverged across thread widths");
    for needed in ["IndexBuilt", "ForecastBlended", "ForecastIssued", "ModelFit", "ClustersUpdated"]
    {
        assert!(lineage_1.contains(needed), "{needed} missing:\n{lineage_1}");
    }

    // Acceptance: the Chrome export is valid JSON with at least one
    // complete ("X") span per pipeline stage.
    let chrome = view.to_chrome_json();
    let parsed = qb5000::parse_json(&chrome).expect("chrome export parses as JSON");
    let spans = parsed.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array");
    assert!(!spans.is_empty(), "chrome export is empty");
    for stage in [
        "controller.round",
        "advisor.select",
        "pipeline.update_clusters",
        "clusterer.update",
        "forecast.blend",
    ] {
        assert!(
            spans.iter().any(|s| {
                s.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && s.get("name").and_then(|n| n.as_str()) == Some(stage)
            }),
            "no complete span for stage {stage}"
        );
    }
}
