//! Differential tests: optimized implementations vs. naive oracles.
//!
//! Each test feeds identical inputs to the production path and to an
//! independently derived reference from `qb_testkit::oracle`, then checks
//! agreement at the contract each pair documents:
//!
//! * online clusterer vs. [`ReferenceClusterer`] — **exact** (the update
//!   rule is deterministic; seeds are printed on failure);
//! * online clusterer vs. batch DBSCAN — exact on well-separated data,
//!   Rand index ≥ 0.8 on arbitrary data (online assignment is an
//!   approximation of the batch fixpoint);
//! * `LinearRegression` vs. [`NormalEquationsLr`] — same closed form via
//!   different factorizations, `|a − b| ≤ 1e-6 · (1 + |a|)`;
//! * AST templatizer vs. [`naive_template`] — identical induced
//!   partitions over the seeded corpus (template *strings* differ).

use std::collections::BTreeMap;

use qb_clusterer::{
    ClustererConfig, OnlineClusterer, SimilarityMetric, TemplateFeature, TemplateSnapshot,
};
use qb_forecast::{Forecaster, LinearRegression, WindowSpec};
use qb_testkit::corpus;
use qb_testkit::oracle::{
    batch_dbscan, naive_template, online_partition, pairwise_agreement, NormalEquationsLr,
    ReferenceClusterer,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// --- clusterer vs. reference ---

const DIM: usize = 8;

/// Draws one arrival-rate-like feature: a scaled copy of one of a few
/// prototype patterns plus noise, so clusters, reassignments, and merges
/// all actually happen.
fn random_feature(rng: &mut SmallRng) -> Vec<f64> {
    const PROTOTYPES: [[f64; DIM]; 4] = [
        [1.0, 2.0, 4.0, 8.0, 8.0, 4.0, 2.0, 1.0],
        [9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0],
        [1.0, 1.0, 1.0, 1.0, 6.0, 6.0, 6.0, 6.0],
        [5.0, 5.0, 0.0, 0.0, 0.0, 0.0, 5.0, 5.0],
    ];
    let proto = PROTOTYPES[rng.gen_range(0..PROTOTYPES.len())];
    let scale = 0.5 + 5.0 * rng.gen_range(0.0..1.0f64);
    proto
        .iter()
        .map(|v| (v * scale + rng.gen_range(0.0..1.5f64)).max(0.0))
        .collect()
}

/// One round of snapshots: refreshed features for live keys, a few new
/// keys (sometimes masked), occasionally an old `last_seen` to trigger
/// eviction later.
fn random_round(
    rng: &mut SmallRng,
    next_key: &mut u64,
    live: &mut Vec<u64>,
    now: i64,
) -> Vec<TemplateSnapshot> {
    let mut snaps = Vec::new();
    for &key in live.iter() {
        // Most templates keep arriving; ~1 in 6 goes quiet (stale
        // last_seen => eventual eviction).
        let last_seen = if rng.gen_range(0..6u32) == 0 { now - 10_000 } else { now - 1 };
        snaps.push(TemplateSnapshot {
            key,
            feature: TemplateFeature::full(random_feature(rng)),
            volume: rng.gen_range(1.0..100.0f64),
            last_seen,
        });
    }
    for _ in 0..rng.gen_range(2..6usize) {
        let key = *next_key;
        *next_key += 1;
        live.push(key);
        let mut feature = TemplateFeature::full(random_feature(rng));
        // A third of new templates are young: mask their older coordinates
        // (the §5.1 "available timestamps" rule).
        if rng.gen_range(0..3u32) == 0 {
            feature.valid_from = rng.gen_range(1..DIM / 2);
        }
        snaps.push(TemplateSnapshot { key, feature, volume: rng.gen_range(1.0..100.0f64), last_seen: now - 1 });
    }
    snaps
}

fn assert_matches_reference(metric: SimilarityMetric, seed: u64) {
    let config = ClustererConfig {
        rho: 0.8,
        metric,
        eviction_idle: 5_000,
        ..ClustererConfig::default()
    };
    let mut online = OnlineClusterer::new(config.clone());
    let mut reference = ReferenceClusterer::new(config.rho, metric, config.eviction_idle);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_key = 0u64;
    let mut live: Vec<u64> = Vec::new();
    for round in 0..8 {
        let now = (round + 1) * 2_000;
        let snaps = random_round(&mut rng, &mut next_key, &mut live, now);

        let online_report = online.update(snaps.clone(), now);
        let ref_report = reference.update(snaps, now);
        assert_eq!(
            online_report, ref_report,
            "update reports diverged (seed {seed:#x}, round {round}, metric {metric:?})"
        );

        let expected = reference.partition();
        let got = online_partition(&online, expected.keys().copied());
        assert_eq!(
            got, expected,
            "partitions diverged (seed {seed:#x}, round {round}, metric {metric:?})"
        );

        // Centers are arithmetic means over the same members in the same
        // order on both sides — they must agree bit for bit.
        assert_eq!(online.num_clusters(), reference.num_clusters());
        for cluster in online.clusters() {
            let rc = &reference.clusters()[&cluster.id.0];
            assert_eq!(
                cluster.center, rc.center,
                "center {:?} diverged (seed {seed:#x}, round {round}, metric {metric:?})",
                cluster.id
            );
        }

        live.retain(|k| expected.contains_key(k));
    }
}

#[test]
fn clusterer_matches_reference_cosine() {
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003, 0x5EED_0004, 0x5EED_0005] {
        assert_matches_reference(SimilarityMetric::Cosine, seed);
    }
}

#[test]
fn clusterer_matches_reference_inverse_l2() {
    for seed in [0xB0B_0001u64, 0xB0B_0002, 0xB0B_0003] {
        assert_matches_reference(SimilarityMetric::InverseL2, seed);
    }
}

#[test]
fn clusterer_matches_reference_on_exact_ties() {
    // Random corpora never hit exact similarity ties, so build one by
    // hand: two clusters founded from *bit-identical* features in separate
    // rounds (so they never merge-by-id order accident), then a template
    // equidistant from both. Both sides must resolve the tie to the lowest
    // cluster id; `Iterator::max_by`-style last-max scans fail here.
    // Geometry (all coordinates exactly representable): founders at 0 and
    // 1 have similarity 1/(1+1) = 0.5 < ρ, so they stay separate; the tie
    // template at 0.5 sees 1/1.5 ≈ 0.667 > ρ to *both*; after it joins
    // cluster 0, the moved center (0.25) is 0.75 from the other founder —
    // 1/1.75 ≈ 0.571 < ρ, so no merge hides the decision.
    let config = ClustererConfig {
        rho: 0.6,
        metric: SimilarityMetric::InverseL2,
        eviction_idle: 1_000_000,
        ..ClustererConfig::default()
    };
    let mut online = OnlineClusterer::new(config.clone());
    let mut reference = ReferenceClusterer::new(config.rho, config.metric, config.eviction_idle);

    let snap = |key: u64, values: Vec<f64>| TemplateSnapshot {
        key,
        feature: TemplateFeature::full(values),
        volume: 1.0,
        last_seen: 0,
    };
    let r1 = vec![snap(0, vec![0.0, 0.0]), snap(1, vec![1.0, 0.0])];
    // Round 2: the tie — equidistant from both (bit-identical similarity).
    let r2 = vec![snap(0, vec![0.0, 0.0]), snap(1, vec![1.0, 0.0]), snap(2, vec![0.5, 0.0])];
    for (round, snaps) in [r1, r2].into_iter().enumerate() {
        let a = online.update(snaps.clone(), round as i64);
        let b = reference.update(snaps, round as i64);
        assert_eq!(a, b, "reports diverged in tie round {round}");
    }
    let expected = reference.partition();
    let got = online_partition(&online, expected.keys().copied());
    assert_eq!(got, expected, "tie resolved differently from the reference");
    // And the reference itself must put the tied template in cluster 0.
    assert_eq!(expected[&2], 0, "oracle must break ties to the lowest id");
}

// --- clusterer vs. batch DBSCAN ---

#[test]
fn online_equals_batch_dbscan_on_well_separated_patterns() {
    // Scaled copies of orthogonal-ish prototypes: every pairwise
    // similarity is far from ρ on both sides of the threshold, so the
    // online greedy order cannot matter and the partitions must be equal.
    let mut rng = SmallRng::seed_from_u64(0xD85C);
    let prototypes: [[f64; 6]; 3] = [
        [1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0, 0.0, 0.0, 1.0],
    ];
    let features: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let scale = 1.0 + rng.gen_range(0.0..9.0f64);
            prototypes[i % 3].iter().map(|v| v * scale).collect()
        })
        .collect();

    let batch = batch_dbscan(&features, 0.8);

    let mut online = OnlineClusterer::new(ClustererConfig::default());
    let snaps: Vec<TemplateSnapshot> = features
        .iter()
        .enumerate()
        .map(|(i, f)| TemplateSnapshot {
            key: i as u64,
            feature: TemplateFeature::full(f.clone()),
            volume: 1.0,
            last_seen: 0,
        })
        .collect();
    online.update(snaps, 0);
    let online_labels: Vec<usize> = (0..features.len())
        .map(|i| online.cluster_of(i as u64).expect("assigned").0 as usize)
        .collect();

    let agreement = pairwise_agreement(&batch, &online_labels);
    assert_eq!(agreement, 1.0, "well-separated data must partition identically");
    assert_eq!(online.num_clusters(), 3);
}

#[test]
fn online_within_rand_tolerance_of_batch_dbscan_on_mixed_data() {
    // Arbitrary data, including pairs near the ρ boundary: the online
    // single-pass assignment may split what batch DBSCAN chains together
    // (batch connectivity is transitive, online assignment is not).
    // Documented tolerance: Rand index ≥ 0.8.
    for seed in [1u64, 2, 3] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let features: Vec<Vec<f64>> =
            (0..80).map(|_| (0..DIM).map(|_| rng.gen_range(0.0..10.0f64)).collect()).collect();
        let batch = batch_dbscan(&features, 0.8);

        let mut online = OnlineClusterer::new(ClustererConfig::default());
        let snaps: Vec<TemplateSnapshot> = features
            .iter()
            .enumerate()
            .map(|(i, f)| TemplateSnapshot {
                key: i as u64,
                feature: TemplateFeature::full(f.clone()),
                volume: 1.0,
                last_seen: 0,
            })
            .collect();
        online.update(snaps, 0);
        let online_labels: Vec<usize> = (0..features.len())
            .map(|i| online.cluster_of(i as u64).expect("assigned").0 as usize)
            .collect();

        let agreement = pairwise_agreement(&batch, &online_labels);
        assert!(
            agreement >= 0.8,
            "Rand index {agreement} below documented 0.8 floor (seed {seed:#x})"
        );
    }
}

// --- LR vs. normal equations ---

#[test]
fn lr_matches_normal_equations_oracle() {
    for seed in [0x11u64, 0x22, 0x33] {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Three clusters of periodic-plus-noise rates, 200 steps.
        let series: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                (0..200)
                    .map(|t| {
                        let phase = (t % (12 + c)) as f64 / (12 + c) as f64;
                        40.0 + 30.0 * (phase * std::f64::consts::TAU).sin().abs()
                            + rng.gen_range(0.0..5.0f64)
                    })
                    .collect()
            })
            .collect();

        for (window, horizon) in [(12usize, 1usize), (24, 6)] {
            let spec = WindowSpec { window, horizon };
            let mut lr = LinearRegression::default();
            lr.fit(&series, spec).expect("fit");
            let mut oracle = NormalEquationsLr::new(lr.lambda);
            oracle.fit(&series, window, horizon).expect("oracle fit");

            // Compare predictions from several distinct recent windows.
            for start in [100usize, 140, 176] {
                let recent: Vec<Vec<f64>> =
                    series.iter().map(|s| s[start..start + window].to_vec()).collect();
                let a = lr.predict(&recent);
                let b = oracle.predict(&recent);
                for (c, (&x, &y)) in a.iter().zip(&b).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-6 * (1.0 + x.abs()),
                        "LR diverged from normal equations (seed {seed:#x}, \
                         window {window}, horizon {horizon}, cluster {c}): {x} vs {y}"
                    );
                }
            }
        }
    }
}

// --- templatizer vs. naive re-templatizer ---

#[test]
fn templatizer_partition_matches_naive_oracle() {
    for seed in [0xA5u64, 0xA6, 0xA7] {
        let corpus = corpus::generate(seed, 400);

        // Group statement indices by each side's template key.
        let mut by_ast: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_naive: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, sql) in corpus.iter().enumerate() {
            let stmt = qb_sqlparse::parse_statement(sql)
                .unwrap_or_else(|e| panic!("corpus must parse: `{sql}`: {e}"));
            let ast_key = qb_preprocessor::templatize(&stmt).text;
            by_ast.entry(ast_key).or_default().push(i);
            by_naive.entry(naive_template(sql)).or_default().push(i);
        }

        // The partitions must be identical: same groups of statement
        // indices, regardless of what each side calls the template.
        let mut ast_groups: Vec<Vec<usize>> = by_ast.into_values().collect();
        let mut naive_groups: Vec<Vec<usize>> = by_naive.into_values().collect();
        ast_groups.sort();
        naive_groups.sort();
        assert_eq!(
            ast_groups, naive_groups,
            "templatizer partitions diverged on corpus seed {seed:#x}"
        );
    }
}
