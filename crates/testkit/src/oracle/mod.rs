//! Reference oracles: naive implementations the optimized code must match.
//!
//! Each oracle re-derives its math from the paper's description with the
//! simplest possible data structures (linear scans, full rescans, dense
//! Gauss–Jordan solves) instead of sharing the optimized crates' internals,
//! so a bug in a kd-tree, an incremental similarity table, or a Cholesky
//! path cannot hide in both sides of the comparison.

mod dbscan;
mod lr;
mod reference_clusterer;
mod retemplate;

pub use dbscan::{batch_dbscan, pairwise_agreement};
pub use lr::NormalEquationsLr;
pub use reference_clusterer::{online_partition, ReferenceClusterer};
pub use retemplate::naive_template;

/// Cosine similarity, accumulated in index order (the same order as
/// `qb-linalg`) and clamped to `[-1, 1]`. Zero-norm inputs yield 0.
pub(crate) fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..a.len() {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    let (na, nb) = (na.sqrt(), nb.sqrt());
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Euclidean distance (for the inverse-L2 ablation metric).
pub(crate) fn l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l2: length mismatch");
    let mut s = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}
