//! Normal-equations linear-regression oracle (§6.1).
//!
//! `qb_forecast::LinearRegression` solves the ridge-regularized normal
//! equations with a Cholesky factorization (LU fallback) over matrices
//! built by `sliding_windows`. This oracle re-derives everything from the
//! paper's description with no shared code: it builds its own log-space
//! design matrix from the raw series and solves `(XᵀX + λI) w = Xᵀy` by
//! dense Gauss–Jordan elimination with partial pivoting.
//!
//! Agreement contract: both sides compute the same closed-form solution,
//! but through different factorizations, so weights and predictions agree
//! only up to round-off. The differential test uses
//! `|a − b| ≤ ε · (1 + |a|)` with ε = 1e-6 — orders of magnitude above
//! observed round-off for the well-conditioned ridge systems (λ > 0 keeps
//! the Gram matrix SPD) yet far below any real regression defect.

/// Naive ridge regression: one jointly-trained multi-output linear map,
/// matching `LinearRegression`'s geometry (window·clusters + bias inputs,
/// one output per cluster, log1p space).
pub struct NormalEquationsLr {
    pub lambda: f64,
    window: usize,
    horizon: usize,
    clusters: usize,
    /// `(window·clusters + 1) × clusters`, last row = bias.
    weights: Vec<Vec<f64>>,
}

impl NormalEquationsLr {
    pub fn new(lambda: f64) -> Self {
        Self { lambda, window: 0, horizon: 0, clusters: 0, weights: Vec::new() }
    }

    /// Fits on cluster-major series. Returns `Err` for inputs the
    /// optimized model would also reject (too short, ragged).
    pub fn fit(&mut self, series: &[Vec<f64>], window: usize, horizon: usize) -> Result<(), String> {
        if series.is_empty() {
            return Err("no cluster series".into());
        }
        let len = series[0].len();
        if series.iter().any(|s| s.len() != len) {
            return Err("ragged series".into());
        }
        if len < window + horizon {
            return Err(format!("need {} steps, got {len}", window + horizon));
        }
        let clusters = series.len();
        let n = len - window - horizon + 1;
        let d = window * clusters + 1; // + bias
        // Design matrix rows: [ln1p(s_c[i..i+window]) for every c] ++ [1].
        let mut x = vec![vec![0.0; d]; n];
        let mut y = vec![vec![0.0; clusters]; n];
        for i in 0..n {
            for (c, s) in series.iter().enumerate() {
                for w in 0..window {
                    x[i][c * window + w] = s[i + w].max(0.0).ln_1p();
                }
                y[i][c] = s[i + window + horizon - 1].max(0.0).ln_1p();
            }
            x[i][d - 1] = 1.0;
        }
        // Gram = XᵀX + λI, rhs = XᵀY.
        let mut gram = vec![vec![0.0; d]; d];
        let mut rhs = vec![vec![0.0; clusters]; d];
        for row in 0..n {
            for a in 0..d {
                for b in 0..d {
                    gram[a][b] += x[row][a] * x[row][b];
                }
                for t in 0..clusters {
                    rhs[a][t] += x[row][a] * y[row][t];
                }
            }
        }
        for (i, row) in gram.iter_mut().enumerate() {
            row[i] += self.lambda;
        }
        // Gauss–Jordan with partial pivoting on the augmented system.
        for col in 0..d {
            let pivot_row = (col..d)
                .max_by(|&a, &b| gram[a][col].abs().total_cmp(&gram[b][col].abs()))
                .expect("non-empty range");
            if gram[pivot_row][col].abs() == 0.0 {
                return Err(format!("singular system at column {col}"));
            }
            gram.swap(col, pivot_row);
            rhs.swap(col, pivot_row);
            let pivot = gram[col][col];
            for j in 0..d {
                gram[col][j] /= pivot;
            }
            for t in 0..clusters {
                rhs[col][t] /= pivot;
            }
            for r in 0..d {
                if r == col {
                    continue;
                }
                let factor = gram[r][col];
                if factor == 0.0 {
                    continue;
                }
                for j in 0..d {
                    gram[r][j] -= factor * gram[col][j];
                }
                for t in 0..clusters {
                    rhs[r][t] -= factor * rhs[col][t];
                }
            }
        }
        self.window = window;
        self.horizon = horizon;
        self.clusters = clusters;
        self.weights = rhs;
        Ok(())
    }

    /// Predicts from the last `window` steps of each cluster, mirroring
    /// `LinearRegression::predict`'s decode: `expm1(max(·, 0))` clamp.
    ///
    /// # Panics
    /// Panics if called before [`NormalEquationsLr::fit`].
    pub fn predict(&self, recent: &[Vec<f64>]) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "NormalEquationsLr::predict before fit");
        assert_eq!(recent.len(), self.clusters, "cluster count changed");
        let d = self.window * self.clusters + 1;
        let mut x = vec![0.0; d];
        for (c, s) in recent.iter().enumerate() {
            assert!(s.len() >= self.window, "cluster {c} shorter than window");
            let tail = &s[s.len() - self.window..];
            for (w, &v) in tail.iter().enumerate() {
                x[c * self.window + w] = v.max(0.0).ln_1p();
            }
        }
        x[d - 1] = 1.0;
        (0..self.clusters)
            .map(|t| {
                let yhat: f64 = x.iter().zip(&self.weights).map(|(&xi, row)| xi * row[t]).sum();
                yhat.exp_m1().max(0.0)
            })
            .collect()
    }

    /// The solved weight matrix, row-major `(window·clusters + 1) × clusters`.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_map_in_log_space() {
        // y[t] = s[t] (horizon 1, identity on the last window slot) is
        // representable exactly; the fit should drive training error ~0.
        let series: Vec<f64> = (0..100).map(|t| (t % 7) as f64 + 1.0).collect();
        let mut lr = NormalEquationsLr::new(1e-9);
        lr.fit(&[series.clone()], 7, 1).unwrap();
        let pred = lr.predict(&[series[..50].to_vec()]);
        let expected = series[50 - 1 + 1]; // period-7 repeats
        assert!((pred[0] - expected).abs() < 1e-3, "{} vs {expected}", pred[0]);
    }

    #[test]
    fn rejects_short_series() {
        let mut lr = NormalEquationsLr::new(1e-3);
        assert!(lr.fit(&[vec![1.0; 3]], 4, 1).is_err());
    }
}
