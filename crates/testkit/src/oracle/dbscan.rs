//! Batch DBSCAN oracle (§5.2's starting point).
//!
//! QB5000's online clusterer approximates DBSCAN with `minPts = 1` over
//! the similarity graph: a point is density-reachable from another when
//! their similarity exceeds ρ, and with `minPts = 1` every point is a core
//! point, so clusters are exactly the connected components of the
//! ρ-similarity graph. This module computes those components directly —
//! O(n²) pairwise similarities plus a union-find — over the *full* feature
//! vectors of the entire history.
//!
//! Agreement contract (documented tolerances):
//!
//! * On **well-separated** workloads (within-pattern similarity above ρ,
//!   cross-pattern similarity below ρ, both with margin), the online
//!   clusterer converges to the same partition — the differential test
//!   asserts exact equality.
//! * On arbitrary inputs the online variant is a genuine approximation:
//!   it compares templates to cluster *centers* rather than to every
//!   member, so a similarity chain that batch DBSCAN follows transitively
//!   can be split online (and center drift can merge what DBSCAN keeps
//!   apart). There the test asserts [`pairwise_agreement`] ≥ 0.8 — the
//!   Rand-index floor observed with margin on seeded random corpora.

/// Connected components of the ρ-similarity graph under cosine similarity.
///
/// Returns one label per input; labels are the smallest input index in the
/// component, so they are canonical for direct comparison.
pub fn batch_dbscan(features: &[Vec<f64>], rho: f64) -> Vec<usize> {
    let n = features.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..n {
        for j in i + 1..n {
            if super::cosine(&features[i], &features[j]) > rho {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    // Smaller root wins so labels stay canonical.
                    let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                    parent[hi] = lo;
                }
            }
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

/// Rand index between two labelings of the same items: the fraction of
/// item *pairs* on which the labelings agree (both together or both
/// apart). 1.0 means identical partitions.
pub fn pairwise_agreement(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "pairwise_agreement: length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in i + 1..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthogonal_points_stay_apart() {
        let labels = batch_dbscan(&[vec![1.0, 0.0], vec![0.0, 1.0]], 0.8);
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn scaled_copies_cluster_together() {
        let labels = batch_dbscan(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![5.0, 0.1]], 0.8);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn transitive_chain_is_one_component() {
        // a ~ b and b ~ c but a !~ c: DBSCAN (minPts = 1) still joins all
        // three — the defining difference from center-based assignment.
        let a = vec![1.0, 0.0];
        let b = vec![1.0, 1.0];
        let c = vec![0.0, 1.0];
        let labels = batch_dbscan(&[a.clone(), b.clone(), c.clone()], 0.6);
        assert!(super::super::cosine(&a, &c) < 0.6);
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn rand_index_bounds() {
        assert_eq!(pairwise_agreement(&[0, 0, 1], &[5, 5, 9]), 1.0);
        assert_eq!(pairwise_agreement(&[0, 0], &[0, 1]), 0.0);
    }
}
