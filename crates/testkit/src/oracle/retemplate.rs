//! Straight-line re-templatizer oracle (§4's constant stripping).
//!
//! The production templatizer lexes, parses, walks the AST, and formats
//! canonically. This oracle never builds a tree: one left-to-right pass
//! over the raw SQL text replaces literals with `?`, uppercases words,
//! collapses whitespace, and normalizes placeholder lists — nothing more.
//!
//! Agreement contract: over the generated corpus (the Table 1
//! SELECT/INSERT/UPDATE/DELETE mix, integer and string literals, no
//! comments or quoted identifiers), two statements receive the same naive
//! template **iff** the AST templatizer gives them the same template text.
//! The differential test compares the induced partitions, not the template
//! strings themselves — the two sides canonicalize differently, but they
//! must agree on *which statements share a template*.
//!
//! Mirrored normalizations (both sides must treat these alike):
//! * an IN list of constants collapses to a single placeholder;
//! * a batched INSERT collapses to a one-row template (per-column arity
//!   kept);
//! * `LIMIT` / `OFFSET` constants are preserved verbatim (they change the
//!   planner's view of the query and stay part of the template identity).

/// Computes the naive template of one SQL statement.
pub fn naive_template(sql: &str) -> String {
    let chars: Vec<char> = sql.chars().collect();
    let n = chars.len();
    let mut tokens: Vec<String> = Vec::new();
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            // String literal ('' escapes a quote) → placeholder.
            i += 1;
            while i < n {
                if chars[i] == '\'' {
                    if i + 1 < n && chars[i + 1] == '\'' {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            tokens.push("?".into());
        } else if c.is_ascii_digit() {
            let start = i;
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            // LIMIT/OFFSET constants are part of the template identity.
            let keep = matches!(
                tokens.last().map(String::as_str),
                Some("LIMIT") | Some("OFFSET")
            );
            if keep {
                tokens.push(chars[start..i].iter().collect());
            } else {
                tokens.push("?".into());
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            tokens.push(word.to_ascii_uppercase());
        } else {
            // Multi-char comparison operators count as one token.
            let two: String = chars[i..n.min(i + 2)].iter().collect();
            if matches!(two.as_str(), "<=" | ">=" | "<>" | "!=") {
                tokens.push(two);
                i += 2;
            } else {
                tokens.push(c.to_string());
                i += 1;
            }
        }
    }
    let tokens = collapse_placeholder_lists(tokens);
    let tokens = collapse_repeated_rows(tokens);
    tokens.join(" ")
}

/// `( ? , ? , ? )` → `( ? )`: mirrors the AST templatizer's IN-list
/// collapse. Lists mixing placeholders with anything else are untouched.
fn collapse_placeholder_lists(tokens: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == "(" {
            // Find the matching close paren of a flat run.
            let mut j = i + 1;
            let mut only_placeholders = true;
            let mut saw_placeholder = false;
            while j < tokens.len() && tokens[j] != "(" && tokens[j] != ")" {
                match tokens[j].as_str() {
                    "?" => saw_placeholder = true,
                    "," => {}
                    _ => only_placeholders = false,
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j] == ")" && only_placeholders && saw_placeholder {
                out.push("(".into());
                out.push("?".into());
                out.push(")".into());
                i = j + 1;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// `( ? ) , ( ? ) , ( ? )` → `( ? )`: mirrors the one-row collapse of
/// batched INSERTs (runs only after placeholder lists are collapsed, so a
/// row's arity has already folded into `( ? )`).
fn collapse_repeated_rows(tokens: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        out.push(tokens[i].clone());
        if i + 2 < tokens.len() && tokens[i] == "(" && tokens[i + 1] == "?" && tokens[i + 2] == ")"
        {
            out.push(tokens[i + 1].clone());
            out.push(tokens[i + 2].clone());
            i += 3;
            // Swallow any further `, ( ? )` repetitions.
            while i + 3 < tokens.len()
                && tokens[i] == ","
                && tokens[i + 1] == "("
                && tokens[i + 2] == "?"
                && tokens[i + 3] == ")"
            {
                i += 4;
            }
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_constants() {
        assert_eq!(
            naive_template("SELECT a FROM t WHERE id = 42 AND name = 'bob'"),
            "SELECT A FROM T WHERE ID = ? AND NAME = ?"
        );
    }

    #[test]
    fn in_list_collapses() {
        let a = naive_template("SELECT a FROM t WHERE id IN (1, 2)");
        let b = naive_template("SELECT a FROM t WHERE id IN (1, 2, 3, 4)");
        assert_eq!(a, b);
    }

    #[test]
    fn batched_insert_collapses_to_one_row() {
        let a = naive_template("INSERT INTO t (a, b) VALUES (1, 'x')");
        let b = naive_template("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')");
        assert_eq!(a, b);
    }

    #[test]
    fn limit_is_preserved() {
        let a = naive_template("SELECT a FROM t WHERE id = 1 LIMIT 10");
        let b = naive_template("SELECT a FROM t WHERE id = 1 LIMIT 20");
        assert_ne!(a, b);
        assert!(a.contains("LIMIT 10"), "{a}");
    }

    #[test]
    fn whitespace_and_case_normalize() {
        let a = naive_template("select  a from t\twhere id = 7");
        let b = naive_template("SELECT a FROM t WHERE id = 9");
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_digits_are_not_numbers() {
        let a = naive_template("SELECT a FROM t WHERE name = '123'");
        assert_eq!(a, "SELECT A FROM T WHERE NAME = ?");
    }
}
