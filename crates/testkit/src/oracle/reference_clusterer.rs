//! A linear-scan reference implementation of the online clusterer (§5.2).
//!
//! Mirrors the *semantics* of `qb_clusterer::OnlineClusterer` — the three
//! steps (assign / re-check / merge), frozen centers during step 1,
//! non-recursive moves, eviction, lowest-id tie-breaking — while replacing
//! every optimized structure with its naive counterpart:
//!
//! * nearest-center lookup is an O(k) scan over all clusters in ascending
//!   id order (no kd-tree, no fresh-cluster split);
//! * the merge step recomputes the full O(k²) pairwise similarity table
//!   from scratch on every iteration (no incremental row refresh);
//! * similarities are re-derived locally ([`super::cosine`], [`super::l2`])
//!   rather than borrowed from `qb-linalg`.
//!
//! The differential tests assert the optimized clusterer produces the
//! **identical** partition, cluster ids, centers, and update report on the
//! same snapshot stream. That equality is exact, not approximate: the
//! paper's update rule is deterministic, so any divergence is a bug in one
//! of the optimized structures (this oracle is how the kd-tree /
//! `scan_nearest` tie-breaking inconsistency was found and fixed).

use std::collections::BTreeMap;

use qb_clusterer::{
    ClusterId, OnlineClusterer, SimilarityMetric, TemplateFeature, TemplateKey, TemplateSnapshot,
    UpdateReport,
};

/// One reference cluster: member list in insertion order plus the
/// arithmetic-mean center.
#[derive(Debug, Clone)]
pub struct RefCluster {
    pub members: Vec<TemplateKey>,
    pub center: Vec<f64>,
    pub volume: f64,
}

#[derive(Debug, Clone)]
struct RefTemplate {
    feature: TemplateFeature,
    volume: f64,
    last_seen: i64,
    cluster: u64,
}

/// The naive clusterer. Construct with the same ρ / metric / eviction
/// window as the `OnlineClusterer` under test and feed both the same
/// snapshot stream.
pub struct ReferenceClusterer {
    rho: f64,
    metric: SimilarityMetric,
    eviction_idle: i64,
    templates: BTreeMap<TemplateKey, RefTemplate>,
    clusters: BTreeMap<u64, RefCluster>,
    next_cluster: u64,
}

impl ReferenceClusterer {
    pub fn new(rho: f64, metric: SimilarityMetric, eviction_idle: i64) -> Self {
        Self {
            rho,
            metric,
            eviction_idle,
            templates: BTreeMap::new(),
            clusters: BTreeMap::new(),
            next_cluster: 0,
        }
    }

    /// Masked similarity of a template feature against a center — the same
    /// rule as `TemplateFeature::similarity` (coordinates before
    /// `valid_from` are excluded), re-derived naively.
    fn similarity(&self, f: &TemplateFeature, center: &[f64]) -> f64 {
        match self.metric {
            SimilarityMetric::Cosine => {
                let from = f.valid_from;
                if from >= f.values.len() {
                    return 0.0;
                }
                super::cosine(&f.values[from..], &center[from..])
            }
            SimilarityMetric::InverseL2 => 1.0 / (1.0 + super::l2(&f.values, center)),
        }
    }

    fn center_similarity(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            SimilarityMetric::Cosine => super::cosine(a, b),
            SimilarityMetric::InverseL2 => 1.0 / (1.0 + super::l2(a, b)),
        }
    }

    /// O(k) nearest-center scan in ascending id order; ties keep the first
    /// (lowest-id) maximum. A zero-norm unmasked cosine query matches
    /// nothing, mirroring the optimized path's normalization guard.
    fn nearest(&self, f: &TemplateFeature) -> Option<(u64, f64)> {
        if self.clusters.is_empty() {
            return None;
        }
        if self.metric == SimilarityMetric::Cosine && f.valid_from == 0 {
            let norm_sq: f64 = f.values.iter().map(|v| v * v).sum();
            if norm_sq == 0.0 {
                return None;
            }
        }
        let mut best: Option<(u64, f64)> = None;
        for (&id, c) in &self.clusters {
            let sim = self.similarity(f, &c.center);
            if best.is_none_or(|(_, b)| sim > b) {
                best = Some((id, sim));
            }
        }
        best
    }

    fn recompute_center(&mut self, cid: u64) {
        let Some(cluster) = self.clusters.get(&cid) else { return };
        if cluster.members.is_empty() {
            self.clusters.remove(&cid);
            return;
        }
        let members = cluster.members.clone();
        let dim = self.templates[&members[0]].feature.values.len();
        let mut center = vec![0.0; dim];
        let mut volume = 0.0;
        for m in &members {
            let s = &self.templates[m];
            for (c, v) in center.iter_mut().zip(&s.feature.values) {
                *c += v;
            }
            volume += s.volume;
        }
        for c in &mut center {
            *c /= members.len() as f64;
        }
        let cluster = self.clusters.get_mut(&cid).expect("checked above");
        cluster.center = center;
        cluster.volume = volume;
    }

    fn recompute_all_centers(&mut self) {
        let ids: Vec<u64> = self.clusters.keys().copied().collect();
        for cid in ids {
            self.recompute_center(cid);
        }
    }

    fn assign(&mut self, key: TemplateKey, feature: TemplateFeature, volume: f64, last_seen: i64) -> bool {
        match self.nearest(&feature) {
            Some((cid, sim)) if sim > self.rho => {
                self.clusters.get_mut(&cid).expect("live cluster").members.push(key);
                self.templates.insert(key, RefTemplate { feature, volume, last_seen, cluster: cid });
                false
            }
            _ => {
                let cid = self.next_cluster;
                self.next_cluster += 1;
                self.clusters.insert(
                    cid,
                    RefCluster { members: vec![key], center: feature.values.clone(), volume },
                );
                self.templates.insert(key, RefTemplate { feature, volume, last_seen, cluster: cid });
                true
            }
        }
    }

    /// Full-rescan merge step: the similarity table is rebuilt from scratch
    /// before every merge decision — the oracle for the optimized
    /// incremental row-refresh table.
    fn merge_step(&mut self) -> usize {
        let mut merges = 0;
        loop {
            let ids: Vec<u64> = self.clusters.keys().copied().collect();
            let mut best: Option<((u64, u64), f64)> = None;
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    let sim = self.center_similarity(
                        &self.clusters[&ids[i]].center,
                        &self.clusters[&ids[j]].center,
                    );
                    if sim > self.rho && best.is_none_or(|(_, b)| sim > b) {
                        best = Some(((ids[i], ids[j]), sim));
                    }
                }
            }
            let Some(((a, b), _)) = best else { break };
            let (dst, src) = if self.clusters[&a].members.len() >= self.clusters[&b].members.len() {
                (a, b)
            } else {
                (b, a)
            };
            let moved = self.clusters.remove(&src).expect("listed").members;
            for m in &moved {
                self.templates.get_mut(m).expect("member tracked").cluster = dst;
            }
            self.clusters.get_mut(&dst).expect("listed").members.extend(moved);
            self.recompute_center(dst);
            merges += 1;
        }
        merges
    }

    /// The three-step update on one snapshot batch — same contract as
    /// `OnlineClusterer::update`, same report.
    pub fn update(&mut self, snapshots: Vec<TemplateSnapshot>, now: i64) -> UpdateReport {
        let mut report = UpdateReport::default();

        // Refresh known templates; collect genuinely new ones in order.
        let mut new_snaps = Vec::new();
        for snap in snapshots {
            match self.templates.get_mut(&snap.key) {
                Some(state) => {
                    state.feature = snap.feature;
                    state.volume = snap.volume;
                    state.last_seen = snap.last_seen;
                }
                None => new_snaps.push(snap),
            }
        }

        // Eviction.
        let cutoff = now - self.eviction_idle;
        let evicted: Vec<TemplateKey> = self
            .templates
            .iter()
            .filter(|(_, s)| s.last_seen < cutoff)
            .map(|(k, _)| *k)
            .collect();
        for k in evicted {
            let state = self.templates.remove(&k).expect("listed above");
            if let Some(c) = self.clusters.get_mut(&state.cluster) {
                c.members.retain(|m| *m != k);
                if c.members.is_empty() {
                    self.clusters.remove(&state.cluster);
                }
            }
            report.evicted += 1;
        }
        self.recompute_all_centers();

        // Step 2: re-check memberships (non-recursive; removals first).
        let mut to_reassign = Vec::new();
        for (&key, state) in &self.templates {
            let cluster = &self.clusters[&state.cluster];
            if cluster.members.len() == 1 {
                continue;
            }
            if self.similarity(&state.feature, &cluster.center) <= self.rho {
                to_reassign.push(key);
            }
        }
        for key in &to_reassign {
            let cid = self.templates[key].cluster;
            let c = self.clusters.get_mut(&cid).expect("member's cluster exists");
            c.members.retain(|m| m != key);
            if c.members.is_empty() {
                self.clusters.remove(&cid);
            }
        }
        self.recompute_all_centers();
        report.reassigned = to_reassign.len();

        // Step 1: assign new templates, then the step-2 removals. Centers
        // are frozen for the whole step (new clusters join the scan with
        // their founder's feature as center).
        report.new_templates = new_snaps.len();
        for snap in new_snaps {
            let created = self.assign(snap.key, snap.feature, snap.volume, snap.last_seen);
            report.clusters_created += usize::from(created);
        }
        for key in to_reassign {
            let state = self.templates.remove(&key).expect("still tracked");
            let created = self.assign(key, state.feature, state.volume, state.last_seen);
            report.clusters_created += usize::from(created);
        }
        self.recompute_all_centers();

        // Step 3: merge.
        report.merges = self.merge_step();
        self.recompute_all_centers();
        report
    }

    /// `template key → cluster id` for every tracked template.
    pub fn partition(&self) -> BTreeMap<TemplateKey, u64> {
        self.templates.iter().map(|(&k, s)| (k, s.cluster)).collect()
    }

    /// All clusters by id.
    pub fn clusters(&self) -> &BTreeMap<u64, RefCluster> {
        &self.clusters
    }

    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }
}

/// Extracts the optimized clusterer's partition over `keys` in the same
/// `key → cluster id` shape as [`ReferenceClusterer::partition`]. Keys the
/// clusterer no longer tracks (evicted) are omitted.
pub fn online_partition(
    clusterer: &OnlineClusterer,
    keys: impl IntoIterator<Item = TemplateKey>,
) -> BTreeMap<TemplateKey, u64> {
    keys.into_iter()
        .filter_map(|k| clusterer.cluster_of(k).map(|ClusterId(id)| (k, id)))
        .collect()
}
