//! Deterministic end-to-end simulation runner.
//!
//! One [`SimCase`] fully determines a pipeline run: workload generator,
//! fault intensity, trace seed, and length. [`run_case`] replays the case
//! through generator → fault injector → pre-processor → clusterer →
//! forecaster at every requested thread-pool width and checks the
//! resilience layer's end-to-end invariants:
//!
//! 1. **Accounting identity** — every delivered event is either ingested
//!    or quarantined (`ingested + rejected == events_out`).
//! 2. **Quarantine bound** — the pipeline never rejects more statements
//!    than the fault plan corrupted
//!    ([`FaultStats::max_possible_rejections`]); with no faults, nothing
//!    is rejected.
//! 3. **No NaN leaves a model** — every forecast at every horizon is
//!    finite and non-negative.
//! 4. **Degradation chain** — each model's reported level is on the
//!    documented `Full → Ensemble → Single → LastValue` chain, and a
//!    fault-free LR run stays at `Full`.
//! 5. **Thread-width determinism** — forecasts are bit-identical across
//!    all requested pool widths.
//! 6. **Trace determinism** ([`run_traced`]) — with an enabled tracer,
//!    the deterministic event stream, decision lineage, and flight
//!    recorder dumps are byte-identical across all requested widths.
//! 7. **Batched-ingest determinism** ([`run_batched`]) — the sharded
//!    batch engine yields bit-identical pipeline state and forecasts at
//!    every width, is invariant to tick splitting, and matches the
//!    sequential path template-for-template.
//! 8. **Serving determinism** ([`run_served`]) — with the lock-free
//!    serving layer enabled, reader answers at the final published epoch
//!    (per-cluster curves and top-K rankings) are bit-identical across
//!    all widths, and the served curves equal the manager's synchronous
//!    predictions bit-for-bit.
//! 9. **Alert-stream determinism** ([`run_monitored`]) — with the
//!    self-monitoring layer folding per-round metric deltas and
//!    evaluating deterministic SLO rules under template churn plus fault
//!    injection, the alert firing/resolved transition log is
//!    bit-identical across all widths and byte-stable across same-seed
//!    reruns.
//!
//! On violation the harness returns a [`SimFailure`] whose `Display`
//! includes [`repro_command`] — a copy-pasteable `cargo test` invocation
//! that replays exactly this case via the `single_seed_repro` test.

use qb5000::{
    AlertCondition, AlertRule, BatchItem, EventKind, ForecastManager, ForecastQuery,
    ForecastService, HorizonSpec, Monitor, MonitorConfig, Qb5000Config, QueryBot5000, Recorder,
    RetrainOutcome, Severity, TraceDump, TraceView, Tracer,
};
use qb_forecast::{DegradationLevel, Forecaster, LinearRegression};
use qb_parallel::ThreadPool;
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{ChurnScenario, FaultPlan, FaultStats, QueryEvent, TraceConfig, Workload};

/// One fully-seeded simulation case.
#[derive(Debug, Clone)]
pub struct SimCase {
    pub workload: Workload,
    /// `FaultPlan::with_intensity` knob; 0.0 runs a clean passthrough.
    pub fault_intensity: f64,
    /// Seeds the trace generator *and* the fault plan.
    pub seed: u64,
    pub days: u32,
    pub scale: f64,
}

impl SimCase {
    pub fn new(workload: Workload, fault_intensity: f64, seed: u64) -> Self {
        Self { workload, fault_intensity, seed, days: 3, scale: 0.02 }
    }
}

/// What a successful case run produced (for golden-style inspection).
#[derive(Debug)]
pub struct SimOutcome {
    pub stats: FaultStats,
    pub num_templates: usize,
    pub num_clusters: usize,
    /// Per-horizon forecasts from the first thread width.
    pub forecasts: Vec<Vec<f64>>,
}

/// An invariant violation, carrying the repro command.
#[derive(Debug)]
pub struct SimFailure {
    pub case: SimCase,
    pub invariant: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "simulation invariant violated: {}", self.invariant)?;
        writeln!(f, "  case: {:?}", self.case)?;
        write!(f, "  reproduce with:\n    {}", repro_command(&self.case))
    }
}

/// The copy-pasteable single-case repro line printed on failure.
pub fn repro_command(case: &SimCase) -> String {
    format!(
        "QB_SIM_SEED={:#x} QB_SIM_WORKLOAD={} QB_SIM_INTENSITY={} QB_SIM_DAYS={} \
         cargo test -p qb-testkit --test simtest single_seed_repro -- --nocapture",
        case.seed,
        case.workload.name(),
        case.fault_intensity,
        case.days,
    )
}

/// Parses `QB_SIM_*` environment overrides onto a default case — the
/// receiving end of [`repro_command`].
pub fn case_from_env() -> SimCase {
    let mut case = SimCase::new(Workload::Admissions, 1.0, 0x5EED);
    if let Ok(s) = std::env::var("QB_SIM_SEED") {
        // `_` separators are accepted so seeds can be pasted from source.
        let s: String = s.trim().chars().filter(|&c| c != '_').collect();
        case.seed = s
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex QB_SIM_SEED"))
            .unwrap_or_else(|| s.parse().expect("numeric QB_SIM_SEED"));
    }
    if let Ok(w) = std::env::var("QB_SIM_WORKLOAD") {
        case.workload = match w.to_ascii_lowercase().as_str() {
            "admissions" => Workload::Admissions,
            "bustracker" => Workload::BusTracker,
            "mooc" => Workload::Mooc,
            other => panic!("unknown QB_SIM_WORKLOAD {other:?}"),
        };
    }
    if let Ok(i) = std::env::var("QB_SIM_INTENSITY") {
        case.fault_intensity = i.parse().expect("numeric QB_SIM_INTENSITY");
    }
    if let Ok(d) = std::env::var("QB_SIM_DAYS") {
        case.days = d.parse().expect("numeric QB_SIM_DAYS");
    }
    case
}

fn fail(case: &SimCase, invariant: String) -> SimFailure {
    SimFailure { case: case.clone(), invariant }
}

/// Replays one case at every thread width and checks invariants 1–5.
///
/// `horizons` are forecast offsets in hours (hourly interval, 24-step
/// window); `widths` are the thread-pool sizes to sweep — forecasts must
/// be bit-identical across all of them.
pub fn run_case(
    case: &SimCase,
    horizons: &[usize],
    widths: &[usize],
) -> Result<SimOutcome, SimFailure> {
    assert!(!horizons.is_empty() && !widths.is_empty(), "empty sweep");
    let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
    let plan = if case.fault_intensity == 0.0 {
        FaultPlan::none(case.seed)
    } else {
        FaultPlan::with_intensity(case.seed, case.fault_intensity)
    };
    let mut events = plan.inject(case.workload.generator(trace));
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    let mut delivered = 0u64;
    for ev in events.by_ref() {
        delivered += 1;
        let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    let stats = events.stats().clone();
    let health = bot.health();

    // Invariant 1: exact accounting.
    if stats.events_out != delivered
        || health.ingested_statements + health.rejected_statements != delivered
    {
        return Err(fail(
            case,
            format!(
                "accounting identity broken: delivered {delivered}, injector says {}, \
                 ingested {} + rejected {}",
                stats.events_out, health.ingested_statements, health.rejected_statements
            ),
        ));
    }
    // Invariant 2: quarantine bounded by what the plan corrupted.
    if health.rejected_statements > stats.max_possible_rejections() {
        return Err(fail(
            case,
            format!(
                "quarantine dropped more than the fault plan injected: rejected {} > \
                 malformed {} + truncated {} + duplicated {}",
                health.rejected_statements, stats.malformed, stats.truncated, stats.duplicated
            ),
        ));
    }

    let now = case.days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(now);
    if bot.tracked_clusters().is_empty() {
        return Err(fail(case, "no clusters tracked after a full trace".into()));
    }

    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1) * 24,
        })
        .collect();

    let mut per_width: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut first_forecasts: Vec<Vec<f64>> = Vec::new();
    for &w in widths {
        let mut mgr =
            ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
        mgr.set_threads(w);
        let outcome = mgr
            .ensure_trained(&bot, now)
            .map_err(|e| fail(case, format!("training failed at width {w}: {e}")))?;
        if !matches!(outcome, RetrainOutcome::Retrained { .. }) {
            return Err(fail(case, format!("expected a retrain at width {w}, got {outcome:?}")));
        }
        let mut bits = Vec::new();
        for (h, _) in horizons.iter().enumerate() {
            let pred = mgr.predict(&bot, now, h);
            // Invariant 3: no NaN leaves a model.
            if pred.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(fail(
                    case,
                    format!("non-finite or negative forecast at width {w}, horizon {h}: {pred:?}"),
                ));
            }
            // Invariant 4: the degradation level is on the documented
            // chain, and a plain LR model never degrades.
            match mgr.degradation(h) {
                Some(
                    DegradationLevel::Full
                    | DegradationLevel::Ensemble
                    | DegradationLevel::Single
                    | DegradationLevel::LastValue,
                ) => {}
                None => return Err(fail(case, format!("horizon {h} lost its model"))),
            }
            if mgr.degradation(h) != Some(DegradationLevel::Full) {
                return Err(fail(
                    case,
                    format!("LR degraded at width {w}, horizon {h}: {:?}", mgr.degradation(h)),
                ));
            }
            if w == widths[0] {
                first_forecasts.push(pred.clone());
            }
            bits.push(pred.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
        }
        per_width.push(bits);
    }
    // Invariant 5: bit-identical forecasts across widths.
    for (i, bits) in per_width.iter().enumerate().skip(1) {
        if bits != &per_width[0] {
            return Err(fail(
                case,
                format!("forecasts diverged between widths {} and {}", widths[0], widths[i]),
            ));
        }
    }

    Ok(SimOutcome {
        stats,
        num_templates: bot.preprocessor().num_templates(),
        num_clusters: bot.tracked_clusters().len(),
        forecasts: first_forecasts,
    })
}

/// Invariant 7 — batched-ingest determinism. Replays `case` through the
/// sharded batch engine (one tick per consecutive same-minute run of
/// delivered events) at every pool width and checks:
///
/// * the exported pipeline state and every forecast are bit-identical
///   across widths;
/// * splitting each tick in half leaves the Pre-Processor's counted
///   state (templates, histories, caches, quarantine) unchanged;
/// * per-template texts, arrival histories, accounting stats, quarantine
///   contents, and the seed chain agree exactly with a sequential
///   `ingest_weighted` replay of the same stream. (Parameter reservoirs
///   are excluded: the batch engine's reparse cadence is per-slot rather
///   than global, a documented divergence on `qb_preprocessor::shard`.)
pub fn run_batched(
    case: &SimCase,
    horizons: &[usize],
    widths: &[usize],
) -> Result<(), SimFailure> {
    assert!(!horizons.is_empty() && !widths.is_empty(), "empty sweep");
    let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
    let plan = if case.fault_intensity == 0.0 {
        FaultPlan::none(case.seed)
    } else {
        FaultPlan::with_intensity(case.seed, case.fault_intensity)
    };
    let events: Vec<QueryEvent> = plan.inject(case.workload.generator(trace)).collect();
    // Consecutive same-minute runs become the ticks; keying on runs (not a
    // global group-by) preserves delivery order even when the fault plan
    // reorders events.
    let mut ticks: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    for i in 1..=events.len() {
        if i == events.len() || events[i].minute != events[start].minute {
            ticks.push(start..i);
            start = i;
        }
    }
    let now = case.days as i64 * MINUTES_PER_DAY;

    let run_one = |width: usize, halve_ticks: bool| {
        let pool = ThreadPool::new(width);
        let mut bot = QueryBot5000::new(Qb5000Config::default());
        for tick in &ticks {
            let batch: Vec<BatchItem<'_>> = events[tick.clone()]
                .iter()
                .map(|ev| BatchItem { minute: ev.minute, sql: &ev.sql, count: ev.count })
                .collect();
            if halve_ticks && batch.len() > 1 {
                let mid = batch.len() / 2;
                bot.ingest_batch_with(&pool, &batch[..mid]);
                bot.ingest_batch_with(&pool, &batch[mid..]);
            } else {
                bot.ingest_batch_with(&pool, &batch);
            }
        }
        bot.update_clusters(now);
        bot
    };

    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1) * 24,
        })
        .collect();

    let mut reference: Option<(qb5000::PipelineState, Vec<Vec<u64>>)> = None;
    for &w in widths {
        let bot = run_one(w, false);
        if bot.tracked_clusters().is_empty() {
            return Err(fail(case, "no clusters tracked after a batched trace".into()));
        }
        let mut mgr =
            ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
        mgr.set_threads(w);
        mgr.ensure_trained(&bot, now)
            .map_err(|e| fail(case, format!("batched training failed at width {w}: {e}")))?;
        let bits: Vec<Vec<u64>> = (0..horizons.len())
            .map(|h| mgr.predict(&bot, now, h).iter().map(|v| v.to_bits()).collect())
            .collect();
        let state = bot.export_state();
        match &reference {
            None => reference = Some((state, bits)),
            Some((ref_state, ref_bits)) => {
                if &state != ref_state {
                    return Err(fail(
                        case,
                        format!(
                            "batched pipeline state diverged between widths {} and {w}",
                            widths[0]
                        ),
                    ));
                }
                if &bits != ref_bits {
                    return Err(fail(
                        case,
                        format!(
                            "batched forecasts diverged between widths {} and {w}",
                            widths[0]
                        ),
                    ));
                }
            }
        }
    }
    let (ref_state, _) = reference.expect("at least one width ran");

    // Splitting every tick must not change any counted state.
    let halved = run_one(widths[0], true).export_state();
    if halved.pre != ref_state.pre {
        return Err(fail(case, "tick splitting changed the Pre-Processor state".into()));
    }

    // Differential oracle: the sequential path over the same stream.
    let mut seq = QueryBot5000::new(Qb5000Config::default());
    for ev in &events {
        let _ = seq.ingest_weighted(ev.minute, &ev.sql, ev.count);
    }
    let seq_pre = seq.export_state().pre;
    let batched_pre = &ref_state.pre;
    if seq_pre.entries.len() != batched_pre.entries.len()
        || seq_pre
            .entries
            .iter()
            .zip(&batched_pre.entries)
            .any(|(a, b)| a.text != b.text || a.history != b.history)
    {
        return Err(fail(
            case,
            "batched templates/histories diverged from the sequential reference".into(),
        ));
    }
    if seq_pre.distinct_texts != batched_pre.distinct_texts
        || seq_pre.stats != batched_pre.stats
        || seq_pre.quarantine != batched_pre.quarantine
        || seq_pre.next_seed != batched_pre.next_seed
    {
        return Err(fail(
            case,
            "batched accounting diverged from the sequential reference".into(),
        ));
    }
    Ok(())
}

/// Invariant 8 — serving determinism. Replays `case` once per width with a
/// **fresh** pipeline whose config enables the lock-free serving layer,
/// trains a manager (publishing per-horizon curves), then answers every
/// reader query shape at the final epoch and checks:
///
/// * the published epoch is identical at every width (the publication
///   schedule is part of the deterministic contract);
/// * per-cluster curve answers and the top-K ranking are bit-identical
///   across widths;
/// * every served curve equals the manager's synchronous
///   [`ForecastManager::predict`] output bit-for-bit — a reader pulling
///   from the snapshot and a caller pulling from the manager can never
///   disagree at the same epoch.
pub fn run_served(
    case: &SimCase,
    horizons: &[usize],
    widths: &[usize],
) -> Result<(), SimFailure> {
    assert!(!horizons.is_empty() && !widths.is_empty(), "empty sweep");
    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1) * 24,
        })
        .collect();

    // (epoch, per-horizon per-cluster curve bits, per-horizon top-k bits)
    type ServedBits = (u64, Vec<Vec<u64>>, Vec<Vec<(u64, u64)>>);
    let mut reference: Option<ServedBits> = None;
    for &w in widths {
        let service = ForecastService::for_specs(&specs);
        let config = Qb5000Config::builder()
            .serve(service.clone())
            .build()
            .expect("default served config is valid");
        let mut bot = QueryBot5000::new(config);
        let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
        let plan = if case.fault_intensity == 0.0 {
            FaultPlan::none(case.seed)
        } else {
            FaultPlan::with_intensity(case.seed, case.fault_intensity)
        };
        for ev in plan.inject(case.workload.generator(trace)) {
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        let now = case.days as i64 * MINUTES_PER_DAY;
        bot.update_clusters(now);
        if bot.tracked_clusters().is_empty() {
            return Err(fail(case, "no clusters tracked after a served trace".into()));
        }
        let mut mgr =
            ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
        mgr.set_threads(w);
        mgr.ensure_trained(&bot, now)
            .map_err(|e| fail(case, format!("served training failed at width {w}: {e}")))?;

        let reader = service.reader();
        let epoch = service.epoch();
        let clusters = mgr.serving_clusters().to_vec();
        let mut curve_bits: Vec<Vec<u64>> = Vec::new();
        let mut topk_bits: Vec<Vec<(u64, u64)>> = Vec::new();
        for (h, _) in horizons.iter().enumerate() {
            let synchronous = mgr.predict(&bot, now, h);
            let mut row = Vec::new();
            for (ci, cluster) in clusters.iter().enumerate() {
                let answer = reader.answer(&ForecastQuery::cluster(cluster.id.0, h));
                if answer.epoch != epoch {
                    return Err(fail(
                        case,
                        format!("reader at width {w} answered epoch {} != {epoch}", answer.epoch),
                    ));
                }
                let Some(curve) = answer.curve() else {
                    return Err(fail(
                        case,
                        format!("cluster {} horizon {h} unserved at width {w}", cluster.id.0),
                    ));
                };
                if curve.values[0].to_bits() != synchronous[ci].to_bits() {
                    return Err(fail(
                        case,
                        format!(
                            "served curve diverged from the synchronous prediction at \
                             width {w}, cluster {}, horizon {h}",
                            cluster.id.0
                        ),
                    ));
                }
                row.push(curve.values[0].to_bits());
            }
            curve_bits.push(row);
            let ranking = reader
                .answer(&ForecastQuery::top_k(clusters.len(), h))
                .ranking()
                .map(|r| r.iter().map(|&(c, v)| (c, v.to_bits())).collect::<Vec<_>>())
                .unwrap_or_default();
            topk_bits.push(ranking);
        }
        let bits = (epoch, curve_bits, topk_bits);
        match &reference {
            None => reference = Some(bits),
            Some(ref_bits) => {
                if &bits != ref_bits {
                    return Err(fail(
                        case,
                        format!(
                            "served answers diverged between widths {} and {w}",
                            widths[0]
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Everything one traced replay retained, for lineage inspection.
#[derive(Debug)]
pub struct TracedOutcome {
    /// Thread-pool width this replay ran at.
    pub width: usize,
    /// Snapshot of the flight recorder after training.
    pub view: TraceView,
    /// [`TraceView::deterministic_stream`] — no wall-clock timestamps.
    pub stream: String,
    /// `explain()` of the latest per-horizon model fit.
    pub fit_lineage: String,
    /// Flight-recorder dumps captured during the replay.
    pub dumps: Vec<TraceDump>,
}

/// Invariant 6 — trace determinism. Replays `case` once per width with a
/// **fresh** pipeline and an enabled [`Tracer`] (unlike [`run_case`],
/// which shares one bot, tracing must re-ingest per width so the whole
/// event stream is comparable), then checks that the deterministic stream,
/// the model-fit lineage, and the dump log are byte-identical across
/// widths. Returns one [`TracedOutcome`] per width, in `widths` order.
pub fn run_traced(
    case: &SimCase,
    horizons: &[usize],
    widths: &[usize],
    make_model: impl Fn() -> Box<dyn Forecaster> + Send + Sync + Clone + 'static,
) -> Result<Vec<TracedOutcome>, SimFailure> {
    assert!(!horizons.is_empty() && !widths.is_empty(), "empty sweep");
    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1) * 24,
        })
        .collect();

    let mut outcomes: Vec<TracedOutcome> = Vec::new();
    for &w in widths {
        let tracer = Tracer::enabled();
        let config = Qb5000Config::builder()
            .trace(tracer.clone())
            .build()
            .expect("default traced config is valid");
        let mut bot = QueryBot5000::new(config);
        let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
        let plan = if case.fault_intensity == 0.0 {
            FaultPlan::none(case.seed)
        } else {
            FaultPlan::with_intensity(case.seed, case.fault_intensity)
        };
        for ev in plan.inject(case.workload.generator(trace)) {
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        let now = case.days as i64 * MINUTES_PER_DAY;
        bot.update_clusters(now);
        if bot.tracked_clusters().is_empty() {
            return Err(fail(case, "no clusters tracked after a full trace".into()));
        }
        let mut mgr = ForecastManager::new(specs.clone(), make_model.clone());
        mgr.set_threads(w);
        mgr.set_tracer(bot.tracer());
        mgr.ensure_trained(&bot, now)
            .map_err(|e| fail(case, format!("training failed at width {w}: {e}")))?;
        let view = tracer.view();
        let fit = view
            .latest(EventKind::ModelFit)
            .ok_or_else(|| fail(case, format!("no ModelFit event traced at width {w}")))?;
        let fit_lineage = view.explain(fit.id);
        outcomes.push(TracedOutcome {
            width: w,
            stream: view.deterministic_stream(),
            fit_lineage,
            dumps: tracer.dumps(),
            view,
        });
    }

    // Invariant 6: the whole retained trace is byte-identical per width.
    let first = &outcomes[0];
    for other in outcomes.iter().skip(1) {
        if other.stream != first.stream {
            return Err(fail(
                case,
                format!("trace stream diverged between widths {} and {}", first.width, other.width),
            ));
        }
        if other.fit_lineage != first.fit_lineage {
            return Err(fail(
                case,
                format!(
                    "model-fit lineage diverged between widths {} and {}",
                    first.width, other.width
                ),
            ));
        }
        let render = |dumps: &[TraceDump]| {
            dumps
                .iter()
                .map(|d| format!("{} @r{}\n{}\n{}", d.reason, d.round, d.lineage, d.recent))
                .collect::<Vec<_>>()
                .join("\n---\n")
        };
        if render(&other.dumps) != render(&first.dumps) {
            return Err(fail(
                case,
                format!("dump log diverged between widths {} and {}", first.width, other.width),
            ));
        }
    }
    Ok(outcomes)
}

/// Deterministic SLO rules for the monitored harness: counters and gauges
/// only — no wall-time quantiles — so every probe folds the same numbers
/// at every pool width.
fn sim_rules() -> Vec<AlertRule> {
    vec![
        // Fires whenever the fault plan corrupts statements (ratio rule).
        AlertRule::new(
            "sim-quarantine-share",
            Severity::Warning,
            AlertCondition::RatioAbove {
                numerator: "preprocessor.quarantined_statements".into(),
                denominator: "preprocessor.ingested_statements".into(),
                above: 0.02,
                window: 4,
            },
        ),
        // Template churn shows up as new-template bursts at cluster
        // refresh; fires on the burst, resolves once the mix settles —
        // covering both transition directions.
        AlertRule::new(
            "sim-template-burst",
            Severity::Info,
            AlertCondition::RateAbove {
                counter: "clusterer.new_templates".into(),
                per_round: 8.0,
                window: 1,
            },
        )
        .clear_rounds(2),
        // Absence rule: never fires while the replay delivers events, but
        // exercises the silent-counter path every round.
        AlertRule::new(
            "sim-ingest-stalled",
            Severity::Critical,
            AlertCondition::Absent { counter: "preprocessor.ingested_statements".into(), window: 2 },
        ),
    ]
}

/// Invariant 9 — alert-stream determinism. Replays `case`'s fault plan
/// over a churn scenario's evolving template mix through the sharded
/// batch-ingest engine at every width, refreshing clusters and folding a
/// metrics snapshot into a [`Monitor`] every six simulated hours, and
/// checks:
///
/// * the alert firing/resolved transition log is byte-identical across
///   all requested widths;
/// * the typed active-alert set at end of run is identical across widths;
/// * a same-seed re-run at the first width reproduces the log byte for
///   byte;
/// * with a non-zero fault intensity the stream is non-vacuous (the
///   quarantine-share rule must have fired at least once).
///
/// Returns the (shared) transition log for golden-style inspection.
pub fn run_monitored(
    case: &SimCase,
    scenario: ChurnScenario,
    widths: &[usize],
) -> Result<Vec<String>, SimFailure> {
    assert!(!widths.is_empty(), "empty sweep");
    const ROUND_MINUTES: i64 = 6 * 60;

    let run_one = |w: usize| -> Result<(Vec<String>, Vec<qb5000::ActiveAlert>), SimFailure> {
        let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
        let plan = if case.fault_intensity == 0.0 {
            FaultPlan::none(case.seed)
        } else {
            FaultPlan::with_intensity(case.seed, case.fault_intensity)
        };
        let events: Vec<QueryEvent> = plan.inject(scenario.generator(trace, 1.5)).collect();
        let recorder = Recorder::new();
        let config = Qb5000Config::builder()
            .recorder(recorder.clone())
            .build()
            .expect("default monitored config is valid");
        let mut bot = QueryBot5000::new(config);
        let mut monitor = Monitor::new(MonitorConfig::default().rules(sim_rules()))
            .map_err(|e| fail(case, format!("monitor setup failed at width {w}: {e}")))?;
        let tracer = Tracer::disabled();
        let pool = ThreadPool::new(w);

        // Consecutive same-minute runs become the ingest ticks (the
        // run_batched convention, preserving fault-plan delivery order).
        let mut ticks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0;
        for i in 1..=events.len() {
            if i == events.len() || events[i].minute != events[start].minute {
                ticks.push(start..i);
                start = i;
            }
        }

        let mut round = 0u64;
        let mut next_round = ROUND_MINUTES;
        for tick in &ticks {
            while events[tick.start].minute >= next_round {
                round += 1;
                bot.update_clusters(next_round);
                monitor.observe_round(round, &recorder.snapshot(), &[], &tracer);
                next_round += ROUND_MINUTES;
            }
            let batch: Vec<BatchItem<'_>> = events[tick.clone()]
                .iter()
                .map(|ev| BatchItem { minute: ev.minute, sql: &ev.sql, count: ev.count })
                .collect();
            bot.ingest_batch_with(&pool, &batch);
        }
        // Settle the tail of the trace into one final round.
        round += 1;
        bot.update_clusters(case.days as i64 * MINUTES_PER_DAY);
        monitor.observe_round(round, &recorder.snapshot(), &[], &tracer);
        Ok((monitor.transition_log().to_vec(), monitor.active_alerts()))
    };

    let (first_log, first_active) = run_one(widths[0])?;
    if case.fault_intensity > 0.0
        && !first_log.iter().any(|l| l.contains("fired rule=sim-quarantine-share"))
    {
        return Err(fail(
            case,
            format!("faulted replay never tripped the quarantine rule: {first_log:?}"),
        ));
    }
    for &w in &widths[1..] {
        let (log, active) = run_one(w)?;
        if log != first_log {
            return Err(fail(
                case,
                format!("alert transition log diverged between widths {} and {w}", widths[0]),
            ));
        }
        if active != first_active {
            return Err(fail(
                case,
                format!("active-alert set diverged between widths {} and {w}", widths[0]),
            ));
        }
    }
    // Byte-stability: a same-seed re-run reproduces the exact log.
    let (again, _) = run_one(widths[0])?;
    if again != first_log {
        return Err(fail(case, "same-seed monitored re-run changed the alert log".into()));
    }
    Ok(first_log)
}
