//! Golden-trace fixtures.
//!
//! [`capture`] runs one mini workload trace through the full pipeline and
//! renders a deterministic JSON summary: template counts, cluster
//! membership, and per-horizon log-space MSE of an LR forecaster. The
//! summary is diffed **byte-for-byte** against a checked-in fixture under
//! `crates/testkit/fixtures/`, in the same style as `tests/public-api.txt`:
//!
//! ```text
//! QB_BLESS_GOLDEN=1 cargo test -p qb-testkit --test golden_traces
//! ```
//!
//! regenerates every fixture. Everything feeding the summary is seeded
//! (trace generator, feature sampler, LR solve), so a byte diff means real
//! behavior drift — a changed template count, a different cluster
//! assignment, or a numerically different forecast — surfacing explicitly
//! in review instead of sneaking in with an implementation diff. Floats
//! are rendered with Rust's shortest round-trip `{:?}` formatting, so the
//! encoding is bit-faithful.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use qb5000::{Qb5000Config, QueryBot5000};
use qb_forecast::{Forecaster, LinearRegression, WindowSpec};
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

/// One golden-trace scenario.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    /// Fixture file stem (`fixtures/<name>.json`).
    pub name: &'static str,
    pub workload: Workload,
    pub days: u32,
    pub scale: f64,
    pub seed: u64,
    /// Horizons (hours) whose rolling log-MSE goes into the summary.
    pub horizons: &'static [usize],
}

/// The checked-in scenarios. Three days of each workload at small scale —
/// big enough to produce several clusters, small enough to run in the
/// default suite.
pub const CASES: &[GoldenCase] = &[
    GoldenCase {
        name: "admissions_3d",
        workload: Workload::Admissions,
        days: 3,
        scale: 0.02,
        seed: 0xAD01,
        horizons: &[1, 6],
    },
    GoldenCase {
        name: "bustracker_3d",
        workload: Workload::BusTracker,
        days: 3,
        scale: 0.02,
        seed: 0xB501,
        horizons: &[1, 6],
    },
    GoldenCase {
        name: "mooc_3d",
        workload: Workload::Mooc,
        days: 3,
        scale: 0.02,
        seed: 0x300C,
        horizons: &[1, 6],
    },
];

/// Runs the case and renders its JSON summary.
pub fn capture(case: &GoldenCase) -> String {
    let trace =
        TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
    let mut bot = QueryBot5000::new(Qb5000Config::default());
    for ev in case.workload.generator(trace) {
        bot.ingest_weighted(ev.minute, &ev.sql, ev.count).expect("golden traces are clean");
    }
    let now = case.days as i64 * MINUTES_PER_DAY;
    bot.update_clusters(now);

    let pre = bot.preprocessor();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"{}\",", case.workload.name());
    let _ = writeln!(out, "  \"days\": {},", case.days);
    let _ = writeln!(out, "  \"seed\": {},", case.seed);
    let _ = writeln!(out, "  \"num_templates\": {},", pre.num_templates());
    let _ = writeln!(out, "  \"num_distinct_texts\": {},", pre.num_distinct_texts());

    // Tracked clusters: id, member count, volume — and the full template
    // membership (template ids are assigned in ingest order, so they are
    // stable for a seeded trace).
    let tracked = bot.tracked_clusters();
    let _ = writeln!(out, "  \"num_tracked_clusters\": {},", tracked.len());
    out.push_str("  \"clusters\": [\n");
    for (i, info) in tracked.iter().enumerate() {
        let mut members: Vec<u32> = info.members.iter().map(|m| m.0).collect();
        members.sort_unstable();
        let members: Vec<String> = members.iter().map(u32::to_string).collect();
        let _ = write!(
            out,
            "    {{\"id\": {}, \"volume\": {:?}, \"members\": [{}]}}",
            info.id.0,
            info.volume,
            members.join(", ")
        );
        out.push_str(if i + 1 < tracked.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Per-horizon rolling log-space MSE of a fresh LR fit (Figure 7's
    // metric) over the tracked clusters' hourly series.
    let series: Vec<Vec<f64>> =
        tracked.iter().map(|c| bot.cluster_series(c, 0, now, Interval::HOUR)).collect();
    let steps = series.first().map_or(0, Vec::len);
    let test_start = steps - steps / 4;
    out.push_str("  \"log_mse\": {\n");
    for (i, &h) in case.horizons.iter().enumerate() {
        let spec = WindowSpec { window: 24, horizon: h };
        let mut lr = LinearRegression::default();
        lr.fit(&series, spec).expect("golden series are long enough");
        let mse = qb_forecast::evaluate_mse_log(&lr, &series, spec, test_start);
        let _ = write!(out, "    \"h{h}\": {mse:?}");
        out.push_str(if i + 1 < case.horizons.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(format!("{name}.json"))
}

/// Diffs `current` against the checked-in fixture, or rewrites the fixture
/// when `QB_BLESS_GOLDEN` is set.
///
/// # Panics
/// Panics with a line-level diff when the fixture does not match.
pub fn check_or_bless(name: &str, current: &str) {
    let path = fixture_path(name);
    if std::env::var_os("QB_BLESS_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir fixtures");
        fs::write(&path, current).expect("write golden fixture");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\nbless with: QB_BLESS_GOLDEN=1 \
             cargo test -p qb-testkit --test golden_traces",
            path.display()
        )
    });
    if golden == current {
        return;
    }
    let mut msg = format!("golden trace `{name}` changed:\n");
    for (i, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        if g != c {
            let _ = writeln!(msg, "  line {}:\n    - {g}\n    + {c}", i + 1);
        }
    }
    let (gl, cl) = (golden.lines().count(), current.lines().count());
    if gl != cl {
        let _ = writeln!(msg, "  line count changed: {gl} -> {cl}");
    }
    msg.push_str("if intentional: QB_BLESS_GOLDEN=1 cargo test -p qb-testkit --test golden_traces\n");
    panic!("{msg}");
}
