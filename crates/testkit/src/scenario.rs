//! Evolving-workload scenario matrix: template churn × cold start.
//!
//! One [`ScenarioCase`] fully determines an end-to-end run over a
//! [`ChurnScenario`] trace: churn intensity, fault intensity, seed, and
//! length. [`run_scenario`] replays the case through a serving pipeline
//! with the cold-start path enabled, staging the timeline so churn
//! templates land in the *new-template gap* — after the last cluster
//! update, before the retrain — exactly where a forecast-consumer would
//! otherwise read `Missing`:
//!
//! ```text
//! 0 ············ cluster_cut ············ train_cut ············ end
//!   ingest            │      ingest          │      ingest        │
//!                update_clusters       ensure_trained        settle both
//!                (routing frozen)      (cold seeds publish)  trackers
//! ```
//!
//! At the train cut, every published cold-start entry becomes *two*
//! claims on an [`AccuracyTracker`] pair: the seeded estimate (cold-start
//! path) and `0.0` (the wait-for-history baseline — a reader that treats
//! `Missing` as "no arrivals"). After the rest of the trace is ingested,
//! both trackers settle against the same actual arrivals, giving a
//! per-horizon log-space MSE for each policy over identical claims.
//!
//! Checked invariants:
//!
//! 1. **Accounting identity** — `ingested + rejected == delivered`, and
//!    the quarantine never exceeds what the fault plan corrupted (the
//!    chaos-suite identity, composed with churn).
//! 2. **Degradation chain** — every trained horizon reports a level on
//!    the documented `Full → Ensemble → Single → LastValue` chain.
//! 3. **Finite scoring** — both policies' MSEs are finite whenever any
//!    claim settles.
//! 4. **Thread-width bit-identity** — the served epoch, warm curve bits,
//!    cold-start entries (template, origin, share, curve bits), and both
//!    trackers' MSE bits are identical at every requested width.
//!
//! On violation the harness returns a [`ScenarioFailure`] whose `Display`
//! embeds [`scenario_repro_command`] — a copy-pasteable `cargo test` line
//! replaying exactly this case via the `single_scenario_repro` test.

use qb5000::{
    AccuracyTracker, ColdStartOrigin, ForecastManager, ForecastQuery, ForecastService,
    HorizonSpec, Qb5000Config, QueryBot5000, RetrainOutcome,
};
use qb_clusterer::ClusterId;
use qb_forecast::{DegradationLevel, LinearRegression};
use qb_preprocessor::TemplateId;
use qb_timeseries::{Interval, MINUTES_PER_DAY};
use qb_workloads::{ChurnScenario, FaultPlan, QueryEvent, TraceConfig};

/// One fully-seeded evolving-workload case.
#[derive(Debug, Clone)]
pub struct ScenarioCase {
    pub scenario: ChurnScenario,
    /// Churn intensity: 0.0 is the stable base population, 1.0 the
    /// scenario's nominal churn, larger values proportionally more.
    pub intensity: f64,
    /// `FaultPlan::with_intensity` knob; 0.0 runs a clean passthrough.
    pub fault_intensity: f64,
    /// Seeds the trace generator *and* the fault plan.
    pub seed: u64,
    pub days: u32,
    pub scale: f64,
}

impl ScenarioCase {
    pub fn new(scenario: ChurnScenario, intensity: f64, fault_intensity: f64, seed: u64) -> Self {
        Self { scenario, intensity, fault_intensity, seed, days: 4, scale: 0.05 }
    }
}

/// What one scenario run measured (taken from the first width).
#[derive(Debug)]
pub struct ScenarioOutcome {
    pub num_templates: usize,
    pub num_clusters: usize,
    /// Cold-start entries published (and scored) at the train cut.
    pub cold_templates: usize,
    /// Mean per-horizon log-space MSE of the cold-start estimates; `None`
    /// when no claim settled.
    pub cold_mse: Option<f64>,
    /// Same claims scored for the wait-for-history baseline (predict 0
    /// until a full window accrues).
    pub baseline_mse: Option<f64>,
}

/// An invariant violation, carrying the repro command.
#[derive(Debug)]
pub struct ScenarioFailure {
    pub case: ScenarioCase,
    pub invariant: String,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "scenario invariant violated: {}", self.invariant)?;
        writeln!(f, "  case: {:?}", self.case)?;
        write!(f, "  reproduce with:\n    {}", scenario_repro_command(&self.case))
    }
}

/// The copy-pasteable single-case repro line printed on failure.
pub fn scenario_repro_command(case: &ScenarioCase) -> String {
    format!(
        "QB_SIM_SEED={:#x} QB_SCENARIO={} QB_SCENARIO_INTENSITY={} QB_SIM_INTENSITY={} \
         QB_SIM_DAYS={} cargo test -p qb-testkit --test scenario_matrix single_scenario_repro \
         -- --nocapture",
        case.seed,
        case.scenario.name(),
        case.intensity,
        case.fault_intensity,
        case.days,
    )
}

/// Parses environment overrides onto a default case — the receiving end
/// of [`scenario_repro_command`]. Shares the `QB_SIM_*` spelling with
/// `sim::case_from_env` for the knobs both harnesses have.
pub fn scenario_from_env() -> ScenarioCase {
    let mut case = ScenarioCase::new(ChurnScenario::FeatureLaunch, 1.0, 0.0, 0x5EED);
    if let Ok(s) = std::env::var("QB_SIM_SEED") {
        let s: String = s.trim().chars().filter(|&c| c != '_').collect();
        case.seed = s
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).expect("hex QB_SIM_SEED"))
            .unwrap_or_else(|| s.parse().expect("numeric QB_SIM_SEED"));
    }
    if let Ok(name) = std::env::var("QB_SCENARIO") {
        case.scenario = ChurnScenario::parse(&name)
            .unwrap_or_else(|| panic!("unknown QB_SCENARIO {name:?}"));
    }
    if let Ok(i) = std::env::var("QB_SCENARIO_INTENSITY") {
        case.intensity = i.parse().expect("numeric QB_SCENARIO_INTENSITY");
    }
    if let Ok(i) = std::env::var("QB_SIM_INTENSITY") {
        case.fault_intensity = i.parse().expect("numeric QB_SIM_INTENSITY");
    }
    if let Ok(d) = std::env::var("QB_SIM_DAYS") {
        case.days = d.parse().expect("numeric QB_SIM_DAYS");
    }
    case
}

fn fail(case: &ScenarioCase, invariant: String) -> ScenarioFailure {
    ScenarioFailure { case: case.clone(), invariant }
}

/// Everything one width measured, in bit-exact form, for the cross-width
/// identity check.
#[derive(PartialEq, Debug)]
struct WidthBits {
    epoch: u64,
    /// Per horizon, per tracked cluster: served warm curve value bits.
    warm: Vec<Vec<u64>>,
    /// Per cold entry: (template, origin discriminant, share bits, per-slot
    /// curve value bits).
    cold: Vec<(u32, u8, u64, Vec<Option<u64>>)>,
    cold_mse: Vec<Option<u64>>,
    baseline_mse: Vec<Option<u64>>,
}

/// Replays one case at every thread width and checks invariants 1–4.
///
/// `horizons` are forecast offsets in hours (hourly interval, 24-step
/// window); `widths` are the thread-pool sizes to sweep.
pub fn run_scenario(
    case: &ScenarioCase,
    horizons: &[usize],
    widths: &[usize],
) -> Result<ScenarioOutcome, ScenarioFailure> {
    assert!(!horizons.is_empty() && !widths.is_empty(), "empty sweep");
    let trace = TraceConfig { start: 0, days: case.days, scale: case.scale, seed: case.seed };
    let plan = if case.fault_intensity == 0.0 {
        FaultPlan::none(case.seed)
    } else {
        FaultPlan::with_intensity(case.seed, case.fault_intensity)
    };
    let mut injector = plan.inject(case.scenario.generator(trace, case.intensity));
    let events: Vec<QueryEvent> = injector.by_ref().collect();
    let stats = injector.stats().clone();
    let delivered = events.len() as u64;

    let end = case.days as i64 * MINUTES_PER_DAY;
    let span = end; // traces start at 0
    // The new-template gap: routing freezes at half the span (before the
    // churn scenarios' main activations), training happens at 3/4 — churn
    // templates activating in between are unrouted at the retrain.
    let cluster_cut = span / 2;
    let train_cut = span * 3 / 4;

    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1) * 24,
        })
        .collect();

    let mut reference: Option<WidthBits> = None;
    let mut outcome: Option<ScenarioOutcome> = None;
    for &w in widths {
        let service = ForecastService::for_specs(&specs);
        let config = Qb5000Config::builder()
            .serve(service.clone())
            .cold_start(true)
            .build()
            .expect("served cold-start config is valid");
        let mut bot = QueryBot5000::new(config);
        // Stage the delivered stream by phase. Faults may reorder events
        // across the cuts, so phases partition on the event's own minute —
        // a stable, width-independent split of the identical stream.
        let phase = |lo: i64, hi: i64| events.iter().filter(move |ev| (lo..hi).contains(&ev.minute));
        for ev in phase(i64::MIN, cluster_cut) {
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        bot.update_clusters(cluster_cut);
        if bot.tracked_clusters().is_empty() {
            return Err(fail(case, "no clusters tracked at the cluster cut".into()));
        }
        for ev in phase(cluster_cut, train_cut) {
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }

        let mut mgr = ForecastManager::new(specs.clone(), || {
            Box::new(LinearRegression::default())
        });
        mgr.set_threads(w);
        let trained = mgr
            .ensure_trained(&bot, train_cut)
            .map_err(|e| fail(case, format!("training failed at width {w}: {e}")))?;
        if !matches!(trained, RetrainOutcome::Retrained { .. }) {
            return Err(fail(case, format!("expected a retrain at width {w}, got {trained:?}")));
        }
        // Invariant 2: degradation levels stay on the documented chain.
        for h in 0..horizons.len() {
            match mgr.degradation(h) {
                Some(
                    DegradationLevel::Full
                    | DegradationLevel::Ensemble
                    | DegradationLevel::Single
                    | DegradationLevel::LastValue,
                ) => {}
                None => return Err(fail(case, format!("horizon {h} lost its model"))),
            }
        }

        // Score the gap: the published cold entries vs the wait-for-history
        // baseline, as identical claims on two trackers. Each cold template
        // becomes a synthetic single-member cluster so the tracker settles
        // it against the template's own arrival series.
        let snapshot = service.snapshot();
        let cold_entries = snapshot.cold_starts().to_vec();
        let claims: Vec<qb5000::ClusterInfo> = cold_entries
            .iter()
            .map(|c| qb5000::ClusterInfo {
                id: ClusterId(c.template as u64),
                volume: 0.0,
                members: vec![TemplateId(c.template)],
            })
            .collect();
        let mut cold_tracker = AccuracyTracker::new(horizons.len(), 256);
        let mut base_tracker = AccuracyTracker::new(horizons.len(), 256);
        for (i, &h) in horizons.iter().enumerate() {
            let seeded: Vec<f64> = cold_entries
                .iter()
                .map(|c| {
                    c.curves
                        .get(i)
                        .and_then(|slot| slot.as_ref())
                        .map_or(0.0, |curve| curve.values[0])
                })
                .collect();
            let zeros = vec![0.0; claims.len()];
            cold_tracker.record(i, train_cut, Interval::HOUR, h, &claims, &seeded);
            base_tracker.record(i, train_cut, Interval::HOUR, h, &claims, &zeros);
        }

        // Deliver the future, then settle both trackers against it.
        for ev in phase(train_cut, i64::MAX) {
            let _ = bot.ingest_weighted(ev.minute, &ev.sql, ev.count);
        }
        cold_tracker.settle(&bot, end);
        base_tracker.settle(&bot, end);

        // Invariant 1: the chaos accounting identity survives churn.
        let health = bot.health();
        if stats.events_out != delivered
            || health.ingested_statements + health.rejected_statements != delivered
        {
            return Err(fail(
                case,
                format!(
                    "accounting identity broken at width {w}: delivered {delivered}, injector \
                     says {}, ingested {} + rejected {}",
                    stats.events_out, health.ingested_statements, health.rejected_statements
                ),
            ));
        }
        if health.rejected_statements > stats.max_possible_rejections() {
            return Err(fail(
                case,
                format!(
                    "quarantine dropped more than the fault plan injected at width {w}: \
                     rejected {} > corrupted {}",
                    health.rejected_statements,
                    stats.max_possible_rejections()
                ),
            ));
        }

        let mse_row = |tr: &AccuracyTracker| -> Vec<Option<f64>> {
            (0..horizons.len()).map(|i| tr.rolling_mse(i)).collect()
        };
        let cold_mses = mse_row(&cold_tracker);
        let base_mses = mse_row(&base_tracker);
        // Invariant 3: settled scores are finite.
        for (i, pair) in cold_mses.iter().zip(&base_mses).enumerate() {
            if let (Some(c), Some(b)) = (pair.0, pair.1) {
                if !c.is_finite() || !b.is_finite() {
                    return Err(fail(
                        case,
                        format!("non-finite MSE at width {w}, horizon {i}: cold {c}, base {b}"),
                    ));
                }
            }
        }

        // Bit-exact view of everything this width measured.
        let reader = service.reader();
        let warm: Vec<Vec<u64>> = (0..horizons.len())
            .map(|i| {
                mgr.serving_clusters()
                    .iter()
                    .filter_map(|c| {
                        reader
                            .answer(&ForecastQuery::cluster(c.id.0, i))
                            .curve()
                            .map(|curve| curve.values[0].to_bits())
                    })
                    .collect()
            })
            .collect();
        let cold_bits: Vec<(u32, u8, u64, Vec<Option<u64>>)> = cold_entries
            .iter()
            .map(|c| {
                let (tag, share) = match c.origin {
                    ColdStartOrigin::ClusterShare { share, .. } => (0u8, share.to_bits()),
                    ColdStartOrigin::PopulationPrior => (1u8, 0),
                };
                let curves = c
                    .curves
                    .iter()
                    .map(|slot| slot.as_ref().map(|curve| curve.values[0].to_bits()))
                    .collect();
                (c.template, tag, share, curves)
            })
            .collect();
        let bits = WidthBits {
            epoch: service.epoch(),
            warm,
            cold: cold_bits,
            cold_mse: cold_mses.iter().map(|m| m.map(f64::to_bits)).collect(),
            baseline_mse: base_mses.iter().map(|m| m.map(f64::to_bits)).collect(),
        };
        match &reference {
            None => {
                let mean = |mses: &[Option<f64>]| {
                    let settled: Vec<f64> = mses.iter().flatten().copied().collect();
                    (!settled.is_empty())
                        .then(|| settled.iter().sum::<f64>() / settled.len() as f64)
                };
                outcome = Some(ScenarioOutcome {
                    num_templates: bot.preprocessor().num_templates(),
                    num_clusters: bot.tracked_clusters().len(),
                    cold_templates: cold_entries.len(),
                    cold_mse: mean(&cold_mses),
                    baseline_mse: mean(&base_mses),
                });
                reference = Some(bits);
            }
            Some(ref_bits) => {
                // Invariant 4: bit-identical across widths.
                if &bits != ref_bits {
                    return Err(fail(
                        case,
                        format!(
                            "scenario results diverged between widths {} and {w}",
                            widths[0]
                        ),
                    ));
                }
            }
        }
    }
    Ok(outcome.expect("at least one width ran"))
}
