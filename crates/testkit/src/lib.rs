//! # qb-testkit
//!
//! Correctness tooling for the QB5000 workspace. Nothing in this crate is
//! on a production path; it exists so every optimized component has an
//! independent, deliberately naive implementation to answer to.
//!
//! Three pillars:
//!
//! * [`oracle`] — **reference oracles**: a linear-scan re-implementation of
//!   the online clusterer ([`oracle::ReferenceClusterer`]), batch DBSCAN
//!   over full feature vectors ([`oracle::batch_dbscan`]), normal-equations
//!   linear regression solved by Gauss–Jordan elimination
//!   ([`oracle::NormalEquationsLr`]), and a straight-line string
//!   re-templatizer ([`oracle::naive_template`]). Differential tests in
//!   `tests/differential.rs` assert the optimized implementations agree —
//!   exactly where the paper's algorithm is deterministic, within a
//!   documented tolerance where the online variant is an approximation.
//! * [`sim`] — a **deterministic simulation runner** that drives the full
//!   pipeline (generator → fault injector → pre-processor → clusterer →
//!   forecaster) for one seeded case and checks end-to-end invariants:
//!   exact ingest accounting, a quarantine bound derived from the fault
//!   plan's own statistics, finite forecasts, and bit-identical predictions
//!   across thread-pool widths. On failure it reports a copy-pasteable
//!   single-seed repro command.
//! * [`golden`] — **golden-trace fixtures**: captured summaries of mini
//!   workload runs (template counts, cluster membership, per-horizon
//!   log-space MSE) diffed byte-for-byte against checked-in JSON, blessed
//!   with `QB_BLESS_GOLDEN=1` in the same style as `tests/public-api.txt`.
//!
//! [`scenario`] extends the sim pillar to **evolving workloads**: a
//! seeded matrix over `qb_workloads::ChurnScenario` traces that stages
//! churn templates into the new-template gap and scores the cold-start
//! forecast path against the wait-for-history baseline with paired
//! [`qb5000::AccuracyTracker`]s.
//!
//! [`corpus`] provides the seeded SQL corpus generator shared by the
//! templatizer oracle tests (the Table 1 SELECT/INSERT/UPDATE/DELETE mix).

pub mod corpus;
pub mod crash;
pub mod golden;
pub mod oracle;
pub mod scenario;
pub mod sim;
