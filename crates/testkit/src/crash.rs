//! Crash-point sweep harness for the durability layer.
//!
//! The durability contract is absolute: a process killed at *any* I/O
//! boundary, then recovered from its directory, must end the run in a
//! state bit-identical to a process that never crashed — same
//! [`PipelineState`], same [`PipelineHealth`], same forecasts at every
//! thread width, same deterministic trace stream. This module turns that
//! sentence into a sweep:
//!
//! 1. [`materialize_ops`] renders a seeded workload into the exact durable
//!    operation list a run performs (sightings + cluster-update rounds),
//!    so a crashed run knows where to resume: operation `k` carries WAL
//!    sequence `k + 1`, and recovery's `durable_seq` is therefore the
//!    index of the first operation the disk never saw.
//! 2. [`reference_run`] replays the list crash-free and fingerprints the
//!    result ([`RunFingerprint`]).
//! 3. [`run_crash_matrix`] replays the same list once per labeled crash
//!    hook ([`crash_hooks`] covers every [`IoPoint`] plus evenly-spaced
//!    nth-I/O samples), kills the pipeline where the hook fires, recovers
//!    from disk, resumes at `ops[durable_seq..]`, and diffs the final
//!    fingerprint against the reference. Any divergence is a
//!    [`CrashFailure`] carrying a copy-pasteable repro command.

use std::path::PathBuf;

use qb5000::{
    DurabilityConfig, DurablePipeline, FaultHook, ForecastManager, HorizonSpec, IoPoint,
    PipelineHealth, PipelineState, Qb5000Config, Qb5000ConfigBuilder, RetrainOutcome, Tracer,
};
use qb_forecast::LinearRegression;
use qb_timeseries::{Interval, Minute, MINUTES_PER_DAY};
use qb_workloads::{TraceConfig, Workload};

/// One fully-seeded crash-sweep case.
#[derive(Debug, Clone)]
pub struct CrashCase {
    pub workload: Workload,
    /// Seeds the trace generator.
    pub seed: u64,
    pub days: u32,
    pub scale: f64,
    /// Minutes between explicit cluster-update rounds.
    pub update_every: Minute,
    /// Snapshot policy handed to [`DurabilityConfig`].
    pub snapshot_every_rounds: u64,
    /// Replay with an enabled [`Tracer`] and compare the deterministic
    /// event streams too.
    pub traced: bool,
}

impl CrashCase {
    pub fn new(workload: Workload, seed: u64) -> Self {
        Self {
            workload,
            seed,
            days: 2,
            scale: 0.02,
            update_every: 12 * 60,
            snapshot_every_rounds: 1,
            traced: false,
        }
    }

    /// End of the trace — the instant forecasts are fingerprinted at.
    pub fn end(&self) -> Minute {
        self.days as i64 * MINUTES_PER_DAY
    }
}

/// One durable operation, in replay order. Operation `k` of the list is
/// WAL sequence `k + 1`.
#[derive(Debug, Clone, PartialEq)]
pub enum DurableOp {
    Ingest { minute: Minute, sql: String, count: u64 },
    UpdateClusters { now: Minute },
}

/// Renders the case's workload into the durable operation list: every
/// sighting in trace order, with a cluster-update round at each
/// `update_every` boundary and one closing round at the end of the trace.
pub fn materialize_ops(case: &CrashCase) -> Vec<DurableOp> {
    let trace = TraceConfig {
        start: 0,
        days: case.days,
        scale: case.scale,
        seed: case.seed,
    };
    let mut ops = Vec::new();
    let mut next_update = case.update_every;
    for ev in case.workload.generator(trace) {
        while ev.minute >= next_update {
            ops.push(DurableOp::UpdateClusters { now: next_update });
            next_update += case.update_every;
        }
        ops.push(DurableOp::Ingest { minute: ev.minute, sql: ev.sql, count: ev.count });
    }
    ops.push(DurableOp::UpdateClusters { now: case.end() });
    ops
}

/// Everything a finished run is judged by.
#[derive(Debug, Clone, PartialEq)]
pub struct RunFingerprint {
    pub state: PipelineState,
    pub health: PipelineHealth,
    /// `forecasts[width_idx][horizon_idx]` as raw f64 bits — bit-identical
    /// means equal here.
    pub forecasts: Vec<Vec<Vec<u64>>>,
    /// [`qb5000::TraceView::deterministic_stream`] when the case is
    /// traced; empty otherwise.
    pub trace_stream: String,
}

/// A divergence between a crashed-and-recovered run and the reference.
#[derive(Debug)]
pub struct CrashFailure {
    pub case: CrashCase,
    /// Label of the crash hook that exposed the divergence.
    pub hook: String,
    pub detail: String,
}

impl std::fmt::Display for CrashFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "durability invariant violated: {}", self.detail)?;
        writeln!(f, "  case: {:?}", self.case)?;
        writeln!(f, "  crash hook: {}", self.hook)?;
        write!(f, "  reproduce with:\n    {}", repro_command(&self.case, &self.hook))
    }
}

/// The copy-pasteable single-hook repro line printed on failure.
pub fn repro_command(case: &CrashCase, hook: &str) -> String {
    format!(
        "QB_SIM_SEED={:#x} QB_CRASH_HOOK={} QB_SIM_WORKLOAD={} QB_SIM_DAYS={} \
         cargo test -p qb-testkit --test durability crash_point_repro -- --nocapture --ignored",
        case.seed,
        hook,
        case.workload.name(),
        case.days,
    )
}

/// Builds the [`FaultHook`] a label names: `point:<IoPoint>` crashes at
/// the first visit of that boundary, `nth:<k>` at the k-th visited
/// boundary overall. Inverse of the labels [`crash_hooks`] produces.
pub fn hook_from_label(label: &str) -> FaultHook {
    if let Some(name) = label.strip_prefix("point:") {
        let point = IoPoint::ALL
            .into_iter()
            .find(|p| format!("{p:?}") == name)
            .unwrap_or_else(|| panic!("unknown IoPoint in crash hook label {label:?}"));
        FaultHook::crash_at_point(point)
    } else if let Some(n) = label.strip_prefix("nth:") {
        FaultHook::crash_at_nth(n.parse().unwrap_or_else(|_| panic!("bad crash hook {label:?}")))
    } else {
        panic!("crash hook label {label:?} must be point:<IoPoint> or nth:<k>")
    }
}

fn unique_dir(case: &CrashCase, tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qb-crash-{}-{:x}-{}",
        std::process::id(),
        case.seed,
        tag.replace(':', "_"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pipeline_config(case: &CrashCase, dir: &PathBuf, hook: FaultHook) -> Qb5000Config {
    let mut builder: Qb5000ConfigBuilder = Qb5000Config::builder().durability(
        DurabilityConfig::new(dir)
            .snapshot_every_rounds(case.snapshot_every_rounds)
            .fault_hook(hook),
    );
    if case.traced {
        builder = builder.trace(Tracer::enabled());
    }
    builder.build().expect("crash-case pipeline config is valid")
}

/// Applies `ops` in order. Returns `Ok(len)` when all ops applied, or
/// `Ok(i)` with `i < ops.len()` when the injected crash fired while
/// applying `ops[i]` (the "process" is dead; drop the pipeline and
/// recover). Panics on real (non-injected) durability errors.
fn apply_ops(p: &mut DurablePipeline, ops: &[DurableOp]) -> usize {
    for (i, op) in ops.iter().enumerate() {
        let result = match op {
            DurableOp::Ingest { minute, sql, count } => {
                p.ingest_weighted(*minute, sql, *count).map(|_| ())
            }
            DurableOp::UpdateClusters { now } => p.update_clusters(*now).map(|_| ()),
        };
        match result {
            Ok(()) => {}
            Err(e) if e.is_injected_crash() => return i,
            // Quarantine rejections are normal stream content.
            Err(e) if e.stage() != "durability" => {}
            Err(e) => panic!("unexpected durability error applying op {i}: {e}"),
        }
    }
    ops.len()
}

/// Fingerprints a finished pipeline: exported state, health, a fresh
/// forecast manager's predictions per thread width (raw bits), and the
/// deterministic trace stream when tracing is on.
fn fingerprint(
    case: &CrashCase,
    p: &DurablePipeline,
    horizons: &[usize],
    widths: &[usize],
) -> RunFingerprint {
    let bot = p.bot();
    let now = case.end();
    let specs: Vec<HorizonSpec> = horizons
        .iter()
        .map(|&h| HorizonSpec {
            interval: Interval::HOUR,
            window: 24,
            horizon: h,
            train_steps: (case.days as usize - 1).max(1) * 24,
        })
        .collect();
    let forecasts = widths
        .iter()
        .map(|&w| {
            let mut mgr =
                ForecastManager::new(specs.clone(), || Box::new(LinearRegression::default()));
            mgr.set_threads(w);
            let outcome = mgr.ensure_trained(bot, now).expect("fingerprint training succeeds");
            if outcome == RetrainOutcome::NoClusters {
                // A stream too sparse to track clusters has no forecasts to
                // compare; state/health/trace equality still applies.
                return Vec::new();
            }
            horizons
                .iter()
                .enumerate()
                .map(|(h, _)| mgr.predict(bot, now, h).iter().map(|v| v.to_bits()).collect())
                .collect()
        })
        .collect();
    RunFingerprint {
        state: bot.export_state(),
        health: p.health(),
        forecasts,
        trace_stream: if case.traced {
            bot.tracer().view().deterministic_stream()
        } else {
            String::new()
        },
    }
}

/// Replays the op list crash-free on a fresh directory and fingerprints
/// the result. Also returns the total count of I/O boundaries the clean
/// run visits, which bounds the meaningful `nth:` hook range.
pub fn reference_run(
    case: &CrashCase,
    ops: &[DurableOp],
    horizons: &[usize],
    widths: &[usize],
) -> (RunFingerprint, u64) {
    let dir = unique_dir(case, "reference");
    let io_points = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let counter = io_points.clone();
    let counting_hook = FaultHook::new(move |_| {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        false
    });
    let (mut p, report) = DurablePipeline::open(pipeline_config(case, &dir, counting_hook))
        .expect("fresh reference directory opens");
    assert!(!report.recovered(), "reference run must start fresh");
    let applied = apply_ops(&mut p, ops);
    assert_eq!(applied, ops.len(), "reference run must not crash");
    let fp = fingerprint(case, &p, horizons, widths);
    drop(p);
    let _ = std::fs::remove_dir_all(&dir);
    (fp, io_points.load(std::sync::atomic::Ordering::Relaxed))
}

/// The standard hook set for a case: one `point:` hook per [`IoPoint`]
/// (first visit), plus `samples` evenly-spaced `nth:` hooks spanning the
/// run's full I/O range so late-run boundaries (post-snapshot appends,
/// rotation, pruning) are hit too.
pub fn crash_hooks(total_io_points: u64, samples: u64) -> Vec<String> {
    let mut labels: Vec<String> =
        IoPoint::ALL.iter().map(|p| format!("point:{p:?}")).collect();
    if total_io_points > 0 {
        let samples = samples.min(total_io_points);
        for i in 0..samples {
            // Evenly spaced in [1, total], deterministic, no RNG needed.
            let nth = 1 + (i * (total_io_points - 1)) / samples.max(1);
            labels.push(format!("nth:{nth}"));
        }
        labels.dedup();
    }
    labels
}

/// Runs one labeled crash hook: replay until the hook kills the process,
/// recover from the directory, resume at `ops[durable_seq..]`, finish,
/// and fingerprint. A hook that never fires yields a clean run, which
/// must also match the reference.
pub fn run_with_crash(
    case: &CrashCase,
    ops: &[DurableOp],
    label: &str,
    horizons: &[usize],
    widths: &[usize],
) -> RunFingerprint {
    let dir = unique_dir(case, label);
    let (mut p, _) = DurablePipeline::open(pipeline_config(case, &dir, hook_from_label(label)))
        .expect("fresh crash-run directory opens");
    let crashed_at = apply_ops(&mut p, ops);
    if crashed_at < ops.len() {
        // The "process" died at an I/O boundary inside ops[crashed_at].
        drop(p);
        let (recovered, _report) =
            DurablePipeline::open(pipeline_config(case, &dir, FaultHook::none()))
                .expect("recovery after injected crash succeeds");
        p = recovered;
        // WAL sequence k+1 <=> ops[k], so durable_seq is the resume index.
        let resume = p.durable_seq() as usize;
        assert!(
            resume <= crashed_at + 1,
            "recovery cannot know about operations the caller never completed: \
             resume {resume}, crashed at {crashed_at}"
        );
        let finished = apply_ops(&mut p, &ops[resume..]);
        assert_eq!(finished, ops.len() - resume, "resumed run must not crash again");
    }
    let fp = fingerprint(case, &p, horizons, widths);
    drop(p);
    let _ = std::fs::remove_dir_all(&dir);
    fp
}

/// The full sweep: reference, then every hook from [`crash_hooks`], each
/// diffed against the reference fingerprint.
pub fn run_crash_matrix(
    case: &CrashCase,
    horizons: &[usize],
    widths: &[usize],
    nth_samples: u64,
) -> Result<u64, CrashFailure> {
    let ops = materialize_ops(case);
    let (reference, total_io) = reference_run(case, &ops, horizons, widths);
    let labels = crash_hooks(total_io, nth_samples);
    let count = labels.len() as u64;
    for label in labels {
        let fp = run_with_crash(case, &ops, &label, horizons, widths);
        if let Err(detail) = diff(&reference, &fp) {
            return Err(CrashFailure { case: case.clone(), hook: label, detail });
        }
    }
    Ok(count)
}

/// First divergence between two fingerprints, described for a human.
pub fn diff(reference: &RunFingerprint, recovered: &RunFingerprint) -> Result<(), String> {
    if recovered.state != reference.state {
        return Err("recovered PipelineState differs from the uninterrupted run".into());
    }
    if recovered.health != reference.health {
        return Err(format!(
            "recovered PipelineHealth differs: {:?} vs {:?}",
            recovered.health, reference.health
        ));
    }
    if recovered.forecasts != reference.forecasts {
        return Err("recovered forecasts are not bit-identical".into());
    }
    if recovered.trace_stream != reference.trace_stream {
        return Err("recovered trace stream is not byte-identical".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_list_is_deterministic_and_interleaves_rounds() {
        let case = CrashCase::new(Workload::BusTracker, 7);
        let a = materialize_ops(&case);
        let b = materialize_ops(&case);
        assert_eq!(a, b);
        let rounds = a
            .iter()
            .filter(|op| matches!(op, DurableOp::UpdateClusters { .. }))
            .count();
        // One per 12h boundary crossed plus the closing round.
        assert!(rounds >= 4, "2 days / 12h = 4 rounds, got {rounds}");
        assert!(
            matches!(a.last(), Some(DurableOp::UpdateClusters { now }) if *now == case.end()),
            "the list closes with the final round"
        );
    }

    #[test]
    fn hook_labels_round_trip() {
        for p in IoPoint::ALL {
            hook_from_label(&format!("point:{p:?}")); // must not panic
        }
        let h = hook_from_label("nth:3");
        assert!(!h.should_crash(IoPoint::WalAppendStart));
        assert!(!h.should_crash(IoPoint::WalFrameHalf));
        assert!(h.should_crash(IoPoint::WalFrameFull));
    }

    #[test]
    #[should_panic(expected = "must be point:<IoPoint> or nth:<k>")]
    fn bad_hook_label_panics() {
        hook_from_label("whenever");
    }

    #[test]
    fn crash_hook_set_covers_points_and_samples() {
        let labels = crash_hooks(1000, 5);
        assert_eq!(labels.len(), IoPoint::ALL.len() + 5);
        assert!(labels.iter().any(|l| l == "point:WalFrameHalf"));
        assert!(labels.iter().filter(|l| l.starts_with("nth:")).count() == 5);
    }
}
