//! Seeded SQL corpus generator for the templatizer oracles.
//!
//! Generates a stream of parseable DML statements covering the Table 1
//! query-type mix (the paper's traces are SELECT-heavy with a long tail of
//! INSERT/UPDATE/DELETE): roughly 60 % SELECT, 20 % INSERT, 12 % UPDATE,
//! 8 % DELETE. Small table/column pools make template collisions common,
//! so the corpus exercises both directions of the equality-class
//! comparison: statements that must share a template (same shape,
//! different constants) and statements that must not (different shape).
//!
//! Plain seeded `SmallRng` rather than proptest strategies, so the same
//! corpus is reproducible from a single printed seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TABLES: &[&str] = &["orders", "users", "events"];
const COLUMNS: &[&str] = &["id", "qty", "price", "label"];
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta"];

/// Generates `n` statements from `seed`.
pub fn generate(seed: u64, n: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| statement(&mut rng)).collect()
}

fn statement(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..100u32) {
        0..=59 => select(rng),
        60..=79 => insert(rng),
        80..=91 => update(rng),
        _ => delete(rng),
    }
}

fn table(rng: &mut SmallRng) -> &'static str {
    TABLES[rng.gen_range(0..TABLES.len())]
}

fn column(rng: &mut SmallRng) -> &'static str {
    COLUMNS[rng.gen_range(0..COLUMNS.len())]
}

fn int(rng: &mut SmallRng) -> u32 {
    rng.gen_range(0..10_000u32)
}

fn word(rng: &mut SmallRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

fn comparison(rng: &mut SmallRng) -> String {
    let c = column(rng);
    match rng.gen_range(0..6u32) {
        0 => format!("{c} = {}", int(rng)),
        1 => format!("{c} > {}", int(rng)),
        2 => format!("{c} BETWEEN {} AND {}", int(rng), int(rng)),
        3 => {
            let k = rng.gen_range(1..5usize);
            let items: Vec<String> = (0..k).map(|_| int(rng).to_string()).collect();
            format!("{c} IN ({})", items.join(", "))
        }
        4 => format!("{c} LIKE '{}%'", word(rng)),
        _ => format!("{c} = '{}'", word(rng)),
    }
}

fn predicate(rng: &mut SmallRng) -> String {
    let first = comparison(rng);
    if rng.gen_range(0..3u32) == 0 {
        let second = comparison(rng);
        let op = if rng.gen_range(0..2u32) == 0 { "AND" } else { "OR" };
        format!("{first} {op} {second}")
    } else {
        first
    }
}

fn select(rng: &mut SmallRng) -> String {
    let ncols = rng.gen_range(1..3usize);
    let cols: Vec<&str> = (0..ncols).map(|_| column(rng)).collect();
    let mut s = format!("SELECT {} FROM {}", cols.join(", "), table(rng));
    if rng.gen_range(0..4u32) > 0 {
        s.push_str(&format!(" WHERE {}", predicate(rng)));
    }
    if rng.gen_range(0..4u32) == 0 {
        let dir = if rng.gen_range(0..2u32) == 0 { "ASC" } else { "DESC" };
        s.push_str(&format!(" ORDER BY {} {dir}", column(rng)));
    }
    if rng.gen_range(0..4u32) == 0 {
        // A small fixed menu: LIMIT constants are template identity, so
        // unbounded values would make every limited query its own class.
        let k = [10u32, 50, 100][rng.gen_range(0..3usize)];
        s.push_str(&format!(" LIMIT {k}"));
    }
    s
}

fn insert(rng: &mut SmallRng) -> String {
    let t = table(rng);
    let ncols = rng.gen_range(1..4usize);
    // Distinct columns, in pool order, so arity defines the template.
    let mut cols: Vec<&str> = COLUMNS.to_vec();
    while cols.len() > ncols {
        let drop = rng.gen_range(0..cols.len());
        cols.remove(drop);
    }
    let rows = rng.gen_range(1..4usize);
    let mut row_texts = Vec::new();
    for _ in 0..rows {
        let vals: Vec<String> = cols
            .iter()
            .map(|_| {
                if rng.gen_range(0..2u32) == 0 {
                    int(rng).to_string()
                } else {
                    format!("'{}'", word(rng))
                }
            })
            .collect();
        row_texts.push(format!("({})", vals.join(", ")));
    }
    format!("INSERT INTO {t} ({}) VALUES {}", cols.join(", "), row_texts.join(", "))
}

fn update(rng: &mut SmallRng) -> String {
    let t = table(rng);
    let mut s = format!("UPDATE {t} SET {} = {}", column(rng), int(rng));
    if rng.gen_range(0..2u32) == 0 {
        s.push_str(&format!(", {} = '{}'", column(rng), word(rng)));
    }
    format!("{s} WHERE {}", predicate(rng))
}

fn delete(rng: &mut SmallRng) -> String {
    format!("DELETE FROM {} WHERE {}", table(rng), predicate(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(7, 50), generate(7, 50));
        assert_ne!(generate(7, 50), generate(8, 50));
    }

    #[test]
    fn every_statement_parses() {
        for sql in generate(42, 300) {
            qb_sqlparse::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("corpus SQL must parse: `{sql}`: {e}"));
        }
    }

    #[test]
    fn covers_all_four_statement_kinds() {
        let corpus = generate(1, 400);
        for kind in ["SELECT", "INSERT", "UPDATE", "DELETE"] {
            assert!(
                corpus.iter().any(|s| s.starts_with(kind)),
                "corpus missing {kind} statements"
            );
        }
    }
}
