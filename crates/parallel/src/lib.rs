//! # qb-parallel
//!
//! A small, from-scratch scoped worker pool (std::thread only) for QB5000's
//! independent-work hot paths: per-horizon model training, ensemble member
//! fits, and the bench harness's experiment fan-out.
//!
//! ## Determinism contract
//!
//! Parallel execution must be **bit-identical** to sequential execution:
//!
//! * every task is self-contained — it reads shared inputs immutably and
//!   owns its outputs; no task observes another task's side effects;
//! * results are written to per-task slots and reduced in **fixed task
//!   order**, never in completion order;
//! * tasks needing randomness derive their own seed from
//!   `(base seed, task index)` via [`derive_seed`] instead of sharing a
//!   generator, so the stream a task sees is independent of scheduling.
//!
//! Under this contract the only thing the thread count changes is
//! wall-clock time. The determinism suite (`tests/determinism.rs` in
//! `qb5000`) runs the full forecasting pipeline at 1 and 4 threads and
//! asserts bit-equal outputs.
//!
//! ## Sizing
//!
//! The default thread count comes from the `QB_THREADS` environment
//! variable, falling back to the machine's available parallelism. `1`
//! disables threading entirely (pure sequential execution on the calling
//! thread — not a one-worker pool), which is what CI's `QB_THREADS=1` leg
//! exercises.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Reads the configured worker count: `QB_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (min 1).
///
/// Read on every call (no caching) so tests can vary the variable within
/// one process; the lookup is two orders of magnitude cheaper than any
/// task this crate schedules.
pub fn configured_threads() -> usize {
    match std::env::var("QB_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Derives a per-task seed from a base seed and the task's index
/// (SplitMix64 finalizer — full avalanche, so adjacent indices yield
/// uncorrelated streams).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A degree of parallelism: how many OS threads a component may use.
///
/// `threads == 1` means strictly sequential execution on the calling
/// thread. Copyable so components can hand it down to their members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A parallelism of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Strictly sequential execution.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The environment-configured default ([`configured_threads`]).
    pub fn from_env() -> Self {
        Self::new(configured_threads())
    }

    /// Worker count (≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// True when more than one worker may run.
    pub fn is_parallel(self) -> bool {
        self.threads > 1
    }

    /// Runs two independent closures, concurrently when parallel, and
    /// returns `(a, b)` — always in that order, so reductions over the
    /// pair are deterministic regardless of which finished first.
    pub fn join<RA, RB>(
        self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if !self.is_parallel() {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            let rb = match hb.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            };
            (ra, rb)
        })
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A scoped worker pool over borrowed data.
///
/// The pool owns no threads between calls: each [`ThreadPool::map`] spawns
/// scoped workers, drains a shared index counter, and joins them before
/// returning — so closures may freely borrow from the caller's stack.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    par: Parallelism,
    /// Cached metric handles; no-ops until [`ThreadPool::instrumented`].
    map_time: qb_obs::Histogram,
    tasks: qb_obs::Counter,
}

impl ThreadPool {
    /// A pool of `threads` workers (1 = sequential).
    pub fn new(threads: usize) -> Self {
        Self::with(Parallelism::new(threads))
    }

    /// A pool sized by [`Parallelism`].
    pub fn with(par: Parallelism) -> Self {
        Self { par, map_time: qb_obs::Histogram::default(), tasks: qb_obs::Counter::default() }
    }

    /// Returns this pool with observability enabled: every [`ThreadPool::map`]
    /// records its wall time into `parallel.map` and adds its task count to
    /// `parallel.tasks`. Task counts are independent of the worker count, so
    /// they stay inside the determinism contract.
    #[must_use]
    pub fn instrumented(mut self, recorder: &qb_obs::Recorder) -> Self {
        self.map_time = recorder.histogram("parallel.map");
        self.tasks = recorder.counter("parallel.tasks");
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.par.threads()
    }

    /// Applies `f(index, &mut item)` to every element of a borrowed slice
    /// and returns the results in **input order** — the in-place sibling of
    /// [`ThreadPool::map`] for stateful per-slot work (e.g. the ingest
    /// engine's shards), where moving the items through a `Vec` would force
    /// a take-and-rebuild dance on every call.
    ///
    /// Each element is wrapped in a `Mutex<&mut T>` slot claimed exactly
    /// once via the shared index counter, so workers get disjoint exclusive
    /// access without `unsafe`. The determinism contract is the same as
    /// [`ThreadPool::map`]: `f` must not observe any other slot's effects.
    ///
    /// # Panics
    /// A panicking task propagates to the caller once all workers join.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        let _span = self.map_time.start();
        self.tasks.add(n as u64);
        if !self.par.is_parallel() || n <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.par.threads().min(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().expect("task slot poisoned");
                        let r = f(i, &mut guard);
                        *results[i].lock().expect("result slot poisoned") = Some(r);
                    })
                })
                .collect();
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Applies `f(index, item)` to every item and returns the results in
    /// **input order**, regardless of which worker finished first.
    ///
    /// Work is distributed by an atomic index counter (dynamic load
    /// balancing — a slow task does not stall the queue behind it). Each
    /// result lands in its own slot; the final collection walks the slots
    /// in index order, which is the fixed-order reduction the determinism
    /// contract requires.
    ///
    /// # Panics
    /// A panicking task propagates to the caller once all workers join.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let _span = self.map_time.start();
        self.tasks.add(n as u64);
        if !self.par.is_parallel() || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.par.threads().min(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("each index claimed once");
                        let r = f(i, item);
                        *results[i].lock().expect("result slot poisoned") = Some(r);
                    })
                })
                .collect();
            // Join explicitly so a task panic resurfaces with its original
            // payload (the scope's implicit join would replace it).
            for h in handles {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::with(Parallelism::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        // Make early tasks slow so completion order inverts input order.
        let out = pool.map((0..32usize).collect(), |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * 10
        });
        assert_eq!(out, (0..32usize).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_sequential_bitwise() {
        let work = |i: usize, x: f64| -> f64 {
            // Non-associative float chain: any reordering would change bits.
            let mut acc = x;
            for k in 0..100 {
                acc = acc * 1.000001 + (i as f64) * 0.1 + (k as f64) * 1e-7;
            }
            acc
        };
        let items: Vec<f64> = (0..50).map(|i| i as f64 * 0.37).collect();
        let seq = ThreadPool::new(1).map(items.clone(), work);
        let par = ThreadPool::new(8).map(items, work);
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits);
    }

    #[test]
    fn map_mut_mutates_in_place_preserving_order() {
        let mut items: Vec<u64> = (0..64).collect();
        let out = ThreadPool::new(4).map_mut(&mut items, |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            *x += 100;
            *x
        });
        assert_eq!(out, (100..164).collect::<Vec<u64>>());
        assert_eq!(items, (100..164).collect::<Vec<u64>>());
    }

    #[test]
    fn map_mut_matches_sequential_bitwise() {
        let work = |i: usize, x: &mut f64| -> f64 {
            for k in 0..100 {
                *x = *x * 1.000001 + (i as f64) * 0.1 + (k as f64) * 1e-7;
            }
            *x
        };
        let mut a: Vec<f64> = (0..50).map(|i| i as f64 * 0.37).collect();
        let mut b = a.clone();
        let seq = ThreadPool::new(1).map_mut(&mut a, work);
        let par = ThreadPool::new(8).map_mut(&mut b, work);
        assert_eq!(
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "slot 5 exploded")]
    fn map_mut_panic_propagates() {
        let mut items = vec![0u8; 8];
        ThreadPool::new(2).map_mut(&mut items, |i, _| {
            if i == 5 {
                panic!("slot 5 exploded");
            }
        });
    }

    #[test]
    fn map_moves_items_by_value() {
        let pool = ThreadPool::new(3);
        let out = pool.map(vec![vec![1u8], vec![2], vec![3]], |_, mut v| {
            v.push(9);
            v
        });
        assert_eq!(out, vec![vec![1, 9], vec![2, 9], vec![3, 9]]);
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = ThreadPool::new(4);
        let empty: Vec<i32> = pool.map(Vec::<i32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![7], |i, x| x + i as i32), vec![7]);
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        pool.map((0..8usize).collect(), |i, _| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn join_returns_in_fixed_order() {
        let (a, b) = Parallelism::new(2).join(
            || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                "slow"
            },
            || "fast",
        );
        assert_eq!((a, b), ("slow", "fast"));
        let (a, b) = Parallelism::sequential().join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Stability: the derivation is part of the determinism contract —
        // changing it silently would change every seeded parallel task.
        assert_eq!(derive_seed(0xDEAD, 0), derive_seed(0xDEAD, 0));
        assert_ne!(derive_seed(0xDEAD, 0), derive_seed(0xDEAD, 1));
        assert_ne!(derive_seed(0xDEAD, 1), derive_seed(0xBEEF, 1));
        // Adjacent indices should differ in many bits, not just the low ones.
        let x = derive_seed(7, 100) ^ derive_seed(7, 101);
        assert!(x.count_ones() > 16, "weak avalanche: {x:b}");
    }

    #[test]
    fn instrumented_pool_counts_tasks_identically_across_widths() {
        for threads in [1, 4] {
            let rec = qb_obs::Recorder::new();
            let pool = ThreadPool::new(threads).instrumented(&rec);
            pool.map((0..10usize).collect(), |_, x| x);
            pool.map((0..5usize).collect(), |_, x| x);
            let snap = rec.snapshot();
            assert_eq!(snap.counters["parallel.tasks"], 15, "threads={threads}");
            assert_eq!(snap.histograms["parallel.map"].count, 2, "threads={threads}");
        }
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert!(!Parallelism::new(0).is_parallel());
        assert!(Parallelism::new(2).is_parallel());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
