//! Owned snapshots of the flight recorder: queries, the deterministic
//! event stream, and `explain` — the lineage reconstruction that answers
//! "why did the pipeline make this decision?".

use crate::{chrome, Event, EventId, EventKind};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// An owned, consistent snapshot of everything the tracer retains (pinned
/// lineage + ring), ascending by event id. Obtained from
/// [`crate::Tracer::view`]; safe to hold while the pipeline keeps running.
#[derive(Debug, Clone, Default)]
pub struct TraceView {
    events: Vec<Event>,
}

impl TraceView {
    pub(crate) fn empty() -> Self {
        Self::default()
    }

    pub(crate) fn from_events(events: Vec<Event>) -> Self {
        debug_assert!(events.windows(2).all(|w| w[0].id < w[1].id), "view must ascend by id");
        Self { events }
    }

    /// All retained events, ascending by id.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Looks up one event by id.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.binary_search_by_key(&id, |e| e.id).ok().map(|i| &self.events[i])
    }

    /// All retained events of `kind`, oldest first.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The newest retained event of `kind`.
    pub fn latest(&self, kind: EventKind) -> Option<&Event> {
        self.events.iter().rev().find(|e| e.kind == kind)
    }

    /// The full event stream in the deterministic rendering — one
    /// [`Event::render`] line per event, no wall time. Bit-identical
    /// across thread-pool widths for identical inputs.
    pub fn deterministic_stream(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Reconstructs the causal "why" path of a decision as an indented
    /// tree: the event itself, then (depth-first) its parent chain and
    /// secondary refs. Already-printed events render as back-references,
    /// evicted-and-unpinned ones as `(evicted)`. Output is byte-stable
    /// for identical traces.
    pub fn explain(&self, id: EventId) -> String {
        let mut out = String::new();
        let mut visited = BTreeSet::new();
        self.explain_rec(id, 0, &mut visited, &mut out);
        out
    }

    fn explain_rec(
        &self,
        id: EventId,
        depth: usize,
        visited: &mut BTreeSet<EventId>,
        out: &mut String,
    ) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let Some(ev) = self.get(id) else {
            let _ = writeln!(out, "{id} (evicted)");
            return;
        };
        if !visited.insert(id) {
            let _ = writeln!(out, "{id} (see above)");
            return;
        }
        let _ = writeln!(out, "{}", ev.render());
        // Primary parent first, then secondary refs, each cause once.
        let mut causes: Vec<EventId> = Vec::new();
        if let Some(p) = ev.parent {
            causes.push(p);
        }
        for r in &ev.refs {
            if !causes.contains(r) {
                causes.push(*r);
            }
        }
        for c in causes {
            self.explain_rec(c, depth + 1, visited, out);
        }
    }

    /// Exports the snapshot as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`). See [`chrome::to_chrome_json`].
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventDraft, Tracer};

    fn chain() -> (Tracer, EventId) {
        let t = Tracer::enabled();
        t.begin_round(0);
        let seen = t.record(EventDraft::new(EventKind::QuerySeen).uint("len", 30)).unwrap();
        let tpl = t
            .record(EventDraft::new(EventKind::TemplateCreated).parent(seen).uint("template", 0))
            .unwrap();
        let cl = t
            .record(EventDraft::new(EventKind::ClusterCreated).parent(tpl).uint("cluster", 0))
            .unwrap();
        let fit = t
            .record(EventDraft::new(EventKind::ModelFit).parent(cl).uint("horizon", 0))
            .unwrap();
        let built = t
            .record(EventDraft::new(EventKind::IndexBuilt).parent(fit).reference(tpl).text("table", "t"))
            .unwrap();
        (t, built)
    }

    #[test]
    fn explain_walks_the_full_chain() {
        let (t, built) = chain();
        let explain = t.view().explain(built);
        for kind in ["IndexBuilt", "ModelFit", "ClusterCreated", "TemplateCreated", "QuerySeen"] {
            assert!(explain.contains(kind), "missing {kind} in:\n{explain}");
        }
        // The ref to the template re-renders as a back-reference, not a
        // duplicated subtree.
        assert!(explain.contains("(see above)"), "{explain}");
    }

    #[test]
    fn explain_is_byte_stable() {
        let (t1, b1) = chain();
        let (t2, b2) = chain();
        assert_eq!(b1, b2);
        assert_eq!(t1.view().explain(b1), t2.view().explain(b2));
    }

    #[test]
    fn stream_orders_by_id_and_omits_wall_time() {
        let (t, _) = chain();
        let view = t.view();
        let stream = view.deterministic_stream();
        assert_eq!(stream.lines().count(), view.events().len());
        let ids: Vec<&str> =
            stream.lines().map(|l| l.split_whitespace().next().unwrap()).collect();
        let mut sorted = ids.clone();
        sorted.sort_by_key(|s| s[1..].parse::<u64>().unwrap());
        assert_eq!(ids, sorted);
        assert!(!stream.contains("micros"));
    }

    #[test]
    fn queries_find_events() {
        let (t, built) = chain();
        let view = t.view();
        assert_eq!(view.latest(EventKind::IndexBuilt).unwrap().id, built);
        assert_eq!(view.of_kind(EventKind::ModelFit).count(), 1);
        assert!(view.get(EventId(999)).is_none());
    }
}
