//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`
//! loadable) plus a hand-rolled JSON parser used by tests and the CI
//! example to validate exported traces without external dependencies.

use crate::{Event, EventKind, Value};
use std::fmt::Write as _;

/// Serializes events in the Chrome trace-event format:
/// `{"traceEvents":[…],"displayTimeUnit":"ms"}`. Wall-timed stage spans
/// become complete (`"ph":"X"`) events; everything else becomes a
/// thread-scoped instant (`"ph":"i"`). Lanes map to `tid`, the logical
/// payload rides along in `args` so the UI shows ids, rounds, and values.
pub fn to_chrome_json(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = display_name(ev);
        let (ph, ts, dur) = match ev.wall {
            Some(w) if w.dur_micros > 0 => ("X", w.start_micros, Some(w.dur_micros)),
            Some(w) => ("i", w.start_micros, None),
            None => ("i", 0, None),
        };
        let _ = write!(out, "{{\"name\":\"");
        escape_into(&mut out, &name);
        let _ = write!(out, "\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{}", ev.lane);
        if let Some(d) = dur {
            let _ = write!(out, ",\"dur\":{d}");
        }
        if ph == "i" {
            // Thread-scoped instant marker.
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(out, ",\"args\":{{\"id\":{},\"round\":{},\"seq\":{}", ev.id.0, ev.round, ev.seq);
        if let Some(p) = ev.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        for (k, v) in &ev.payload {
            let _ = write!(out, ",\"");
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                Value::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Uint(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Float(n) if n.is_finite() => {
                    let _ = write!(out, "{n}");
                }
                Value::Float(_) => out.push_str("null"),
                Value::Text(s) => {
                    out.push('"');
                    escape_into(&mut out, s);
                    out.push('"');
                }
                Value::Flag(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Stage spans are named after their stage; other events after their kind.
fn display_name(ev: &Event) -> String {
    if ev.kind == EventKind::StageSpan {
        if let Some((_, Value::Text(s))) = ev.payload.iter().find(|(k, _)| *k == "stage") {
            return s.clone();
        }
    }
    format!("{:?}", ev.kind)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value (minimal, owned). Numbers are `f64`, object keys
/// keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Strict recursive-descent JSON parser: rejects trailing garbage,
/// unterminated strings, and malformed escapes. Exists so CI can prove
/// an exported Chrome trace *parses* without pulling in a JSON crate.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogates are replaced, not paired — exported
                        // traces never contain them.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventDraft, EventKind, Tracer};

    #[test]
    fn export_round_trips_through_the_parser() {
        let t = Tracer::enabled();
        t.begin_round(0);
        t.record(EventDraft::new(EventKind::TemplateCreated).uint("template", 7).text(
            "body",
            "SELECT \"x\\y\"\nFROM t",
        ));
        {
            let _g = t.stage("clusterer.update");
        }
        let json = t.view().to_chrome_json();
        let parsed = parse_json(&json).expect("exported trace must parse");
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 3);
        // The stage span exports as a complete event with a duration.
        let span = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("clusterer.update"))
            .unwrap();
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert!(span.get("dur").and_then(Json::as_f64).is_some());
        // Instants carry their logical clock in args.
        let tpl = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("TemplateCreated"))
            .unwrap();
        assert_eq!(tpl.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(tpl.get("args").and_then(|a| a.get("template")).and_then(Json::as_f64), Some(7.0));
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v = parse_json(r#" {"a": [1, -2.5e2, "sA", true, null], "b": {}} "#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-250.0));
        assert_eq!(a[2].as_str(), Some("sA"));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["{", "[1,]", "\"abc", "{\"a\" 1}", "12 34", "tru", "{\"a\":}"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }
}
