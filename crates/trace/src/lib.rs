//! # qb-trace
//!
//! Deterministic structured tracing, decision lineage, and a bounded
//! flight recorder for the QB5000 pipeline (std only, zero deps beyond
//! `qb-obs`).
//!
//! ## Design
//!
//! * **Deterministic logical clock.** Every [`Event`] carries a global id
//!   plus a `(round, seq)` logical timestamp. Rounds advance at cluster
//!   refresh boundaries ([`Tracer::begin_round`]); `seq` counts emissions
//!   within a round. No wall time participates in ids, ordering, or the
//!   deterministic stream — [`TraceView::deterministic_stream`] and
//!   [`TraceView::explain`] are bit-identical across thread-pool widths.
//!   Wall timestamps *are* captured alongside (when enabled) but feed only
//!   the Chrome trace-event export.
//! * **Decision lineage.** Events link to their causes via `parent` and
//!   `refs` ids, and pipeline stages publish [`Scope`] anchors (template
//!   id → its `TemplateCreated` event, …) so later stages can link to
//!   causes they never saw directly. [`TraceView::explain`] walks the
//!   links and reconstructs the full "why" path for any decision.
//! * **Bounded memory.** Events live in a fixed-capacity ring. Eviction is
//!   counted (surfaced as the `trace.ring_evictions` gauge once a
//!   [`Recorder`] is bound) and lineage survives it: whenever an event is
//!   linked as a parent/ref or anchored, the linked event is *pinned* into
//!   a bounded side map at link time, so `explain` never dangles.
//! * **Deterministic parallelism.** Worker closures emit into per-task
//!   [`LaneBuffer`]s; [`Tracer::merge_lanes`] assigns ids in input-lane
//!   order after the join, mirroring `qb-parallel`'s ordering guarantee.
//! * **Flight-recorder dumps.** [`Tracer::trigger_dump`] (called by the
//!   pipeline on forecast divergence, degradation downgrades, and —
//!   internally — quarantine spikes) snapshots the last N events plus the
//!   lineage slice of the triggering decision into a [`TraceDump`].
//!
//! ```
//! use qb_trace::{EventDraft, EventKind, Tracer};
//!
//! let tracer = Tracer::enabled();
//! tracer.begin_round(0);
//! let seen = tracer.record(EventDraft::new(EventKind::QuerySeen).uint("len", 25)).unwrap();
//! let tpl = tracer
//!     .record(EventDraft::new(EventKind::TemplateCreated).parent(seen).uint("template", 0))
//!     .unwrap();
//! let view = tracer.view();
//! assert!(view.explain(tpl).contains("QuerySeen"));
//! ```

pub mod chrome;
pub mod view;

pub use chrome::{parse_json, to_chrome_json, Json};
pub use view::TraceView;

use qb_obs::{Gauge, Recorder};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Typed event kinds — the trace taxonomy. One variant per consequential
/// pipeline transition; see DESIGN.md for the emitting site of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A logical round (cluster refresh cycle) began.
    RoundStarted,
    /// First sighting of a query shape (emitted once per new template).
    QuerySeen,
    /// A new template was interned.
    TemplateCreated,
    /// A statement failed templatization and was quarantined.
    QueryQuarantined,
    /// Quarantine admissions crossed the per-round spike threshold.
    QuarantineSpike,
    /// The clusterer minted a new cluster.
    ClusterCreated,
    /// A template moved onto an existing cluster.
    ClusterAssigned,
    /// Two clusters merged.
    ClusterMerged,
    /// A template was evicted from cluster tracking.
    ClusterEvicted,
    /// One full clusterer update cycle finished.
    ClustersUpdated,
    /// A per-horizon model finished fitting.
    ModelFit,
    /// A per-horizon model fit failed.
    ModelFitFailed,
    /// The divergence guard tripped on a fitted model.
    DivergenceGuard,
    /// A model's degradation level changed.
    DegradationTransition,
    /// A retrain was rolled back to the previous model set.
    RetrainRolledBack,
    /// The retrain backoff gate deferred a retrain.
    RetrainBackedOff,
    /// A per-horizon forecast was issued.
    ForecastIssued,
    /// Multi-horizon forecasts were blended into a workload prediction.
    ForecastBlended,
    /// The advisor built an index.
    IndexBuilt,
    /// A wall-timed pipeline stage span (Chrome export only).
    StageSpan,
    /// A forecast snapshot was published to the serving layer (qb-serve
    /// epoch swap); payload carries the epoch, publication reason, and
    /// entry/sharing counts, with parents linking to the fits that
    /// produced the published curves.
    SnapshotPublished,
    /// A cold-start forecast was seeded for a template outside the
    /// trained cluster set; payload carries the template, the origin
    /// (`cluster_share` with its cluster and share, or
    /// `population_prior`), and the seeded value, with lineage to the
    /// cluster assignment the seed was derived from.
    TemplateColdStart,
    /// An alert rule transitioned to firing; payload carries the rule
    /// name, severity, the offending metric and value, and the round the
    /// condition first held, with parents linking to the evidence events
    /// of the violation window.
    AlertFired,
    /// A firing alert's clear window completed and it resolved; payload
    /// carries the rule name and the rounds the alert was active, with a
    /// parent linking back to the [`EventKind::AlertFired`] event.
    AlertResolved,
}

impl EventKind {
    /// Stable numeric code for durable serialization. Append-only: codes
    /// are part of the snapshot format and must never be reused.
    pub fn to_code(self) -> u8 {
        match self {
            EventKind::RoundStarted => 0,
            EventKind::QuerySeen => 1,
            EventKind::TemplateCreated => 2,
            EventKind::QueryQuarantined => 3,
            EventKind::QuarantineSpike => 4,
            EventKind::ClusterCreated => 5,
            EventKind::ClusterAssigned => 6,
            EventKind::ClusterMerged => 7,
            EventKind::ClusterEvicted => 8,
            EventKind::ClustersUpdated => 9,
            EventKind::ModelFit => 10,
            EventKind::ModelFitFailed => 11,
            EventKind::DivergenceGuard => 12,
            EventKind::DegradationTransition => 13,
            EventKind::RetrainRolledBack => 14,
            EventKind::RetrainBackedOff => 15,
            EventKind::ForecastIssued => 16,
            EventKind::ForecastBlended => 17,
            EventKind::IndexBuilt => 18,
            EventKind::StageSpan => 19,
            EventKind::SnapshotPublished => 20,
            EventKind::TemplateColdStart => 21,
            EventKind::AlertFired => 22,
            EventKind::AlertResolved => 23,
        }
    }

    /// Inverse of [`EventKind::to_code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => EventKind::RoundStarted,
            1 => EventKind::QuerySeen,
            2 => EventKind::TemplateCreated,
            3 => EventKind::QueryQuarantined,
            4 => EventKind::QuarantineSpike,
            5 => EventKind::ClusterCreated,
            6 => EventKind::ClusterAssigned,
            7 => EventKind::ClusterMerged,
            8 => EventKind::ClusterEvicted,
            9 => EventKind::ClustersUpdated,
            10 => EventKind::ModelFit,
            11 => EventKind::ModelFitFailed,
            12 => EventKind::DivergenceGuard,
            13 => EventKind::DegradationTransition,
            14 => EventKind::RetrainRolledBack,
            15 => EventKind::RetrainBackedOff,
            16 => EventKind::ForecastIssued,
            17 => EventKind::ForecastBlended,
            18 => EventKind::IndexBuilt,
            19 => EventKind::StageSpan,
            20 => EventKind::SnapshotPublished,
            21 => EventKind::TemplateColdStart,
            22 => EventKind::AlertFired,
            23 => EventKind::AlertResolved,
            _ => return None,
        })
    }
}

/// Anchor namespaces: `(Scope, key)` names the latest defining event for
/// an entity, letting stages link to causes they never observed directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Key = template id; anchors its `TemplateCreated` event.
    Template,
    /// Key = cluster id; anchors its `ClusterCreated` event.
    Cluster,
    /// Key = horizon index; anchors the latest `ModelFit` for it.
    Horizon,
    /// Key = 0; anchors the latest `ClustersUpdated` event.
    ClusterState,
}

impl Scope {
    /// Stable numeric code for durable serialization (append-only).
    pub fn to_code(self) -> u8 {
        match self {
            Scope::Template => 0,
            Scope::Cluster => 1,
            Scope::Horizon => 2,
            Scope::ClusterState => 3,
        }
    }

    /// Inverse of [`Scope::to_code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Scope::Template,
            1 => Scope::Cluster,
            2 => Scope::Horizon,
            3 => Scope::ClusterState,
            _ => return None,
        })
    }
}

/// Identifier of one recorded event; globally monotonic within a tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A typed payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Uint(u64),
    Float(f64),
    Text(String),
    Flag(bool),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Uint(v) => write!(f, "{v}"),
            // `{}` on f64 is shortest-round-trip, so bit-identical floats
            // render byte-identically — safe for the deterministic stream.
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
            Value::Flag(v) => write!(f, "{v}"),
        }
    }
}

/// Wall-clock span (µs since the tracer's epoch). Deliberately excluded
/// from the deterministic stream and `explain`; consumed only by the
/// Chrome exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSpan {
    pub start_micros: u64,
    pub dur_micros: u64,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub id: EventId,
    /// Logical clock: cluster-refresh round …
    pub round: u64,
    /// … and emission sequence within the round.
    pub seq: u64,
    /// Thread-lane the event was emitted from (0 for the control thread;
    /// 1 + input index for fan-out lanes). Deterministic by construction.
    pub lane: u32,
    pub kind: EventKind,
    pub parent: Option<EventId>,
    /// Additional causal links beyond the primary parent.
    pub refs: Vec<EventId>,
    pub payload: Vec<(&'static str, Value)>,
    pub wall: Option<WallSpan>,
}

impl Event {
    /// The deterministic single-line rendering used by streams, dumps and
    /// `explain` — everything except wall time.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{} r{}.{} lane{} {:?}", self.id, self.round, self.seq, self.lane, self.kind);
        if let Some(p) = self.parent {
            let _ = write!(out, " <-{p}");
        }
        for r in &self.refs {
            let _ = write!(out, " ~{r}");
        }
        for (k, v) in &self.payload {
            let _ = write!(out, " {k}={v}");
        }
        out
    }
}

/// A causal link that may point at an already-assigned event or at an
/// earlier entry of the same [`LaneBuffer`] (resolved at merge time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentRef {
    None,
    Event(EventId),
    /// Index into the same lane's pending list.
    Local(usize),
}

/// An event under construction: kind, causal links, payload. Cheap to
/// build; callers should still gate draft construction behind
/// [`Tracer::is_enabled`] on hot paths.
#[derive(Debug, Clone)]
pub struct EventDraft {
    kind: EventKind,
    parent: ParentRef,
    refs: Vec<ParentRef>,
    payload: Vec<(&'static str, Value)>,
}

impl EventDraft {
    pub fn new(kind: EventKind) -> Self {
        Self { kind, parent: ParentRef::None, refs: Vec::new(), payload: Vec::new() }
    }

    /// Sets the primary causal parent.
    pub fn parent(mut self, id: EventId) -> Self {
        self.parent = ParentRef::Event(id);
        self
    }

    /// Parent, if known.
    pub fn parent_opt(self, id: Option<EventId>) -> Self {
        match id {
            Some(id) => self.parent(id),
            None => self,
        }
    }

    /// Parent = an earlier entry (by push index) of the same lane buffer.
    pub fn parent_local(mut self, idx: usize) -> Self {
        self.parent = ParentRef::Local(idx);
        self
    }

    /// Adds a secondary causal link.
    pub fn reference(mut self, id: EventId) -> Self {
        self.refs.push(ParentRef::Event(id));
        self
    }

    /// Secondary link, if known.
    pub fn reference_opt(self, id: Option<EventId>) -> Self {
        match id {
            Some(id) => self.reference(id),
            None => self,
        }
    }

    pub fn int(mut self, key: &'static str, v: i64) -> Self {
        self.payload.push((key, Value::Int(v)));
        self
    }

    pub fn uint(mut self, key: &'static str, v: u64) -> Self {
        self.payload.push((key, Value::Uint(v)));
        self
    }

    pub fn float(mut self, key: &'static str, v: f64) -> Self {
        self.payload.push((key, Value::Float(v)));
        self
    }

    pub fn text(mut self, key: &'static str, v: &str) -> Self {
        self.payload.push((key, Value::Text(v.to_string())));
        self
    }

    pub fn flag(mut self, key: &'static str, v: bool) -> Self {
        self.payload.push((key, Value::Flag(v)));
        self
    }
}

/// Flight-recorder configuration (see `Qb5000Config::builder().trace(…)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSettings {
    /// Ring-buffer capacity in events.
    pub capacity: usize,
    /// Bound on the pinned-lineage side map.
    pub pin_capacity: usize,
    /// How many trailing events a dump snapshots.
    pub dump_events: usize,
    /// Quarantine admissions within one round that trigger an automatic
    /// `QuarantineSpike` dump (0 disables the trigger).
    pub quarantine_spike: u64,
}

impl Default for TraceSettings {
    fn default() -> Self {
        Self { capacity: 4096, pin_capacity: 4096, dump_events: 48, quarantine_spike: 64 }
    }
}

/// One flight-recorder dump: the trailing event window plus the lineage
/// slice of the decision that triggered it, both in the deterministic
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDump {
    /// What fired the dump, e.g. `"diverged"`, `"degraded"`,
    /// `"quarantine_spike"`.
    pub reason: String,
    /// Logical round at dump time.
    pub round: u64,
    /// Last N events, one [`Event::render`] line each.
    pub recent: String,
    /// `explain()` of the triggering event (empty if none was given).
    pub lineage: String,
}

#[derive(Debug, Default)]
struct RecState {
    next_id: u64,
    round: u64,
    seq: u64,
    /// Id of `ring[0]`; ids are consecutive, so lookup is O(1).
    front_id: u64,
    ring: VecDeque<Event>,
    /// Events evicted from the ring but pinned because lineage links or
    /// anchors point at them.
    pinned: BTreeMap<u64, Event>,
    pin_order: VecDeque<u64>,
    anchors: BTreeMap<(Scope, u64), EventId>,
    dumps: Vec<TraceDump>,
    evictions: u64,
    /// Quarantine admissions since the round began (spike detection).
    round_rejects: u64,
    /// Observability hooks, installed by [`Tracer::bind_recorder`].
    recorder: Recorder,
    eviction_gauge: Gauge,
}

impl RecState {
    fn get(&self, id: EventId) -> Option<&Event> {
        if id.0 >= self.front_id {
            self.ring.get((id.0 - self.front_id) as usize)
        } else {
            self.pinned.get(&id.0)
        }
    }

    /// Copies a live event into the pinned map so ring eviction cannot
    /// orphan a lineage link. FIFO-bounded by `pin_capacity`.
    fn pin(&mut self, id: EventId, pin_capacity: usize) {
        if self.pinned.contains_key(&id.0) {
            return;
        }
        let Some(ev) = self.get(id).cloned() else { return };
        self.pinned.insert(id.0, ev);
        self.pin_order.push_back(id.0);
        while self.pin_order.len() > pin_capacity {
            if let Some(old) = self.pin_order.pop_front() {
                self.pinned.remove(&old);
            }
        }
    }

    /// Pinned + ring, ascending by id (ring ids are all newer than pins).
    fn all_events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .pinned
            .values()
            .filter(|e| e.id.0 < self.front_id)
            .cloned()
            .collect();
        out.extend(self.ring.iter().cloned());
        out
    }
}

#[derive(Debug)]
struct TraceCore {
    state: Mutex<RecState>,
    settings: TraceSettings,
    epoch: Instant,
}

/// A cloneable handle onto one flight recorder — or onto nothing at all
/// ([`Tracer::disabled`], the `Default`), in which case every operation is
/// an `Option` check and nothing else. Mirrors `qb_obs::Recorder`'s
/// enable/disable shape so the pipeline can thread both the same way.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceCore>>,
}

impl Tracer {
    /// An enabled tracer with explicit settings.
    pub fn new(settings: TraceSettings) -> Self {
        assert!(settings.capacity > 0, "trace ring capacity must be positive");
        Self {
            inner: Some(Arc::new(TraceCore {
                state: Mutex::new(RecState::default()),
                settings,
                epoch: Instant::now(),
            })),
        }
    }

    /// An enabled tracer with [`TraceSettings::default`].
    pub fn enabled() -> Self {
        Self::new(TraceSettings::default())
    }

    /// The no-op tracer (the `Default`).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The settings this tracer was built with (`None` when disabled).
    pub fn settings(&self) -> Option<TraceSettings> {
        self.inner.as_ref().map(|c| c.settings)
    }

    /// Installs qb-obs hooks: ring evictions surface as the
    /// `trace.ring_evictions` gauge and each dump increments
    /// `trace.dumps{reason="…"}`.
    pub fn bind_recorder(&self, rec: &Recorder) {
        if let Some(core) = &self.inner {
            let mut st = core.state.lock().expect("trace state poisoned");
            st.eviction_gauge = rec.gauge("trace.ring_evictions");
            st.eviction_gauge.set(st.evictions as f64);
            st.recorder = rec.clone();
        }
    }

    /// Advances the logical clock to `round`, resetting the in-round
    /// sequence and the quarantine spike window, and emits
    /// [`EventKind::RoundStarted`]. Returns the round event's id.
    pub fn begin_round(&self, now_minute: i64) -> Option<EventId> {
        let core = self.inner.as_ref()?;
        {
            let mut st = core.state.lock().expect("trace state poisoned");
            st.round += 1;
            st.seq = 0;
            st.round_rejects = 0;
        }
        self.record(EventDraft::new(EventKind::RoundStarted).int("now_minute", now_minute))
    }

    /// Records one event on the control lane (lane 0). Returns its id, or
    /// `None` when disabled.
    pub fn record(&self, draft: EventDraft) -> Option<EventId> {
        self.record_on_lane(draft, 0, None)
    }

    /// Records one event with an explicit wall span (Chrome export only).
    pub fn record_timed(&self, draft: EventDraft, wall: WallSpan) -> Option<EventId> {
        self.record_on_lane(draft, 0, Some(wall))
    }

    fn record_on_lane(&self, draft: EventDraft, lane: u32, wall: Option<WallSpan>) -> Option<EventId> {
        let core = self.inner.as_ref()?;
        let wall = wall.or_else(|| {
            // Instant timestamp for the Chrome export. Never feeds ids,
            // ordering, or the deterministic stream.
            Some(WallSpan {
                start_micros: core.epoch.elapsed().as_micros() as u64,
                dur_micros: 0,
            })
        });
        let kind = draft.kind;
        let mut st = core.state.lock().expect("trace state poisoned");
        let id = commit_locked(&mut st, &core.settings, draft, lane, wall);
        // Spike detection is internal to the recorder: QueryQuarantined
        // emissions are counted per round, and crossing the threshold
        // fires exactly one dump for the round.
        if kind == EventKind::QueryQuarantined {
            st.round_rejects += 1;
            let threshold = core.settings.quarantine_spike;
            if threshold > 0 && st.round_rejects == threshold {
                let spike = commit_locked(
                    &mut st,
                    &core.settings,
                    EventDraft::new(EventKind::QuarantineSpike)
                        .parent(id)
                        .uint("rejected_this_round", threshold),
                    lane,
                    None,
                );
                dump_locked(&mut st, &core.settings, "quarantine_spike", Some(spike));
            }
        }
        Some(id)
    }

    /// Publishes `(scope, key) → id` and pins the event so the anchor
    /// outlives ring eviction.
    pub fn set_anchor(&self, scope: Scope, key: u64, id: EventId) {
        if let Some(core) = &self.inner {
            let mut st = core.state.lock().expect("trace state poisoned");
            st.pin(id, core.settings.pin_capacity);
            st.anchors.insert((scope, key), id);
        }
    }

    /// Looks up the latest anchor for `(scope, key)`.
    pub fn anchor(&self, scope: Scope, key: u64) -> Option<EventId> {
        let core = self.inner.as_ref()?;
        let st = core.state.lock().expect("trace state poisoned");
        st.anchors.get(&(scope, key)).copied()
    }

    /// Starts a wall-timed stage span; the [`EventKind::StageSpan`] event
    /// is recorded when the guard drops. When disabled the guard never
    /// reads the clock.
    pub fn stage(&self, name: &'static str) -> StageGuard {
        StageGuard {
            tracer: self.clone(),
            name,
            start: self.inner.as_ref().map(|c| (Instant::now(), c.epoch)),
        }
    }

    /// Merges worker-lane buffers into the trace in input-lane order —
    /// deterministic regardless of how many threads executed the lanes.
    /// Returns, per lane, the ids assigned to its pending events.
    pub fn merge_lanes(&self, lanes: Vec<LaneBuffer>) -> Vec<Vec<EventId>> {
        let Some(core) = &self.inner else { return Vec::new() };
        let mut st = core.state.lock().expect("trace state poisoned");
        let mut out = Vec::with_capacity(lanes.len());
        for lane_buf in lanes {
            let mut ids: Vec<EventId> = Vec::with_capacity(lane_buf.pending.len());
            for (draft, wall) in lane_buf.pending {
                // Resolve lane-local links against already-assigned ids.
                let resolve = |r: ParentRef, ids: &[EventId]| match r {
                    ParentRef::None => ParentRef::None,
                    ParentRef::Event(id) => ParentRef::Event(id),
                    ParentRef::Local(i) => {
                        debug_assert!(i < ids.len(), "lane-local link must point backwards");
                        ids.get(i).copied().map_or(ParentRef::None, ParentRef::Event)
                    }
                };
                let draft = EventDraft {
                    kind: draft.kind,
                    parent: resolve(draft.parent, &ids),
                    refs: draft.refs.iter().map(|&r| resolve(r, &ids)).collect(),
                    payload: draft.payload,
                };
                let id = commit_locked(&mut st, &core.settings, draft, lane_buf.lane, wall);
                ids.push(id);
            }
            out.push(ids);
        }
        out
    }

    /// Snapshots a dump: the trailing event window plus (optionally) the
    /// lineage of `focus`. Also bumps `trace.dumps{reason="…"}` on the
    /// bound recorder. No-op when disabled.
    pub fn trigger_dump(&self, reason: &str, focus: Option<EventId>) {
        if let Some(core) = &self.inner {
            let mut st = core.state.lock().expect("trace state poisoned");
            dump_locked(&mut st, &core.settings, reason, focus);
        }
    }

    /// Dumps captured so far (oldest first), leaving them in place.
    pub fn dumps(&self) -> Vec<TraceDump> {
        self.inner.as_ref().map_or_else(Vec::new, |core| {
            core.state.lock().expect("trace state poisoned").dumps.clone()
        })
    }

    /// Total events evicted from the ring so far.
    pub fn evictions(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |core| core.state.lock().expect("trace state poisoned").evictions)
    }

    /// An owned, consistent view over everything currently retained
    /// (pinned lineage + ring), for queries, `explain`, and export.
    pub fn view(&self) -> TraceView {
        self.inner.as_ref().map_or_else(TraceView::empty, |core| {
            let st = core.state.lock().expect("trace state poisoned");
            TraceView::from_events(st.all_events())
        })
    }

    /// Exports the complete recorder state as plain data (durable-snapshot
    /// support). Wall spans are deliberately dropped: they never feed ids,
    /// ordering, or the deterministic stream, and a restored process has a
    /// new epoch anyway. Returns `None` when disabled.
    pub fn export_state(&self) -> Option<TracerState> {
        let core = self.inner.as_ref()?;
        let st = core.state.lock().expect("trace state poisoned");
        let record = |e: &Event| EventRecord {
            id: e.id.0,
            round: e.round,
            seq: e.seq,
            lane: e.lane,
            kind: e.kind,
            parent: e.parent.map(|p| p.0),
            refs: e.refs.iter().map(|r| r.0).collect(),
            payload: e.payload.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        };
        Some(TracerState {
            next_id: st.next_id,
            round: st.round,
            seq: st.seq,
            front_id: st.front_id,
            ring: st.ring.iter().map(record).collect(),
            pinned: st.pinned.values().map(record).collect(),
            pin_order: st.pin_order.iter().copied().collect(),
            anchors: st.anchors.iter().map(|(&(s, k), &id)| (s, k, id.0)).collect(),
            dumps: st.dumps.clone(),
            evictions: st.evictions,
            round_rejects: st.round_rejects,
        })
    }

    /// Rebuilds an enabled tracer from exported state. Restored events
    /// carry no wall spans ([`Event::render`] and the deterministic stream
    /// never read them); the logical clock, ring, pinned lineage, anchors,
    /// and dumps continue exactly where the export left off.
    pub fn restore(settings: TraceSettings, state: TracerState) -> Self {
        let tracer = Tracer::new(settings);
        {
            let core = tracer.inner.as_ref().expect("Tracer::new is enabled");
            let mut st = core.state.lock().expect("trace state poisoned");
            st.next_id = state.next_id;
            st.round = state.round;
            st.seq = state.seq;
            st.front_id = state.front_id;
            st.ring = state.ring.into_iter().map(restore_event).collect();
            st.pinned = state.pinned.into_iter().map(|r| (r.id, restore_event(r))).collect();
            st.pin_order = state.pin_order.into_iter().collect();
            st.anchors =
                state.anchors.into_iter().map(|(s, k, id)| ((s, k), EventId(id))).collect();
            st.dumps = state.dumps;
            st.evictions = state.evictions;
            st.round_rejects = state.round_rejects;
        }
        tracer
    }
}

/// Rehydrates one exported event (wall span intentionally absent).
fn restore_event(r: EventRecord) -> Event {
    Event {
        id: EventId(r.id),
        round: r.round,
        seq: r.seq,
        lane: r.lane,
        kind: r.kind,
        parent: r.parent.map(EventId),
        refs: r.refs.into_iter().map(EventId).collect(),
        payload: r.payload.into_iter().map(|(k, v)| (intern_key(&k), v)).collect(),
        wall: None,
    }
}

/// Interns a payload key back to `&'static str` after deserialization.
/// Event payload keys come from a small fixed vocabulary of string
/// literals, so the leaked set is bounded by that vocabulary's size.
fn intern_key(key: &str) -> &'static str {
    static KEYS: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = KEYS.lock().expect("trace key interner poisoned");
    if let Some(&k) = map.get(key) {
        return k;
    }
    let leaked: &'static str = Box::leak(key.to_string().into_boxed_str());
    map.insert(key.to_string(), leaked);
    leaked
}

/// Plain-data snapshot of one [`Event`] (wall span excluded by design).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub id: u64,
    pub round: u64,
    pub seq: u64,
    pub lane: u32,
    pub kind: EventKind,
    pub parent: Option<u64>,
    pub refs: Vec<u64>,
    pub payload: Vec<(String, Value)>,
}

/// Plain-data snapshot of a [`Tracer`]'s recorder state (durable-state
/// export). Ring events are oldest-first; pinned events ascend by id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TracerState {
    pub next_id: u64,
    pub round: u64,
    pub seq: u64,
    pub front_id: u64,
    pub ring: Vec<EventRecord>,
    pub pinned: Vec<EventRecord>,
    pub pin_order: Vec<u64>,
    /// `(scope, key, event id)` triples, ascending by `(scope, key)`.
    pub anchors: Vec<(Scope, u64, u64)>,
    pub dumps: Vec<TraceDump>,
    pub evictions: u64,
    pub round_rejects: u64,
}

/// Appends one event under the lock: resolves links, pins link targets,
/// assigns `(id, round, seq)`, and evicts the ring tail past capacity.
fn commit_locked(
    st: &mut RecState,
    settings: &TraceSettings,
    draft: EventDraft,
    lane: u32,
    wall: Option<WallSpan>,
) -> EventId {
    let id = EventId(st.next_id);
    st.next_id += 1;
    st.seq += 1;
    let parent = match draft.parent {
        ParentRef::Event(p) => Some(p),
        _ => None,
    };
    let refs: Vec<EventId> = draft
        .refs
        .iter()
        .filter_map(|r| match r {
            ParentRef::Event(p) => Some(*p),
            _ => None,
        })
        .collect();
    // Pin at link time: anything this event points at must survive ring
    // eviction for `explain` to stay complete.
    for target in parent.iter().chain(refs.iter()) {
        st.pin(*target, settings.pin_capacity);
    }
    let ev = Event {
        id,
        round: st.round,
        seq: st.seq,
        lane,
        kind: draft.kind,
        parent,
        refs,
        payload: draft.payload,
        wall,
    };
    if st.ring.is_empty() {
        st.front_id = id.0;
    }
    st.ring.push_back(ev);
    while st.ring.len() > settings.capacity {
        st.ring.pop_front();
        st.front_id += 1;
        st.evictions += 1;
    }
    st.eviction_gauge.set(st.evictions as f64);
    id
}

fn dump_locked(st: &mut RecState, settings: &TraceSettings, reason: &str, focus: Option<EventId>) {
    let view = TraceView::from_events(st.all_events());
    let events = view.events();
    let tail_start = events.len().saturating_sub(settings.dump_events);
    let mut recent = String::new();
    for ev in &events[tail_start..] {
        recent.push_str(&ev.render());
        recent.push('\n');
    }
    let lineage = focus.map_or_else(String::new, |id| view.explain(id));
    st.dumps.push(TraceDump { reason: reason.to_string(), round: st.round, recent, lineage });
    st.recorder.counter_labeled("trace.dumps", &[("reason", reason)]).inc();
}

/// Per-task event buffer for `qb-parallel` fan-out closures: workers push
/// drafts locally (no locks, no id assignment) and the control thread
/// commits every lane in input order via [`Tracer::merge_lanes`].
#[derive(Debug, Clone)]
pub struct LaneBuffer {
    lane: u32,
    pending: Vec<(EventDraft, Option<WallSpan>)>,
}

impl LaneBuffer {
    /// `lane` should be `1 + input_index` so control-thread events (lane
    /// 0) stay distinguishable.
    pub fn new(lane: u32) -> Self {
        Self { lane, pending: Vec::new() }
    }

    /// Queues a draft; returns its lane-local index for
    /// [`EventDraft::parent_local`] links from later drafts.
    pub fn push(&mut self, draft: EventDraft) -> usize {
        self.pending.push((draft, None));
        self.pending.len() - 1
    }

    /// Number of queued drafts.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the buffer holds no drafts.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// RAII guard from [`Tracer::stage`]: records a wall-timed
/// [`EventKind::StageSpan`] on drop.
#[derive(Debug)]
pub struct StageGuard {
    tracer: Tracer,
    name: &'static str,
    start: Option<(Instant, Instant)>,
}

impl StageGuard {
    /// Ends the stage now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let Some((t0, epoch)) = self.start {
            let wall = WallSpan {
                start_micros: t0.duration_since(epoch).as_micros() as u64,
                // Clamp so sub-µs stages still export as complete spans.
                dur_micros: (t0.elapsed().as_micros() as u64).max(1),
            };
            self.tracer
                .record_timed(EventDraft::new(EventKind::StageSpan).text("stage", self.name), wall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.record(EventDraft::new(EventKind::QuerySeen)), None);
        assert_eq!(t.begin_round(0), None);
        assert!(t.view().events().is_empty());
        assert!(t.dumps().is_empty());
        assert_eq!(t.evictions(), 0);
        t.stage("noop").finish();
        assert!(t.merge_lanes(vec![LaneBuffer::new(1)]).is_empty());
    }

    #[test]
    fn logical_clock_advances_by_round_and_seq() {
        let t = Tracer::enabled();
        t.begin_round(0);
        let a = t.record(EventDraft::new(EventKind::QuerySeen)).unwrap();
        t.begin_round(60);
        let b = t.record(EventDraft::new(EventKind::QuerySeen)).unwrap();
        let view = t.view();
        let ea = view.get(a).unwrap();
        let eb = view.get(b).unwrap();
        assert_eq!((ea.round, ea.seq), (1, 2)); // RoundStarted was seq 1
        assert_eq!((eb.round, eb.seq), (2, 2));
        assert!(b > a);
    }

    #[test]
    fn ring_wraps_exactly_at_capacity() {
        let settings = TraceSettings { capacity: 4, ..TraceSettings::default() };
        let t = Tracer::new(settings);
        for _ in 0..4 {
            t.record(EventDraft::new(EventKind::QuerySeen));
        }
        // Exactly at capacity: nothing evicted yet.
        assert_eq!(t.evictions(), 0);
        assert_eq!(t.view().events().len(), 4);
        // Capacity + 1: the oldest event leaves and is counted.
        t.record(EventDraft::new(EventKind::QuerySeen));
        assert_eq!(t.evictions(), 1);
        let view = t.view();
        assert_eq!(view.events().len(), 4);
        assert_eq!(view.events()[0].id, EventId(1));
    }

    #[test]
    fn evictions_surface_as_gauge_when_recorder_bound() {
        let rec = Recorder::new();
        let t = Tracer::new(TraceSettings { capacity: 2, ..TraceSettings::default() });
        t.bind_recorder(&rec);
        for _ in 0..5 {
            t.record(EventDraft::new(EventKind::QuerySeen));
        }
        assert_eq!(rec.snapshot().gauges["trace.ring_evictions"], 3.0);
    }

    #[test]
    fn linked_events_survive_eviction() {
        let t = Tracer::new(TraceSettings { capacity: 2, ..TraceSettings::default() });
        let seen = t.record(EventDraft::new(EventKind::QuerySeen).uint("len", 9)).unwrap();
        let tpl =
            t.record(EventDraft::new(EventKind::TemplateCreated).parent(seen).uint("template", 3)).unwrap();
        t.set_anchor(Scope::Template, 3, tpl);
        // Push both originals out of the ring.
        for _ in 0..8 {
            t.record(EventDraft::new(EventKind::QueryQuarantined));
        }
        let assigned = t
            .record(
                EventDraft::new(EventKind::ClusterAssigned)
                    .parent_opt(t.anchor(Scope::Template, 3))
                    .uint("cluster", 0),
            )
            .unwrap();
        let explain = t.view().explain(assigned);
        assert!(explain.contains("ClusterAssigned"), "{explain}");
        assert!(explain.contains("TemplateCreated"), "{explain}");
        assert!(explain.contains("QuerySeen"), "{explain}");
    }

    #[test]
    fn quarantine_spike_fires_one_dump_per_round() {
        let rec = Recorder::new();
        let t = Tracer::new(TraceSettings { quarantine_spike: 3, ..TraceSettings::default() });
        t.bind_recorder(&rec);
        t.begin_round(0);
        for _ in 0..5 {
            t.record(EventDraft::new(EventKind::QueryQuarantined));
        }
        let dumps = t.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "quarantine_spike");
        assert!(dumps[0].lineage.contains("QuarantineSpike"));
        assert_eq!(rec.snapshot().counters["trace.dumps{reason=\"quarantine_spike\"}"], 1);
        // A fresh round re-arms the trigger.
        t.begin_round(60);
        for _ in 0..3 {
            t.record(EventDraft::new(EventKind::QueryQuarantined));
        }
        assert_eq!(t.dumps().len(), 2);
    }

    #[test]
    fn merge_lanes_orders_by_input_lane() {
        let t = Tracer::enabled();
        let root = t.record(EventDraft::new(EventKind::ClustersUpdated)).unwrap();
        // Lanes built "out of order", as a racing pool might finish them.
        let mut lane2 = LaneBuffer::new(2);
        let fit2 = lane2.push(EventDraft::new(EventKind::ModelFit).parent(root).uint("horizon", 1));
        lane2.push(EventDraft::new(EventKind::ForecastIssued).parent_local(fit2));
        let mut lane1 = LaneBuffer::new(1);
        lane1.push(EventDraft::new(EventKind::ModelFit).parent(root).uint("horizon", 0));
        let ids = t.merge_lanes(vec![lane1, lane2]);
        assert_eq!(ids.len(), 2);
        // Input order wins: lane1's fit gets the smaller id.
        assert!(ids[0][0] < ids[1][0]);
        let view = t.view();
        let issued = view.get(ids[1][1]).unwrap();
        assert_eq!(issued.parent, Some(ids[1][0]));
        assert_eq!(issued.lane, 2);
    }

    #[test]
    fn stage_guard_records_wall_span() {
        let t = Tracer::enabled();
        {
            let _g = t.stage("pipeline.update_clusters");
        }
        let view = t.view();
        let span = view.latest(EventKind::StageSpan).unwrap();
        assert_eq!(span.payload[0], ("stage", Value::Text("pipeline.update_clusters".into())));
        assert!(span.wall.is_some());
    }

    #[test]
    fn kind_and_scope_codes_round_trip() {
        for code in 0..=23u8 {
            let kind = EventKind::from_code(code).expect("dense code space");
            assert_eq!(kind.to_code(), code);
        }
        assert_eq!(EventKind::from_code(24), None);
        for code in 0..=3u8 {
            let scope = Scope::from_code(code).expect("dense code space");
            assert_eq!(scope.to_code(), code);
        }
        assert_eq!(Scope::from_code(4), None);
    }

    #[test]
    fn state_round_trip_continues_identical_stream() {
        let settings = TraceSettings { capacity: 8, ..TraceSettings::default() };
        let live = Tracer::new(settings);
        live.begin_round(0);
        let seen = live.record(EventDraft::new(EventKind::QuerySeen).uint("len", 9)).unwrap();
        let tpl = live
            .record(EventDraft::new(EventKind::TemplateCreated).parent(seen).uint("template", 3))
            .unwrap();
        live.set_anchor(Scope::Template, 3, tpl);
        // Evict the originals so the pinned map carries real weight.
        for _ in 0..10 {
            live.record(EventDraft::new(EventKind::QueryQuarantined));
        }
        live.trigger_dump("diverged", Some(tpl));

        let exported = live.export_state().unwrap();
        let restored = Tracer::restore(settings, exported.clone());
        assert_eq!(restored.export_state().unwrap(), exported, "restore must be lossless");
        assert_eq!(
            restored.view().deterministic_stream(),
            live.view().deterministic_stream()
        );
        assert_eq!(restored.dumps(), live.dumps());
        assert_eq!(restored.evictions(), live.evictions());
        assert_eq!(restored.anchor(Scope::Template, 3), live.anchor(Scope::Template, 3));

        // Both continue identically: same ids, same rounds, same lineage.
        for t in [&live, &restored] {
            t.begin_round(60);
            let a = t
                .record(
                    EventDraft::new(EventKind::ClusterAssigned)
                        .parent_opt(t.anchor(Scope::Template, 3))
                        .uint("cluster", 1),
                )
                .unwrap();
            let explain = t.view().explain(a);
            assert!(explain.contains("TemplateCreated"), "{explain}");
        }
        assert_eq!(
            restored.view().deterministic_stream(),
            live.view().deterministic_stream()
        );
    }

    #[test]
    fn dump_snapshots_tail_and_lineage() {
        let t = Tracer::new(TraceSettings { dump_events: 2, ..TraceSettings::default() });
        let a = t.record(EventDraft::new(EventKind::ModelFit).uint("horizon", 0)).unwrap();
        let b = t.record(EventDraft::new(EventKind::DivergenceGuard).parent(a)).unwrap();
        t.trigger_dump("diverged", Some(b));
        let dumps = t.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].recent.lines().count(), 2);
        assert!(dumps[0].lineage.contains("DivergenceGuard"));
        assert!(dumps[0].lineage.contains("ModelFit"));
    }
}
