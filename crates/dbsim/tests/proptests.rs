//! Property-based tests for the storage engine: plan-independence (index
//! vs. scan answers) and LIKE semantics.

use proptest::prelude::*;
use qb_dbsim::{ColumnDef, ColumnType, CostModel, Database, QueryOutput, TableSchema, Value};

/// Reference LIKE implementation via dynamic programming.
fn like_reference(s: &str, p: &str) -> bool {
    let s: Vec<u8> = s.bytes().collect();
    let p: Vec<u8> = p.bytes().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = p[j - 1] == b'%' && dp[0][j - 1];
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                b'%' => dp[i][j - 1] || dp[i - 1][j],
                b'_' => dp[i - 1][j - 1],
                c => s[i - 1] == c && dp[i - 1][j - 1],
            };
        }
    }
    dp[s.len()][p.len()]
}

fn rows_of(r: qb_dbsim::ExecResult) -> Vec<Vec<Value>> {
    match r.output {
        QueryOutput::Rows(rows) => rows,
        QueryOutput::None => panic!("expected rows"),
    }
}

fn table_data() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..500, 0i64..20), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LIKE matches the DP reference on arbitrary strings/patterns.
    #[test]
    fn like_matches_reference(s in "[a-c]{0,8}", p in "[a-c%_]{0,6}") {
        prop_assert_eq!(
            qb_dbsim::expr::like_match(&s, &p),
            like_reference(&s, &p),
            "s={:?} p={:?}", s, p
        );
    }

    /// SELECT answers are identical with and without an index (only the
    /// cost may change) for equality, range, and BETWEEN predicates.
    #[test]
    fn index_never_changes_select_answers(
        data in table_data(),
        probe in 0i64..500,
        lo in 0i64..250,
        span in 0i64..250,
    ) {
        let build = |indexed: bool| -> Database {
            let mut db = Database::new(CostModel::default());
            db.create_table(TableSchema::new(
                "t",
                vec![ColumnDef::new("a", ColumnType::Integer), ColumnDef::new("b", ColumnType::Integer)],
            ));
            for (a, b) in &data {
                db.execute_sql(&format!("INSERT INTO t (a, b) VALUES ({a}, {b})")).expect("insert");
            }
            if indexed {
                db.create_index("t", &["a"]).expect("index");
                db.create_index("t", &["b"]).expect("index");
            }
            db
        };
        let mut plain = build(false);
        let mut indexed = build(true);
        let hi = lo + span;
        let queries = [
            format!("SELECT a, b FROM t WHERE a = {probe} ORDER BY a, b"),
            format!("SELECT a, b FROM t WHERE a BETWEEN {lo} AND {hi} ORDER BY a, b"),
            format!("SELECT a, b FROM t WHERE a >= {lo} AND b = {} ORDER BY a, b", probe % 20),
            format!("SELECT COUNT(*) FROM t WHERE a < {probe}"),
            format!("SELECT b, COUNT(*) FROM t WHERE a > {lo} GROUP BY b ORDER BY b"),
        ];
        for q in &queries {
            let r1 = rows_of(plain.execute_sql(q).expect("plain"));
            let r2 = rows_of(indexed.execute_sql(q).expect("indexed"));
            prop_assert_eq!(r1, r2, "answers diverged for `{}`", q);
        }
    }

    /// UPDATE/DELETE affect the same rows regardless of access path.
    #[test]
    fn index_never_changes_dml_effects(data in table_data(), probe in 0i64..500) {
        let run = |indexed: bool| -> (usize, usize, Vec<Vec<Value>>) {
            let mut db = Database::new(CostModel::default());
            db.create_table(TableSchema::new(
                "t",
                vec![ColumnDef::new("a", ColumnType::Integer), ColumnDef::new("b", ColumnType::Integer)],
            ));
            for (a, b) in &data {
                db.execute_sql(&format!("INSERT INTO t (a, b) VALUES ({a}, {b})")).expect("insert");
            }
            if indexed {
                db.create_index("t", &["a"]).expect("index");
            }
            let u = db
                .execute_sql(&format!("UPDATE t SET b = 999 WHERE a = {probe}"))
                .expect("update")
                .rows_affected;
            let d = db
                .execute_sql(&format!("DELETE FROM t WHERE a > {}", probe / 2))
                .expect("delete")
                .rows_affected;
            let rows = rows_of(
                db.execute_sql("SELECT a, b FROM t ORDER BY a, b").expect("select"),
            );
            (u, d, rows)
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// Aggregates agree with manual computation.
    #[test]
    fn aggregates_match_manual(data in table_data()) {
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColumnType::Integer), ColumnDef::new("b", ColumnType::Integer)],
        ));
        for (a, b) in &data {
            db.execute_sql(&format!("INSERT INTO t (a, b) VALUES ({a}, {b})")).expect("insert");
        }
        let rows = rows_of(db.execute_sql("SELECT COUNT(*), SUM(a), MIN(a), MAX(a)  FROM t").expect("agg"));
        let count = data.len() as i64;
        let sum: i64 = data.iter().map(|(a, _)| a).sum();
        let min = data.iter().map(|(a, _)| *a).min().expect("non-empty");
        let max = data.iter().map(|(a, _)| *a).max().expect("non-empty");
        prop_assert_eq!(&rows[0][0], &Value::Integer(count));
        prop_assert_eq!(&rows[0][1], &Value::Integer(sum));
        prop_assert_eq!(&rows[0][2], &Value::Integer(min));
        prop_assert_eq!(&rows[0][3], &Value::Integer(max));
    }
}
