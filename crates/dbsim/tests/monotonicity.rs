//! Cost-model monotonicity: the two what-if laws the index advisor's
//! greedy selection silently relies on.
//!
//! 1. Adding a hypothetical index that matches a query's predicate never
//!    *increases* its estimated cost (the planner may ignore an unhelpful
//!    index, but must never be charged for its existence on reads).
//! 2. Widening a range predicate never *decreases* estimated cost —
//!    touching a superset of rows can only cost the same (sequential scan:
//!    selectivity-independent) or more (index scan: more heap fetches).
//!
//! If either law breaks, AutoAdmin's greedy subset selection can oscillate
//! or pick an index set whose "benefit" is an artifact of the cost model.

use qb_dbsim::{ColumnDef, ColumnType, CostModel, Database, IndexCandidate, TableSchema, Value};
use qb_sqlparse::parse_statement;

const ROWS: i64 = 2_000;

fn populated_db() -> Database {
    let mut db = Database::new(CostModel::default());
    db.create_table(TableSchema::new(
        "orders",
        vec![
            ColumnDef::new("id", ColumnType::Integer),
            ColumnDef::new("qty", ColumnType::Integer),
            ColumnDef::new("label", ColumnType::Text),
        ],
    ));
    for i in 0..ROWS {
        db.execute_sql(&format!(
            "INSERT INTO orders (id, qty, label) VALUES ({i}, {}, 'w{}')",
            i % 97,
            i % 13,
        ))
        .expect("insert");
    }
    db
}

fn estimate(db: &Database, sql: &str, hypothetical: &[IndexCandidate]) -> f64 {
    let stmt = parse_statement(sql).expect("query parses");
    db.estimate_cost(&stmt, hypothetical).expect("estimate succeeds").total()
}

fn candidate(columns: &[&str]) -> IndexCandidate {
    IndexCandidate {
        table: "orders".into(),
        columns: columns.iter().map(|c| c.to_string()).collect(),
    }
}

#[test]
fn matching_index_never_increases_cost() {
    let db = populated_db();
    let queries = [
        "SELECT qty FROM orders WHERE id = 1234",
        "SELECT qty FROM orders WHERE id BETWEEN 100 AND 180",
        "SELECT id FROM orders WHERE qty = 13",
        "SELECT id FROM orders WHERE qty > 90",
        "SELECT label FROM orders WHERE id = 7 AND qty = 7",
        // Unselective: the index may be useless, but never harmful.
        "SELECT id FROM orders WHERE id >= 0",
    ];
    for sql in queries {
        for cand in [candidate(&["id"]), candidate(&["qty"]), candidate(&["id", "qty"])] {
            let without = estimate(&db, sql, &[]);
            let with = estimate(&db, sql, std::slice::from_ref(&cand));
            assert!(
                with <= without,
                "hypothetical {cand} increased cost of `{sql}`: {with} > {without}"
            );
        }
    }
}

#[test]
fn irrelevant_index_never_changes_read_cost() {
    let db = populated_db();
    let sql = "SELECT qty FROM orders WHERE id = 42";
    let without = estimate(&db, sql, &[]);
    let with = estimate(&db, sql, &[candidate(&["label"])]);
    assert_eq!(with, without, "an index on an unreferenced column must be cost-neutral");
}

#[test]
fn widening_range_never_decreases_cost() {
    let db = populated_db();
    // Nested ranges around the same midpoint, narrow → full table, costed
    // both without indexes and with a matching hypothetical index.
    let spans: Vec<(i64, i64)> =
        (0..8).map(|k| (1000 - (1 << k), 1000 + (1 << k))).chain([(0, ROWS)]).collect();
    for hypo in [vec![], vec![candidate(&["id"])]] {
        let mut prev: Option<(f64, (i64, i64))> = None;
        for &(lo, hi) in &spans {
            let sql = format!("SELECT qty FROM orders WHERE id BETWEEN {lo} AND {hi}");
            let cost = estimate(&db, &sql, &hypo);
            if let Some((prev_cost, prev_span)) = prev {
                assert!(
                    cost >= prev_cost,
                    "widening {prev_span:?} -> {:?} decreased cost {prev_cost} -> {cost} \
                     (hypothetical: {hypo:?})",
                    (lo, hi),
                );
            }
            prev = Some((cost, (lo, hi)));
        }
    }
}

#[test]
fn widening_one_sided_range_never_decreases_cost() {
    let db = populated_db();
    let hypo = [candidate(&["qty"])];
    let mut prev = None;
    for bound in (0..=96).rev().step_by(8) {
        let sql = format!("SELECT id FROM orders WHERE qty > {bound}");
        let cost = estimate(&db, &sql, &hypo);
        if let Some(prev_cost) = prev {
            assert!(
                cost >= prev_cost,
                "lowering `qty > {bound}` bound decreased cost {prev_cost} -> {cost}"
            );
        }
        prev = Some(cost);
    }
}
