//! Statement execution with cost accounting.
//!
//! Access-path selection is deliberately simple — exactly what the §7.6
//! experiment needs: for each table access, pick an equality or range
//! predicate whose column leads an existing (or hypothetical) index and
//! use it; otherwise scan. Joins run as nested loops with index lookups on
//! the inner side when the ON condition is an indexed equality.

use qb_sqlparse::{
    BinaryOp, Expr, OrderDirection, SelectStatement, Statement,
};

use crate::advisor::IndexCandidate;
use crate::catalog::Value;
use crate::cost::Cost;
use crate::expr::{eval, truthy, RowContext};
use crate::storage::RowId;
use crate::Database;

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    Parse(String),
    UnknownTable(String),
    UnknownColumn(String, String),
    AmbiguousColumn(String),
    TypeError(String),
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Parse(m) => write!(f, "parse error: {m}"),
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            ExecError::UnknownColumn(t, c) => write!(f, "unknown column `{c}` in `{t}`"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result rows of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// SELECT result set.
    Rows(Vec<Vec<Value>>),
    /// DML statement (no rows).
    None,
}

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    pub output: QueryOutput,
    /// Rows inserted/updated/deleted (0 for SELECT).
    pub rows_affected: usize,
    pub cost: Cost,
}

/// A sargable predicate found in a WHERE conjunct.
#[derive(Debug, Clone)]
enum Sarg {
    Eq { column: String, value: Value },
    Range { column: String, lo: Option<Value>, hi: Option<Value> },
}

impl Sarg {
    fn column(&self) -> &str {
        match self {
            Sarg::Eq { column, .. } | Sarg::Range { column, .. } => column,
        }
    }
}

/// Splits a WHERE tree into top-level AND conjuncts.
fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Extracts sargable predicates for the given binding from conjuncts.
/// Only literal comparisons qualify (the templated trace queries always
/// compare columns against constants).
fn extract_sargs(expr: Option<&Expr>, binding: &str) -> Vec<Sarg> {
    let Some(expr) = expr else { return Vec::new() };
    let mut out = Vec::new();
    for c in conjuncts(expr) {
        match c {
            Expr::Binary { left, op, right } if op.is_comparison() => {
                let (col, lit, flipped) = match (&**left, &**right) {
                    (Expr::Column { table, column }, Expr::Literal(l))
                        if table.as_deref().is_none_or(|t| t == binding) =>
                    {
                        (column.clone(), Value::from(l.clone()), false)
                    }
                    (Expr::Literal(l), Expr::Column { table, column })
                        if table.as_deref().is_none_or(|t| t == binding) =>
                    {
                        (column.clone(), Value::from(l.clone()), true)
                    }
                    _ => continue,
                };
                let op = if flipped {
                    match op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        other => *other,
                    }
                } else {
                    *op
                };
                match op {
                    BinaryOp::Eq => out.push(Sarg::Eq { column: col, value: lit }),
                    BinaryOp::Lt | BinaryOp::LtEq => {
                        out.push(Sarg::Range { column: col, lo: None, hi: Some(lit) })
                    }
                    BinaryOp::Gt | BinaryOp::GtEq => {
                        out.push(Sarg::Range { column: col, lo: Some(lit), hi: None })
                    }
                    _ => {}
                }
            }
            Expr::Between { expr, low, high, negated: false } => {
                if let (Expr::Column { table, column }, Expr::Literal(lo), Expr::Literal(hi)) =
                    (&**expr, &**low, &**high)
                {
                    if table.as_deref().is_none_or(|t| t == binding) {
                        out.push(Sarg::Range {
                            column: column.clone(),
                            lo: Some(Value::from(lo.clone())),
                            hi: Some(Value::from(hi.clone())),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Chooses rows for a single-table access: index path when a sarg's column
/// leads an index, else full scan. Returns `(row ids, access cost)`.
fn access_table(
    db: &Database,
    table: &str,
    sargs: &[Sarg],
) -> Result<(Vec<RowId>, Cost), ExecError> {
    let t = db.table(table).ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
    let model = db.cost_model();

    // Prefer an equality sarg with an index, then a range sarg.
    for want_eq in [true, false] {
        for sarg in sargs {
            let is_eq = matches!(sarg, Sarg::Eq { .. });
            if is_eq != want_eq {
                continue;
            }
            let Some(col_idx) = t.schema().column_index(sarg.column()) else { continue };
            let Some(index) = t.index_on(col_idx) else { continue };
            let ids = match sarg {
                Sarg::Eq { value, .. } => index.lookup_eq_prefix(value),
                Sarg::Range { lo, hi, .. } => index.lookup_range(lo.as_ref(), hi.as_ref()),
            };
            let cost = model.index_scan(t.len(), ids.len());
            return Ok((ids, cost));
        }
    }
    let ids: Vec<RowId> = t.scan().map(|(id, _)| id).collect();
    let cost = model.seq_scan(t.pages(), t.len());
    Ok((ids, cost))
}

/// Executes any statement.
pub fn execute(db: &mut Database, stmt: &Statement) -> Result<ExecResult, ExecError> {
    match stmt {
        Statement::Select(s) => execute_select(db, s),
        Statement::Insert(i) => {
            let mut cost = Cost::ZERO;
            let n = {
                let model = *db.cost_model();
                let t = db
                    .table_mut(&i.table)
                    .ok_or_else(|| ExecError::UnknownTable(i.table.clone()))?;
                let schema_cols = t.schema().columns.len();
                let mut inserted = 0;
                for row_exprs in &i.rows {
                    let mut row = vec![Value::Null; schema_cols];
                    if i.columns.is_empty() {
                        if row_exprs.len() != schema_cols {
                            return Err(ExecError::TypeError(format!(
                                "INSERT arity {} vs schema {}",
                                row_exprs.len(),
                                schema_cols
                            )));
                        }
                        for (c, e) in row_exprs.iter().enumerate() {
                            row[c] = literal_value(e)?;
                        }
                    } else {
                        for (name, e) in i.columns.iter().zip(row_exprs) {
                            let idx = t.schema().column_index(name).ok_or_else(|| {
                                ExecError::UnknownColumn(i.table.clone(), name.clone())
                            })?;
                            row[idx] = literal_value(e)?;
                        }
                    }
                    let num_ix = t.indexes().len();
                    t.insert(row);
                    cost.add(model.insert(num_ix));
                    inserted += 1;
                }
                inserted
            };
            Ok(ExecResult { output: QueryOutput::None, rows_affected: n, cost })
        }
        Statement::Update(u) => {
            let sargs = extract_sargs(u.where_clause.as_ref(), &u.table);
            let (candidates, mut cost) = access_table(db, &u.table, &sargs)?;
            let model = *db.cost_model();
            let t = db.table_mut(&u.table).expect("access_table verified");
            let schema = t.schema().clone();
            let ctx = RowContext::single(&u.table, &schema);

            // Resolve assignment targets once.
            let mut targets = Vec::with_capacity(u.assignments.len());
            for a in &u.assignments {
                let idx = schema.column_index(&a.column).ok_or_else(|| {
                    ExecError::UnknownColumn(u.table.clone(), a.column.clone())
                })?;
                targets.push(idx);
            }

            let mut updated = 0;
            for id in candidates {
                let Some(row) = t.row(id) else { continue };
                let row = row.to_vec();
                let keep = match &u.where_clause {
                    Some(w) => truthy(&eval(w, &ctx, &row)?),
                    None => true,
                };
                if !keep {
                    continue;
                }
                let mut changes = Vec::with_capacity(targets.len());
                for (a, &idx) in u.assignments.iter().zip(&targets) {
                    changes.push((idx, eval(&a.value, &ctx, &row)?));
                }
                t.update(id, &changes);
                updated += 1;
            }
            cost.add(model.index_maintenance(t.indexes().len(), updated));
            Ok(ExecResult { output: QueryOutput::None, rows_affected: updated, cost })
        }
        Statement::Delete(d) => {
            let sargs = extract_sargs(d.where_clause.as_ref(), &d.table);
            let (candidates, mut cost) = access_table(db, &d.table, &sargs)?;
            let model = *db.cost_model();
            let t = db.table_mut(&d.table).expect("access_table verified");
            let schema = t.schema().clone();
            let ctx = RowContext::single(&d.table, &schema);
            let mut deleted = 0;
            for id in candidates {
                let Some(row) = t.row(id) else { continue };
                let row = row.to_vec();
                let keep = match &d.where_clause {
                    Some(w) => truthy(&eval(w, &ctx, &row)?),
                    None => true,
                };
                if keep {
                    t.delete(id);
                    deleted += 1;
                }
            }
            cost.add(model.index_maintenance(t.indexes().len(), deleted));
            Ok(ExecResult { output: QueryOutput::None, rows_affected: deleted, cost })
        }
    }
}

fn literal_value(e: &Expr) -> Result<Value, ExecError> {
    match e {
        Expr::Literal(l) => Ok(Value::from(l.clone())),
        Expr::Unary { op: qb_sqlparse::UnaryOp::Neg, expr } => match literal_value(expr)? {
            Value::Integer(i) => Ok(Value::Integer(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(ExecError::TypeError(format!("cannot negate {other}"))),
        },
        _ => Err(ExecError::Unsupported("non-literal INSERT value".into())),
    }
}

fn execute_select(db: &mut Database, s: &SelectStatement) -> Result<ExecResult, ExecError> {
    let Some(from) = &s.from else {
        return Err(ExecError::Unsupported("SELECT without FROM".into()));
    };
    let base_binding = from.alias.clone().unwrap_or_else(|| from.name.clone());

    // Rewrite uncorrelated IN-subqueries into IN lists first.
    let where_clause = match &s.where_clause {
        Some(w) => Some(rewrite_subqueries(db, w)?),
        None => None,
    };

    // Base-table access.
    let sargs = extract_sargs(where_clause.as_ref(), &base_binding);
    let (base_ids, mut cost) = access_table(db, &from.name, &sargs)?;

    // Materialize joined rows (nested loop; indexed inner when possible).
    let base_table = db.table(&from.name).expect("verified");
    let base_schema = base_table.schema().clone();
    let mut ctx = RowContext::single(&base_binding, &base_schema);
    let mut rows: Vec<Vec<Value>> = base_ids
        .iter()
        .filter_map(|&id| base_table.row(id).map(<[Value]>::to_vec))
        .collect();

    let mut join_schemas = Vec::new();
    for j in &s.joins {
        let jt = db
            .table(&j.table.name)
            .ok_or_else(|| ExecError::UnknownTable(j.table.name.clone()))?;
        join_schemas.push((j, jt.schema().clone()));
    }
    for (j, jschema) in &join_schemas {
        let binding = j.table.alias.clone().unwrap_or_else(|| j.table.name.clone());
        let jt = db.table(&j.table.name).expect("checked above");
        let next_ctx_probe = RowContext::single("", &base_schema); // placeholder, rebuilt below
        let _ = next_ctx_probe;

        // Find an indexed equality join key: ON <outer>.x = <inner>.y.
        let inner_key = j.on.as_ref().and_then(|on| {
            for c in conjuncts(on) {
                if let Expr::Binary { left, op: BinaryOp::Eq, right } = c {
                    for (a, b) in [(left, right), (right, left)] {
                        if let (
                            Expr::Column { table: ta, column: ca },
                            Expr::Column { table: tb, column: cb },
                        ) = (&**a, &**b)
                        {
                            let inner_side =
                                tb.as_deref() == Some(binding.as_str());
                            let outer_ok = ta.as_deref() != Some(binding.as_str());
                            if inner_side && outer_ok {
                                let outer_idx = ctx.resolve(ta.as_deref(), ca).ok()?;
                                let inner_col = jschema.column_index(cb)?;
                                return Some((outer_idx, inner_col));
                            }
                        }
                    }
                }
            }
            None
        });

        let model = *db.cost_model();
        let mut joined = Vec::new();
        match inner_key {
            Some((outer_idx, inner_col)) if jt.index_on(inner_col).is_some() => {
                let index = jt.index_on(inner_col).expect("checked");
                for outer in &rows {
                    let key = &outer[outer_idx];
                    let ids = index.lookup_eq_prefix(key);
                    cost.add(model.index_scan(jt.len(), ids.len()));
                    for id in ids {
                        if let Some(inner) = jt.row(id) {
                            let mut combined = outer.clone();
                            combined.extend_from_slice(inner);
                            joined.push(combined);
                        }
                    }
                }
            }
            _ => {
                // Full inner scan per outer row batch (one scan charged per
                // outer row, matching a naive nested loop).
                let inner_rows: Vec<Vec<Value>> =
                    jt.scan().map(|(_, r)| r.to_vec()).collect();
                cost.add(model.seq_scan(jt.pages() * rows.len().max(1), jt.len() * rows.len()));
                for outer in &rows {
                    for inner in &inner_rows {
                        let mut combined = outer.clone();
                        combined.extend_from_slice(inner);
                        joined.push(combined);
                    }
                }
            }
        }
        // Extend the context, then filter by the ON condition (for the
        // indexed path the equality already holds; residual conjuncts may
        // remain).
        ctx = ctx.join(&binding, {
            // SAFETY of lifetime: join_schemas lives until end of function.
            // We push a reference to the cloned schema stored in the vec.
            let (_, ref sch) = join_schemas[join_schemas
                .iter()
                .position(|(jj, _)| std::ptr::eq(*jj, *j))
                .expect("present")];
            sch
        });
        if let Some(on) = &j.on {
            let mut kept = Vec::with_capacity(joined.len());
            for row in joined {
                if truthy(&eval(on, &ctx, &row)?) {
                    kept.push(row);
                }
            }
            rows = kept;
        } else {
            rows = joined;
        }
    }

    // Residual WHERE filter.
    if let Some(w) = &where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if truthy(&eval(w, &ctx, &row)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // Aggregation / projection.
    let has_aggregate = s.items.iter().any(|i| contains_aggregate(&i.expr))
        || s.having.as_ref().is_some_and(contains_aggregate);
    let mut result: Vec<Vec<Value>> = if has_aggregate || !s.group_by.is_empty() {
        aggregate_rows(s, &ctx, &rows)?
    } else {
        let mut out = Vec::with_capacity(rows.len());
        for row in &rows {
            let mut proj = Vec::with_capacity(s.items.len());
            for item in &s.items {
                if matches!(item.expr, Expr::Wildcard) {
                    proj.extend_from_slice(row);
                } else {
                    proj.push(eval(&item.expr, &ctx, row)?);
                }
            }
            out.push(proj);
        }
        // ORDER BY on the *source* rows (projection may drop sort keys).
        if !s.order_by.is_empty() {
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
            for (row, proj) in rows.iter().zip(out) {
                let mut keys = Vec::with_capacity(s.order_by.len());
                for ob in &s.order_by {
                    keys.push(eval(&ob.expr, &ctx, row)?);
                }
                keyed.push((keys, proj));
            }
            keyed.sort_by(|a, b| {
                for (i, ob) in s.order_by.iter().enumerate() {
                    let ord = a.0[i].index_cmp(&b.0[i]);
                    let ord = if ob.direction == OrderDirection::Desc {
                        ord.reverse()
                    } else {
                        ord
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            keyed.into_iter().map(|(_, p)| p).collect()
        } else {
            out
        }
    };

    // DISTINCT.
    if s.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        result.retain(|row| {
            if seen.contains(row) {
                false
            } else {
                seen.push(row.clone());
                true
            }
        });
    }

    // OFFSET / LIMIT.
    if let Some(off) = &s.offset {
        if let Value::Integer(n) = literal_value(off)? {
            let n = n.max(0) as usize;
            result = result.into_iter().skip(n).collect();
        }
    }
    if let Some(lim) = &s.limit {
        if let Value::Integer(n) = literal_value(lim)? {
            result.truncate(n.max(0) as usize);
        }
    }

    Ok(ExecResult { output: QueryOutput::Rows(result), rows_affected: 0, cost })
}

fn contains_aggregate(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |n| {
        if let Expr::Function { name, .. } = n {
            if matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max") {
                found = true;
            }
        }
    });
    found
}

/// GROUP BY + aggregate evaluation (also handles global aggregates).
fn aggregate_rows(
    s: &SelectStatement,
    ctx: &RowContext<'_>,
    rows: &[Vec<Value>],
) -> Result<Vec<Vec<Value>>, ExecError> {
    use std::collections::BTreeMap;

    // Group rows by the GROUP BY key (empty key = one global group).
    let mut groups: BTreeMap<Vec<String>, Vec<&Vec<Value>>> = BTreeMap::new();
    for row in rows {
        let mut key = Vec::with_capacity(s.group_by.len());
        for g in &s.group_by {
            // Debug formatting carries the type tag, so Integer(1) and
            // Text("1") (identical Display strings) stay distinct groups.
            key.push(format!("{:?}", eval(g, ctx, row)?));
        }
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && s.group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(groups.len());
    for rows in groups.values() {
        // HAVING filter.
        if let Some(h) = &s.having {
            if !truthy(&eval_agg(h, ctx, rows)?) {
                continue;
            }
        }
        let mut proj = Vec::with_capacity(s.items.len());
        for item in &s.items {
            proj.push(eval_agg(&item.expr, ctx, rows)?);
        }
        // ORDER BY keys evaluate in aggregate context too (e.g.
        // `ORDER BY COUNT(*) DESC` or by a grouping column).
        let mut keys = Vec::with_capacity(s.order_by.len());
        for ob in &s.order_by {
            keys.push(eval_agg(&ob.expr, ctx, rows)?);
        }
        keyed.push((keys, proj));
    }
    if !s.order_by.is_empty() {
        keyed.sort_by(|a, b| {
            for (i, ob) in s.order_by.iter().enumerate() {
                let ord = a.0[i].index_cmp(&b.0[i]);
                let ord =
                    if ob.direction == OrderDirection::Desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    Ok(keyed.into_iter().map(|(_, p)| p).collect())
}

/// Evaluates an expression in aggregate context: aggregate functions reduce
/// over the group; other expressions evaluate on the group's first row.
fn eval_agg(
    e: &Expr,
    ctx: &RowContext<'_>,
    rows: &[&Vec<Value>],
) -> Result<Value, ExecError> {
    match e {
        Expr::Function { name, args, distinct }
            if matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max") =>
        {
            let values: Vec<Value> = if matches!(args.first(), Some(Expr::Wildcard) | None) {
                rows.iter().map(|_| Value::Integer(1)).collect()
            } else {
                let mut v = Vec::with_capacity(rows.len());
                for row in rows {
                    v.push(eval(&args[0], ctx, row)?);
                }
                v
            };
            let mut values: Vec<Value> =
                values.into_iter().filter(|v| !v.is_null()).collect();
            if *distinct {
                let mut seen: Vec<Value> = Vec::new();
                values.retain(|v| {
                    if seen.iter().any(|s| s == v) {
                        false
                    } else {
                        seen.push(v.clone());
                        true
                    }
                });
            }
            match name.as_str() {
                "count" => Ok(Value::Integer(values.len() as i64)),
                "sum" => {
                    // SQL: SUM over an empty (or all-NULL) group is NULL.
                    if values.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut acc = 0.0;
                    let mut all_int = true;
                    for v in &values {
                        all_int &= matches!(v, Value::Integer(_));
                        acc += v
                            .as_f64()
                            .ok_or_else(|| ExecError::TypeError(format!("SUM({v})")))?;
                    }
                    Ok(if all_int { Value::Integer(acc as i64) } else { Value::Float(acc) })
                }
                "avg" => {
                    if values.is_empty() {
                        return Ok(Value::Null);
                    }
                    let mut acc = 0.0;
                    for v in &values {
                        acc += v
                            .as_f64()
                            .ok_or_else(|| ExecError::TypeError(format!("AVG({v})")))?;
                    }
                    Ok(Value::Float(acc / values.len() as f64))
                }
                "min" | "max" => {
                    let mut best: Option<Value> = None;
                    for v in values {
                        best = Some(match best {
                            None => v,
                            Some(b) => {
                                let take_new = match v.index_cmp(&b) {
                                    std::cmp::Ordering::Less => name == "min",
                                    std::cmp::Ordering::Greater => name == "max",
                                    std::cmp::Ordering::Equal => false,
                                };
                                if take_new {
                                    v
                                } else {
                                    b
                                }
                            }
                        });
                    }
                    Ok(best.unwrap_or(Value::Null))
                }
                _ => unreachable!(),
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval_agg(left, ctx, rows)?;
            let r = eval_agg(right, ctx, rows)?;
            // Reuse row-level binary semantics via a tiny shim.
            let shim_ctx = ctx;
            let _ = shim_ctx;
            crate::expr::eval(
                &Expr::Binary {
                    left: Box::new(Expr::Literal(value_to_literal(&l))),
                    op: *op,
                    right: Box::new(Expr::Literal(value_to_literal(&r))),
                },
                ctx,
                rows.first().map(|r| r.as_slice()).unwrap_or(&[]),
            )
        }
        other => match rows.first() {
            Some(row) => eval(other, ctx, row),
            None => Ok(Value::Null),
        },
    }
}

fn value_to_literal(v: &Value) -> qb_sqlparse::Literal {
    match v {
        Value::Integer(i) => qb_sqlparse::Literal::Integer(*i),
        Value::Float(f) => qb_sqlparse::Literal::Float(*f),
        Value::Text(s) => qb_sqlparse::Literal::String(s.clone()),
        Value::Boolean(b) => qb_sqlparse::Literal::Boolean(*b),
        Value::Null => qb_sqlparse::Literal::Null,
    }
}

/// Replaces uncorrelated `IN (SELECT ...)` predicates with literal IN
/// lists by executing the subquery.
fn rewrite_subqueries(db: &mut Database, e: &Expr) -> Result<Expr, ExecError> {
    Ok(match e {
        Expr::InSubquery { expr, subquery, negated } => {
            let sub = Statement::Select((**subquery).clone());
            let result = execute(db, &sub)?;
            let QueryOutput::Rows(rows) = result.output else {
                return Err(ExecError::Unsupported("subquery returned no rows".into()));
            };
            let list: Vec<Expr> = rows
                .into_iter()
                .filter_map(|mut r| {
                    if r.is_empty() {
                        None
                    } else {
                        Some(Expr::Literal(value_to_literal(&r.remove(0))))
                    }
                })
                .collect();
            Expr::InList { expr: expr.clone(), list, negated: *negated }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_subqueries(db, left)?),
            op: *op,
            right: Box::new(rewrite_subqueries(db, right)?),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_subqueries(db, expr)?) }
        }
        other => other.clone(),
    })
}

/// Cost-only estimation with optional hypothetical indexes (AutoAdmin
/// what-if). Selectivity is measured on a bounded row sample, so estimates
/// stay cheap on large tables.
pub fn estimate(
    db: &Database,
    stmt: &Statement,
    hypothetical: &[IndexCandidate],
) -> Result<Cost, ExecError> {
    let model = db.cost_model();
    let (table_name, where_clause): (&str, Option<&Expr>) = match stmt {
        Statement::Select(s) => {
            let Some(from) = &s.from else {
                return Err(ExecError::Unsupported("SELECT without FROM".into()));
            };
            (&from.name, s.where_clause.as_ref())
        }
        Statement::Insert(i) => {
            let t = db
                .table(&i.table)
                .ok_or_else(|| ExecError::UnknownTable(i.table.clone()))?;
            let extra = hypothetical.iter().filter(|h| h.table == i.table).count();
            let mut c = Cost::ZERO;
            for _ in &i.rows {
                c.add(model.insert(t.indexes().len() + extra));
            }
            return Ok(c);
        }
        Statement::Update(u) => (&u.table, u.where_clause.as_ref()),
        Statement::Delete(d) => (&d.table, d.where_clause.as_ref()),
    };

    let t = db
        .table(table_name)
        .ok_or_else(|| ExecError::UnknownTable(table_name.to_string()))?;
    let binding = match stmt {
        Statement::Select(s) => s
            .from
            .as_ref()
            .and_then(|f| f.alias.clone())
            .unwrap_or_else(|| table_name.to_string()),
        _ => table_name.to_string(),
    };
    let sargs = extract_sargs(where_clause, &binding);

    // Does any sarg column lead a real or hypothetical index?
    let indexed_sarg = sargs.iter().find(|sarg| {
        let Some(col_idx) = t.schema().column_index(sarg.column()) else { return false };
        let real = t.index_on(col_idx).is_some();
        let hypo = hypothetical
            .iter()
            .any(|h| h.table == *table_name && h.columns.first().map(String::as_str) == Some(sarg.column()));
        real || hypo
    });

    let rows = t.len();
    // Index maintenance reflects every index the table would carry: the
    // real ones plus the hypothetical candidates under evaluation.
    let hypo_on_table = hypothetical.iter().filter(|h| h.table == *table_name).count();
    let total_indexes = t.indexes().len() + hypo_on_table;
    let mut c = if let Some(sarg) = indexed_sarg {
        // Estimate matched rows from a sample, then cost BOTH access paths
        // and keep the cheaper, as a System-R planner would. Charging the
        // index unconditionally would let an unselective index *raise* the
        // estimate (many heap fetches at random_page_cost can exceed a
        // short sequential scan), breaking the monotonicity the advisor's
        // greedy selection depends on: a usable index never hurts a read.
        let selectivity = estimate_selectivity(t, sarg)?;
        let matched = (rows as f64 * selectivity).ceil() as usize;
        let index_path = model.index_scan(rows, matched);
        let seq_path = model.seq_scan(t.pages(), rows);
        let mut c =
            if index_path.total() <= seq_path.total() { index_path } else { seq_path };
        if matches!(stmt, Statement::Update(_) | Statement::Delete(_)) {
            c.add(model.index_maintenance(total_indexes, matched));
        }
        c
    } else {
        let mut c = model.seq_scan(t.pages(), rows);
        if matches!(stmt, Statement::Update(_) | Statement::Delete(_)) {
            c.add(model.index_maintenance(total_indexes, rows / 2));
        }
        c
    };
    // Joins multiply work; charge inner scans on BOTH paths so the indexed
    // estimate does not overstate its advantage on join queries.
    if let Statement::Select(s) = stmt {
        for j in &s.joins {
            if let Some(jt) = db.table(&j.table.name) {
                c.add(model.seq_scan(jt.pages(), jt.len()));
            }
        }
    }
    Ok(c)
}

/// Fraction of rows matching a sarg, measured over ≤1024 sampled rows.
fn estimate_selectivity(t: &crate::storage::Table, sarg: &Sarg) -> Result<f64, ExecError> {
    let col = t
        .schema()
        .column_index(sarg.column())
        .ok_or_else(|| ExecError::UnknownColumn(t.schema().name.clone(), sarg.column().into()))?;
    let n = t.len();
    if n == 0 {
        return Ok(0.0);
    }
    let stride = (n / 1024).max(1);
    let mut sampled = 0usize;
    let mut matched = 0usize;
    for (i, (_, row)) in t.scan().enumerate() {
        if i % stride != 0 {
            continue;
        }
        sampled += 1;
        let v = &row[col];
        let hit = match sarg {
            Sarg::Eq { value, .. } => v.compare(value) == Some(std::cmp::Ordering::Equal),
            Sarg::Range { lo, hi, .. } => {
                let ge = lo.as_ref().is_none_or(|l| {
                    matches!(
                        v.compare(l),
                        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                    )
                });
                let le = hi.as_ref().is_none_or(|h| {
                    matches!(
                        v.compare(h),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    )
                });
                ge && le
            }
        };
        if hit {
            matched += 1;
        }
    }
    Ok(matched as f64 / sampled.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType, TableSchema};
    use crate::cost::CostModel;

    fn setup() -> Database {
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "users",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("dept", ColumnType::Integer),
            ],
        ));
        db.create_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("order_id", ColumnType::Integer),
                ColumnDef::new("user_id", ColumnType::Integer),
                ColumnDef::new("total", ColumnType::Float),
            ],
        ));
        for i in 0..100 {
            db.execute_sql(&format!(
                "INSERT INTO users (id, name, dept) VALUES ({i}, 'user{i}', {})",
                i % 5
            ))
            .unwrap();
        }
        for i in 0..300 {
            db.execute_sql(&format!(
                "INSERT INTO orders (order_id, user_id, total) VALUES ({i}, {}, {})",
                i % 100,
                (i % 17) as f64 * 10.0
            ))
            .unwrap();
        }
        db
    }

    fn rows(r: ExecResult) -> Vec<Vec<Value>> {
        match r.output {
            QueryOutput::Rows(rows) => rows,
            QueryOutput::None => panic!("expected rows"),
        }
    }

    #[test]
    fn filtered_select() {
        let mut db = setup();
        let r = rows(db.execute_sql("SELECT name FROM users WHERE dept = 2 AND id < 10").unwrap());
        assert_eq!(r.len(), 2); // ids 2 and 7
    }

    #[test]
    fn join_with_and_without_index() {
        let mut db = setup();
        let q = "SELECT u.name, o.total FROM users AS u \
                 JOIN orders AS o ON u.id = o.user_id WHERE u.id = 42";
        let slow = db.execute_sql(q).unwrap();
        db.create_index("orders", &["user_id"]).unwrap();
        let fast = db.execute_sql(q).unwrap();
        assert_eq!(slow.output, fast.output);
        assert_eq!(rows(slow).len(), 3);
        assert!(fast.cost.total() < db.execute_sql(q).unwrap().cost.total() + 1e9);
    }

    #[test]
    fn aggregates() {
        let mut db = setup();
        let r = rows(db.execute_sql("SELECT COUNT(*), MIN(id), MAX(id) FROM users").unwrap());
        assert_eq!(r[0], vec![Value::Integer(100), Value::Integer(0), Value::Integer(99)]);
        let r = rows(db.execute_sql("SELECT AVG(total) FROM orders WHERE user_id = 1").unwrap());
        assert!(matches!(r[0][0], Value::Float(_)));
    }

    #[test]
    fn group_by_having() {
        let mut db = setup();
        let r = rows(
            db.execute_sql(
                "SELECT dept, COUNT(*) FROM users GROUP BY dept HAVING COUNT(*) > 19",
            )
            .unwrap(),
        );
        assert_eq!(r.len(), 5); // all depts have 20 users
        let r = rows(
            db.execute_sql(
                "SELECT dept, COUNT(*) FROM users GROUP BY dept HAVING COUNT(*) > 20",
            )
            .unwrap(),
        );
        assert!(r.is_empty());
    }

    #[test]
    fn order_by_limit_offset() {
        let mut db = setup();
        let r = rows(
            db.execute_sql("SELECT id FROM users ORDER BY id DESC LIMIT 3 OFFSET 1").unwrap(),
        );
        assert_eq!(
            r,
            vec![
                vec![Value::Integer(98)],
                vec![Value::Integer(97)],
                vec![Value::Integer(96)]
            ]
        );
    }

    #[test]
    fn distinct() {
        let mut db = setup();
        let r = rows(db.execute_sql("SELECT DISTINCT dept FROM users").unwrap());
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn in_subquery_rewrite() {
        let mut db = setup();
        let r = rows(
            db.execute_sql(
                "SELECT name FROM users WHERE id IN (SELECT user_id FROM orders WHERE total > 150.0)",
            )
            .unwrap(),
        );
        assert!(!r.is_empty());
    }

    #[test]
    fn estimate_prefers_hypothetical_index() {
        // Needs a table large enough that a scan genuinely loses.
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "users",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
            ],
        ));
        for i in 0..3000 {
            db.execute_sql(&format!("INSERT INTO users (id, name) VALUES ({i}, 'u{i}')"))
                .unwrap();
        }
        let stmt =
            qb_sqlparse::parse_statement("SELECT name FROM users WHERE id = 42").unwrap();
        let no_ix = db.estimate_cost(&stmt, &[]).unwrap();
        let with_ix = db
            .estimate_cost(
                &stmt,
                &[IndexCandidate { table: "users".into(), columns: vec!["id".into()] }],
            )
            .unwrap();
        assert!(with_ix.total() < no_ix.total());
    }

    #[test]
    fn estimate_insert_charges_index_maintenance() {
        let db = setup();
        let stmt = qb_sqlparse::parse_statement(
            "INSERT INTO users (id, name, dept) VALUES (1000, 'x', 1)",
        )
        .unwrap();
        let plain = db.estimate_cost(&stmt, &[]).unwrap();
        let with_ix = db
            .estimate_cost(
                &stmt,
                &[IndexCandidate { table: "users".into(), columns: vec!["dept".into()] }],
            )
            .unwrap();
        assert!(with_ix.total() > plain.total());
    }

    #[test]
    fn update_with_index_path() {
        let mut db = setup();
        db.create_index("users", &["id"]).unwrap();
        let r = db.execute_sql("UPDATE users SET dept = 9 WHERE id = 10").unwrap();
        assert_eq!(r.rows_affected, 1);
        let check = rows(db.execute_sql("SELECT dept FROM users WHERE id = 10").unwrap());
        assert_eq!(check[0][0], Value::Integer(9));
    }

    #[test]
    fn between_uses_range_index() {
        let mut db = setup();
        let q = "SELECT name FROM users WHERE id BETWEEN 10 AND 19";
        let slow = db.execute_sql(q).unwrap();
        db.create_index("users", &["id"]).unwrap();
        let fast = db.execute_sql(q).unwrap();
        assert_eq!(rows(slow).len(), 10);
        assert_eq!(rows(fast).len(), 10);
    }
}

#[cfg(test)]
mod aggregate_order_tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType, TableSchema};
    use crate::cost::CostModel;

    fn db() -> Database {
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "t",
            vec![ColumnDef::new("g", ColumnType::Integer), ColumnDef::new("v", ColumnType::Integer)],
        ));
        // Group sizes: g=2 → 1 row, g=10 → 3 rows, g=5 → 2 rows. Numeric
        // ordering differs from string ordering ("10" < "2" < "5").
        for (g, v) in [(10, 1), (10, 2), (10, 3), (5, 4), (5, 5), (2, 6)] {
            db.execute_sql(&format!("INSERT INTO t (g, v) VALUES ({g}, {v})")).unwrap();
        }
        db
    }

    fn rows(r: ExecResult) -> Vec<Vec<Value>> {
        match r.output {
            QueryOutput::Rows(rows) => rows,
            QueryOutput::None => panic!("expected rows"),
        }
    }

    #[test]
    fn group_by_orders_numerically() {
        let mut db = db();
        let r = rows(db.execute_sql("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g").unwrap());
        let gs: Vec<i64> = r
            .iter()
            .map(|row| match row[0] {
                Value::Integer(g) => g,
                _ => panic!(),
            })
            .collect();
        assert_eq!(gs, vec![2, 5, 10], "numeric ORDER BY on group key");
    }

    #[test]
    fn order_by_aggregate_value() {
        let mut db = db();
        let r = rows(
            db.execute_sql("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY COUNT(*) DESC")
                .unwrap(),
        );
        let counts: Vec<i64> = r
            .iter()
            .map(|row| match row[1] {
                Value::Integer(c) => c,
                _ => panic!(),
            })
            .collect();
        assert_eq!(counts, vec![3, 2, 1]);
    }

    #[test]
    fn limit_applies_after_aggregate_ordering() {
        let mut db = db();
        let r = rows(
            db.execute_sql(
                "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY SUM(v) DESC LIMIT 1",
            )
            .unwrap(),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0][1], Value::Integer(9)); // g=5 sums to 9, the largest
    }
}
