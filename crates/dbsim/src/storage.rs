//! Heap tables and ordered secondary indexes.

use std::collections::BTreeMap;

use crate::catalog::{TableSchema, Value};
use crate::exec::ExecError;

/// Row identifier: position in the heap. Deleted rows become tombstones so
/// RowIds stay stable (indexes reference them).
pub type RowId = usize;

/// An ordered secondary index over one or more columns.
#[derive(Debug, Clone)]
pub struct Index {
    /// Column positions (in schema order of the key, not the table).
    pub columns: Vec<usize>,
    /// Human-readable column list, for advisor output.
    pub column_names: Vec<String>,
    /// Sorted key → row ids.
    map: BTreeMap<IndexKey, Vec<RowId>>,
}

/// A comparable index key (wraps values with the total order).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub Vec<Value>);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            let ord = a.index_cmp(b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl Index {
    fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.columns.iter().map(|&c| row[c].clone()).collect())
    }

    /// Row ids whose first key column equals `v` (for multi-column indexes,
    /// a prefix lookup).
    pub fn lookup_eq_prefix(&self, v: &Value) -> Vec<RowId> {
        // Range over keys whose first component equals v.
        let lo = IndexKey(vec![v.clone()]);
        self.map
            .range(lo..)
            .take_while(|(k, _)| k.0[0].index_cmp(v) == std::cmp::Ordering::Equal)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Row ids whose first key column lies in `[lo, hi]` (either bound
    /// optional).
    pub fn lookup_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        // Seek to the lower bound instead of scanning the whole map (a
        // single-element key is ordered before any multi-column key with
        // the same first component, so it is a valid range start).
        let iter: Box<dyn Iterator<Item = (&IndexKey, &Vec<RowId>)>> = match lo {
            Some(l) => Box::new(self.map.range(IndexKey(vec![l.clone()])..)),
            None => Box::new(self.map.iter()),
        };
        let mut out = Vec::new();
        for (k, ids) in iter {
            let v = &k.0[0];
            if let Some(h) = hi {
                if v.index_cmp(h) == std::cmp::Ordering::Greater {
                    break;
                }
            }
            if v.is_null() {
                continue;
            }
            out.extend(ids.iter().copied());
        }
        out
    }

    /// Number of distinct keys (index cardinality, used by the cost model).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A heap table plus its secondary indexes.
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Vec<Value>>>,
    live_rows: usize,
    indexes: Vec<Index>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Self { schema, rows: Vec::new(), live_rows: 0, indexes: Vec::new() }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Heap pages occupied (cost-model input): rows × row_bytes / 8 KiB.
    pub fn pages(&self) -> usize {
        (self.live_rows * self.schema.row_bytes).div_ceil(8192).max(1)
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// The index whose first column is `col`, if any.
    pub fn index_on(&self, col: usize) -> Option<&Index> {
        self.indexes.iter().find(|ix| ix.columns.first() == Some(&col))
    }

    /// Inserts a full-width row, updating indexes. Returns its RowId.
    ///
    /// # Panics
    /// Panics if the row arity differs from the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> RowId {
        assert_eq!(row.len(), self.schema.columns.len(), "row arity mismatch");
        let id = self.rows.len();
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            ix.map.entry(key).or_default().push(id);
        }
        self.rows.push(Some(row));
        self.live_rows += 1;
        id
    }

    /// Visible row access.
    pub fn row(&self, id: RowId) -> Option<&[Value]> {
        self.rows.get(id).and_then(|r| r.as_deref())
    }

    /// Iterates live `(RowId, row)` pairs (a full scan).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|row| (i, row)))
    }

    /// Deletes a row by id (tombstone + index maintenance).
    pub fn delete(&mut self, id: RowId) -> bool {
        let Some(slot) = self.rows.get_mut(id) else { return false };
        let Some(row) = slot.take() else { return false };
        self.live_rows -= 1;
        for ix in &mut self.indexes {
            let key = ix.key_of(&row);
            if let Some(ids) = ix.map.get_mut(&key) {
                ids.retain(|&r| r != id);
                if ids.is_empty() {
                    ix.map.remove(&key);
                }
            }
        }
        true
    }

    /// Replaces column values of a row, maintaining indexes.
    pub fn update(&mut self, id: RowId, changes: &[(usize, Value)]) -> bool {
        let Some(Some(row)) = self.rows.get(id).map(|r| r.as_ref()) else { return false };
        let old = row.clone();
        let mut new = old.clone();
        for (c, v) in changes {
            new[*c] = v.clone();
        }
        for ix in &mut self.indexes {
            let old_key = ix.key_of(&old);
            let new_key = ix.key_of(&new);
            if old_key != new_key {
                if let Some(ids) = ix.map.get_mut(&old_key) {
                    ids.retain(|&r| r != id);
                    if ids.is_empty() {
                        ix.map.remove(&old_key);
                    }
                }
                ix.map.entry(new_key).or_default().push(id);
            }
        }
        self.rows[id] = Some(new);
        true
    }

    /// Builds a secondary index over the named columns. Returns `Ok(false)`
    /// if an identical index already exists.
    pub fn create_index(&mut self, columns: &[&str]) -> Result<bool, ExecError> {
        let mut positions = Vec::with_capacity(columns.len());
        for c in columns {
            let c = c.to_ascii_lowercase();
            let pos = self
                .schema
                .column_index(&c)
                .ok_or_else(|| ExecError::UnknownColumn(self.schema.name.clone(), c.clone()))?;
            positions.push(pos);
        }
        if self.indexes.iter().any(|ix| ix.columns == positions) {
            return Ok(false);
        }
        let mut ix = Index {
            columns: positions,
            column_names: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
            map: BTreeMap::new(),
        };
        for (id, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                let key = ix.key_of(row);
                ix.map.entry(key).or_default().push(id);
            }
        }
        self.indexes.push(ix);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType};

    fn table() -> Table {
        Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("grp", ColumnType::Integer),
            ],
        ))
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = table();
        let a = t.insert(vec![Value::Integer(1), Value::Integer(10)]);
        let _b = t.insert(vec![Value::Integer(2), Value::Integer(10)]);
        assert_eq!(t.len(), 2);
        assert!(t.delete(a));
        assert!(!t.delete(a), "double delete is a no-op");
        assert_eq!(t.len(), 1);
        let ids: Vec<RowId> = t.scan().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn index_lookup_eq() {
        let mut t = table();
        for i in 0..100 {
            t.insert(vec![Value::Integer(i), Value::Integer(i % 7)]);
        }
        t.create_index(&["grp"]).unwrap();
        let hits = t.indexes()[0].lookup_eq_prefix(&Value::Integer(3));
        assert_eq!(hits.len(), 14); // 3, 10, ..., 94
        for id in hits {
            assert_eq!(t.row(id).unwrap()[1], Value::Integer(3));
        }
    }

    #[test]
    fn index_lookup_range() {
        let mut t = table();
        for i in 0..50 {
            t.insert(vec![Value::Integer(i), Value::Integer(0)]);
        }
        t.create_index(&["id"]).unwrap();
        let hits =
            t.indexes()[0].lookup_range(Some(&Value::Integer(10)), Some(&Value::Integer(14)));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn index_maintained_on_update_delete() {
        let mut t = table();
        let id = t.insert(vec![Value::Integer(1), Value::Integer(5)]);
        t.create_index(&["grp"]).unwrap();
        t.update(id, &[(1, Value::Integer(9))]);
        assert!(t.indexes()[0].lookup_eq_prefix(&Value::Integer(5)).is_empty());
        assert_eq!(t.indexes()[0].lookup_eq_prefix(&Value::Integer(9)), vec![id]);
        t.delete(id);
        assert!(t.indexes()[0].lookup_eq_prefix(&Value::Integer(9)).is_empty());
    }

    #[test]
    fn multi_column_index_prefix_lookup() {
        let mut t = table();
        t.insert(vec![Value::Integer(1), Value::Integer(5)]);
        t.insert(vec![Value::Integer(1), Value::Integer(6)]);
        t.insert(vec![Value::Integer(2), Value::Integer(5)]);
        t.create_index(&["id", "grp"]).unwrap();
        let hits = t.indexes()[0].lookup_eq_prefix(&Value::Integer(1));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn pages_grow_with_rows() {
        let mut t = table();
        assert_eq!(t.pages(), 1);
        for i in 0..10_000 {
            t.insert(vec![Value::Integer(i), Value::Integer(0)]);
        }
        assert!(t.pages() > 10);
    }

    #[test]
    fn create_index_unknown_column_errors() {
        let mut t = table();
        assert!(matches!(t.create_index(&["nope"]), Err(ExecError::UnknownColumn(_, _))));
    }
}
