//! Schemas and runtime values.

use std::cmp::Ordering;
use std::fmt;

/// Column data types. Deliberately small: the trace schemas only need these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Integer,
    Float,
    Text,
    Boolean,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Self { name: name.to_ascii_lowercase(), ty }
    }
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Average row width in bytes, used by the page-count cost model.
    pub row_bytes: usize,
}

impl TableSchema {
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Self {
        // Rough width: 8 bytes per numeric column, 32 per text.
        let row_bytes = columns
            .iter()
            .map(|c| match c.ty {
                ColumnType::Text => 32,
                _ => 8,
            })
            .sum::<usize>()
            .max(8);
        Self { name: name.to_ascii_lowercase(), columns, row_bytes }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// A runtime value. NULL compares as unknown (excluded by predicates),
/// matching SQL three-valued logic closely enough for the trace queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Integer(i64),
    Float(f64),
    Text(String),
    Boolean(bool),
    Null,
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (integers widen to float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Boolean(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable (treated as predicate-false upstream).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Boolean(a), Value::Boolean(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order for index keys: NULLs first, then by type class, then by
    /// value. Unlike [`Value::compare`] this never fails — indexes need a
    /// total order.
    pub fn index_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Boolean(_) => 1,
                Value::Integer(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Boolean(a), Value::Boolean(b)) => a.cmp(b),
            (a, b) if class(a) == 2 && class(b) == 2 => {
                a.as_f64().expect("numeric").total_cmp(&b.as_f64().expect("numeric"))
            }
            (a, b) => class(a).cmp(&class(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Integer(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<qb_sqlparse::Literal> for Value {
    fn from(l: qb_sqlparse::Literal) -> Self {
        match l {
            qb_sqlparse::Literal::Integer(v) => Value::Integer(v),
            qb_sqlparse::Literal::Float(v) => Value::Float(v),
            qb_sqlparse::Literal::String(s) => Value::Text(s),
            qb_sqlparse::Literal::Boolean(b) => Value::Boolean(b),
            qb_sqlparse::Literal::Null => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Integer(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Integer(1).compare(&Value::Float(1.5)), Some(Ordering::Less));
    }

    #[test]
    fn null_comparison_is_unknown() {
        assert_eq!(Value::Null.compare(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).compare(&Value::Null), None);
    }

    #[test]
    fn text_comparison() {
        assert_eq!(
            Value::Text("abc".into()).compare(&Value::Text("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Text("1".into()).compare(&Value::Integer(1)), None);
    }

    #[test]
    fn index_cmp_is_total() {
        let values = vec![
            Value::Null,
            Value::Boolean(false),
            Value::Integer(-5),
            Value::Float(3.25),
            Value::Text("z".into()),
        ];
        // Antisymmetry + totality smoke check over all pairs.
        for a in &values {
            for b in &values {
                let ab = a.index_cmp(b);
                let ba = b.index_cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn schema_column_lookup() {
        let s = TableSchema::new(
            "T",
            vec![ColumnDef::new("Id", ColumnType::Integer), ColumnDef::new("n", ColumnType::Text)],
        );
        assert_eq!(s.name, "t");
        assert_eq!(s.column_index("id"), Some(0));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.row_bytes, 40);
    }
}
