//! # qb-dbsim
//!
//! An in-process relational engine with a calibrated cost model, standing in
//! for the MySQL / PostgreSQL servers of the paper's §7.6 index-selection
//! experiment (see DESIGN.md for the substitution argument).
//!
//! The engine stores heap tables with optional ordered secondary indexes,
//! evaluates the `qb-sqlparse` AST directly, and charges every statement a
//! simulated cost (buffer-pool-aware page I/O + per-tuple CPU). The
//! [`advisor`] module implements the AutoAdmin-style index-selection
//! algorithm the paper builds on \[12\]: best-index-per-query candidate
//! generation followed by greedy cost-based subset selection, costed with
//! what-if (hypothetical-index) estimates.
//!
//! What the simulator intentionally does **not** model: concurrency,
//! transactions, recovery, or query optimization beyond index choice —
//! none of which §7.6 exercises (it replays a single-stream workload and
//! measures how well the chosen index set fits future queries).

pub mod advisor;
pub mod catalog;
pub mod cost;
pub mod exec;
pub mod expr;
pub mod storage;

pub use advisor::{IndexAdvisor, IndexCandidate};
pub use catalog::{ColumnDef, ColumnType, TableSchema, Value};
pub use cost::{Cost, CostModel};
pub use exec::{ExecError, ExecResult, QueryOutput};
pub use storage::{Index, Table};

use std::collections::BTreeMap;

use qb_sqlparse::Statement;

/// The database: named tables plus engine-wide cost parameters.
pub struct Database {
    tables: BTreeMap<String, Table>,
    cost_model: CostModel,
}

impl Database {
    pub fn new(cost_model: CostModel) -> Self {
        Self { tables: BTreeMap::new(), cost_model }
    }

    /// Creates an empty table.
    ///
    /// # Panics
    /// Panics if the table already exists.
    pub fn create_table(&mut self, schema: TableSchema) {
        let name = schema.name.clone();
        let prev = self.tables.insert(name.clone(), Table::new(schema));
        assert!(prev.is_none(), "table `{name}` already exists");
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Creates a secondary index on `table(columns...)`. No-op if an index
    /// on the same column list already exists. Returns whether it was new.
    pub fn create_index(&mut self, table: &str, columns: &[&str]) -> Result<bool, ExecError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        t.create_index(columns)
    }

    /// Total number of secondary indexes across tables.
    pub fn num_indexes(&self) -> usize {
        self.tables.values().map(|t| t.indexes().len()).sum()
    }

    /// Executes one parsed statement, returning rows (for SELECT) and the
    /// simulated cost.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecResult, ExecError> {
        exec::execute(self, stmt)
    }

    /// Executes one SQL string.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecResult, ExecError> {
        let stmt =
            qb_sqlparse::parse_statement(sql).map_err(|e| ExecError::Parse(e.to_string()))?;
        self.execute(&stmt)
    }

    /// Cost estimate for a statement **without** executing its side
    /// effects, optionally pretending the given hypothetical indexes exist
    /// (the AutoAdmin "what-if" interface).
    pub fn estimate_cost(
        &self,
        stmt: &Statement,
        hypothetical: &[advisor::IndexCandidate],
    ) -> Result<Cost, ExecError> {
        exec::estimate(self, stmt, hypothetical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType, TableSchema};

    fn db_with_table() -> Database {
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("score", ColumnType::Float),
            ],
        ));
        db
    }

    #[test]
    fn insert_select_roundtrip() {
        let mut db = db_with_table();
        db.execute_sql("INSERT INTO t (id, name, score) VALUES (1, 'alice', 3.5)").unwrap();
        db.execute_sql("INSERT INTO t (id, name, score) VALUES (2, 'bob', 2.0)").unwrap();
        let r = db.execute_sql("SELECT name FROM t WHERE id = 2").unwrap();
        let QueryOutput::Rows(rows) = r.output else { panic!("expected rows") };
        assert_eq!(rows, vec![vec![Value::Text("bob".into())]]);
    }

    #[test]
    fn update_and_delete() {
        let mut db = db_with_table();
        db.execute_sql("INSERT INTO t (id, name, score) VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
            .unwrap();
        let r = db.execute_sql("UPDATE t SET score = 9.0 WHERE id = 1").unwrap();
        assert_eq!(r.rows_affected, 1);
        let r = db.execute_sql("SELECT score FROM t WHERE id = 1").unwrap();
        let QueryOutput::Rows(rows) = r.output else { panic!() };
        assert_eq!(rows[0][0], Value::Float(9.0));
        let r = db.execute_sql("DELETE FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows_affected, 1);
        let r = db.execute_sql("SELECT COUNT(*) FROM t").unwrap();
        let QueryOutput::Rows(rows) = r.output else { panic!() };
        assert_eq!(rows[0][0], Value::Integer(1));
    }

    #[test]
    fn index_reduces_select_cost() {
        let mut db = db_with_table();
        for i in 0..2000 {
            db.execute_sql(&format!("INSERT INTO t (id, name, score) VALUES ({i}, 'u{i}', 1.0)"))
                .unwrap();
        }
        let slow = db.execute_sql("SELECT name FROM t WHERE id = 700").unwrap();
        db.create_index("t", &["id"]).unwrap();
        let fast = db.execute_sql("SELECT name FROM t WHERE id = 700").unwrap();
        assert!(
            fast.cost.total() < slow.cost.total() / 5.0,
            "index should cut cost: {} vs {}",
            fast.cost.total(),
            slow.cost.total()
        );
        // Same answer either way.
        assert_eq!(slow.output, fast.output);
    }

    #[test]
    fn duplicate_index_is_noop() {
        let mut db = db_with_table();
        assert!(db.create_index("t", &["id"]).unwrap());
        assert!(!db.create_index("t", &["id"]).unwrap());
        assert_eq!(db.num_indexes(), 1);
    }

    #[test]
    fn unknown_table_error() {
        let mut db = db_with_table();
        assert!(matches!(
            db.execute_sql("SELECT x FROM missing WHERE a = 1"),
            Err(ExecError::UnknownTable(_))
        ));
    }
}
