//! The engine's analytic cost model.
//!
//! Costs are expressed in abstract "work units" convertible to simulated
//! microseconds. The model mirrors the classic System-R shape that both
//! MySQL and PostgreSQL descend from: sequential page I/O discounted by
//! buffer-pool residency, random index I/O, and per-tuple CPU. §7.6's
//! experiment configures the buffer pool at 1/5 of the database size,
//! which this model exposes directly as `buffer_fraction`.

/// Cost-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of reading one page sequentially from storage.
    pub seq_page_cost: f64,
    /// Cost of one random page read (index traversal / heap fetch).
    pub random_page_cost: f64,
    /// Per-tuple CPU cost (predicate evaluation, projection).
    pub cpu_tuple_cost: f64,
    /// Per-index-entry CPU cost.
    pub cpu_index_cost: f64,
    /// Fraction of pages resident in the buffer pool (0..1). Resident
    /// pages cost only CPU. The paper's setup: buffer pool = DB size / 5.
    pub buffer_fraction: f64,
    /// Simulated microseconds per work unit (for throughput/latency plots).
    pub us_per_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_cost: 0.005,
            buffer_fraction: 0.2,
            us_per_unit: 80.0,
        }
    }
}

/// The simulated cost of one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Page-I/O work units (after buffer-pool discount).
    pub io: f64,
    /// CPU work units.
    pub cpu: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost { io: 0.0, cpu: 0.0 };

    /// Total work units.
    pub fn total(&self) -> f64 {
        self.io + self.cpu
    }

    /// Simulated service time in microseconds.
    pub fn micros(&self, model: &CostModel) -> f64 {
        self.total() * model.us_per_unit
    }

    pub fn add(&mut self, other: Cost) {
        self.io += other.io;
        self.cpu += other.cpu;
    }
}

impl CostModel {
    /// Cost of a full heap scan of `pages` pages holding `rows` tuples.
    pub fn seq_scan(&self, pages: usize, rows: usize) -> Cost {
        Cost {
            io: pages as f64 * self.seq_page_cost * (1.0 - self.buffer_fraction),
            cpu: rows as f64 * self.cpu_tuple_cost,
        }
    }

    /// Cost of an index lookup touching `matched` entries out of a table of
    /// `rows` rows, followed by heap fetches for the matches. B-tree inner
    /// nodes are assumed buffer-resident (they are a tiny, hot fraction of
    /// the index), so the descent costs CPU only; each matched tuple pays a
    /// random heap fetch.
    pub fn index_scan(&self, rows: usize, matched: usize) -> Cost {
        let depth = ((rows.max(2)) as f64).log2().ceil().max(1.0);
        Cost {
            io: matched as f64 * self.random_page_cost * (1.0 - self.buffer_fraction),
            cpu: depth * self.cpu_index_cost
                + matched as f64 * (self.cpu_index_cost + self.cpu_tuple_cost),
        }
    }

    /// Cost of inserting one row into a table with `num_indexes` indexes.
    pub fn insert(&self, num_indexes: usize) -> Cost {
        Cost {
            io: self.random_page_cost * (1.0 - self.buffer_fraction),
            cpu: self.cpu_tuple_cost * (1.0 + num_indexes as f64),
        }
    }

    /// Extra per-row maintenance charged to UPDATE/DELETE for each index.
    pub fn index_maintenance(&self, num_indexes: usize, rows_touched: usize) -> Cost {
        Cost {
            io: 0.0,
            cpu: self.cpu_index_cost * num_indexes as f64 * rows_touched as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_scales_with_pages() {
        let m = CostModel::default();
        assert!(m.seq_scan(100, 1000).total() > m.seq_scan(10, 100).total());
    }

    #[test]
    fn index_beats_scan_for_selective_lookup() {
        let m = CostModel::default();
        // 100k-row table, ~1000 pages, matching 5 rows.
        let scan = m.seq_scan(1000, 100_000);
        let index = m.index_scan(100_000, 5);
        assert!(index.total() < scan.total() / 10.0);
    }

    #[test]
    fn scan_beats_index_for_unselective_lookup() {
        let m = CostModel::default();
        // Matching half the table: random I/O should lose.
        let scan = m.seq_scan(1000, 100_000);
        let index = m.index_scan(100_000, 50_000);
        assert!(index.total() > scan.total());
    }

    #[test]
    fn buffer_pool_discounts_io() {
        let hot = CostModel { buffer_fraction: 0.9, ..CostModel::default() };
        let cold = CostModel { buffer_fraction: 0.0, ..CostModel::default() };
        assert!(hot.seq_scan(100, 1000).io < cold.seq_scan(100, 1000).io / 5.0);
    }

    #[test]
    fn insert_cost_grows_with_indexes() {
        let m = CostModel::default();
        assert!(m.insert(5).total() > m.insert(0).total());
    }

    #[test]
    fn micros_conversion() {
        let m = CostModel::default();
        let c = Cost { io: 1.0, cpu: 1.0 };
        assert_eq!(c.micros(&m), 160.0);
    }
}
