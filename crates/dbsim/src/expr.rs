//! Expression evaluation over stored rows.

use qb_sqlparse::{BinaryOp, Expr, UnaryOp};

use crate::catalog::{TableSchema, Value};
use crate::exec::ExecError;

/// A row-evaluation context: one or two bound tables (for joins the row is
/// the concatenation and columns resolve through both schemas).
pub struct RowContext<'a> {
    /// `(binding name, schema, column offset)` per bound table. The binding
    /// name is the alias if present, else the table name.
    bindings: Vec<(String, &'a TableSchema, usize)>,
    width: usize,
}

impl<'a> RowContext<'a> {
    pub fn single(binding: &str, schema: &'a TableSchema) -> Self {
        Self {
            bindings: vec![(binding.to_string(), schema, 0)],
            width: schema.columns.len(),
        }
    }

    /// Adds a second (joined) table; its columns follow the first table's.
    pub fn join(mut self, binding: &str, schema: &'a TableSchema) -> Self {
        self.bindings.push((binding.to_string(), schema, self.width));
        self.width += schema.columns.len();
        self
    }

    /// Resolves a possibly-qualified column to its offset in the combined
    /// row.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> Result<usize, ExecError> {
        match table {
            Some(t) => {
                for (name, schema, off) in &self.bindings {
                    if name == t {
                        return schema
                            .column_index(column)
                            .map(|i| off + i)
                            .ok_or_else(|| {
                                ExecError::UnknownColumn(t.to_string(), column.to_string())
                            });
                    }
                }
                Err(ExecError::UnknownTable(t.to_string()))
            }
            None => {
                let mut found = None;
                for (_, schema, off) in &self.bindings {
                    if let Some(i) = schema.column_index(column) {
                        if found.is_some() {
                            return Err(ExecError::AmbiguousColumn(column.to_string()));
                        }
                        found = Some(off + i);
                    }
                }
                found.ok_or_else(|| {
                    ExecError::UnknownColumn("<any>".to_string(), column.to_string())
                })
            }
        }
    }
}

/// Evaluates a scalar expression against a row. Aggregates and subqueries
/// are rejected here — the executor handles them at the statement level.
pub fn eval(expr: &Expr, ctx: &RowContext<'_>, row: &[Value]) -> Result<Value, ExecError> {
    match expr {
        Expr::Literal(l) => Ok(Value::from(l.clone())),
        Expr::Placeholder => Err(ExecError::Unsupported(
            "placeholder in executable statement (bind parameters first)".into(),
        )),
        Expr::Column { table, column } => {
            let idx = ctx.resolve(table.as_deref(), column)?;
            Ok(row[idx].clone())
        }
        Expr::Wildcard => Err(ExecError::Unsupported("bare * outside select list".into())),
        Expr::Binary { left, op, right } => {
            let l = eval(left, ctx, row)?;
            let r = eval(right, ctx, row)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx, row)?;
            match op {
                UnaryOp::Not => Ok(match kleene(&v) {
                    Some(b) => Value::Boolean(!b),
                    None => Value::Null,
                }),
                UnaryOp::Neg => match v {
                    Value::Integer(i) => Ok(Value::Integer(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(ExecError::TypeError(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Function { name, args, .. } => eval_scalar_function(name, args, ctx, row),
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, ctx, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, ctx, row)?;
                if iv.is_null() {
                    saw_null = true;
                } else if v.compare(&iv) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            // SQL: `x IN (..., NULL)` is NULL when no element matches.
            if !found && saw_null {
                return Ok(Value::Null);
            }
            Ok(Value::Boolean(found != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(expr, ctx, row)?;
            let lo = eval(low, ctx, row)?;
            let hi = eval(high, ctx, row)?;
            let inside = matches!(
                v.compare(&lo),
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            ) && matches!(
                v.compare(&hi),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            Ok(Value::Boolean(inside != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx, row)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        Expr::Case { branches, else_expr } => {
            for (cond, val) in branches {
                if truthy(&eval(cond, ctx, row)?) {
                    return eval(val, ctx, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, ctx, row),
                None => Ok(Value::Null),
            }
        }
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_) => Err(
            ExecError::Unsupported("correlated subquery in row predicate".into()),
        ),
    }
}

fn eval_scalar_function(
    name: &str,
    args: &[Expr],
    ctx: &RowContext<'_>,
    row: &[Value],
) -> Result<Value, ExecError> {
    match name {
        "coalesce" => {
            for a in args {
                let v = eval(a, ctx, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        "abs" => {
            let v = eval(args.first().ok_or_else(|| arity("abs"))?, ctx, row)?;
            match v {
                Value::Integer(i) => Ok(Value::Integer(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Null => Ok(Value::Null),
                other => Err(ExecError::TypeError(format!("abs({other})"))),
            }
        }
        "lower" | "upper" => {
            let v = eval(args.first().ok_or_else(|| arity(name))?, ctx, row)?;
            match v {
                Value::Text(s) => Ok(Value::Text(if name == "lower" {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                Value::Null => Ok(Value::Null),
                other => Err(ExecError::TypeError(format!("{name}({other})"))),
            }
        }
        other => Err(ExecError::Unsupported(format!("scalar function `{other}`"))),
    }
}

fn arity(name: &str) -> ExecError {
    ExecError::TypeError(format!("wrong number of arguments to {name}"))
}

/// SQL truthiness at the filter boundary: TRUE is true; NULL and FALSE
/// are not.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Boolean(true))
}

/// Kleene view of a value: `Some(bool)` for booleans, `None` for NULL
/// (unknown). Non-boolean non-null values are treated as FALSE.
fn kleene(v: &Value) -> Option<bool> {
    match v {
        Value::Boolean(b) => Some(*b),
        Value::Null => None,
        _ => Some(false),
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    use std::cmp::Ordering::*;
    match op {
        // Kleene three-valued logic: NULL is "unknown", so `NOT NULL` is
        // NULL (not TRUE) and `FALSE AND NULL` is FALSE while
        // `TRUE AND NULL` is NULL. `truthy` at the filter boundary treats
        // NULL as not-true, which gives the standard WHERE semantics.
        BinaryOp::And => Ok(match (kleene(l), kleene(r)) {
            (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
            (Some(true), Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        }),
        BinaryOp::Or => Ok(match (kleene(l), kleene(r)) {
            (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
            (Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        }),
        BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt
        | BinaryOp::GtEq => {
            // A comparison with NULL is NULL; comparisons between
            // incomparable non-null types are FALSE (a type mismatch, not
            // an unknown).
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let Some(ord) = l.compare(r) else { return Ok(Value::Boolean(false)) };
            let b = match op {
                BinaryOp::Eq => ord == Equal,
                BinaryOp::NotEq => ord != Equal,
                BinaryOp::Lt => ord == Less,
                BinaryOp::LtEq => ord != Greater,
                BinaryOp::Gt => ord == Greater,
                BinaryOp::GtEq => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral when both sides are ints.
            if let (Value::Integer(a), Value::Integer(b)) = (l, r) {
                let v = match op {
                    BinaryOp::Add => a.checked_add(*b),
                    BinaryOp::Sub => a.checked_sub(*b),
                    BinaryOp::Mul => a.checked_mul(*b),
                    BinaryOp::Div => {
                        if *b == 0 {
                            return Err(ExecError::TypeError("division by zero".into()));
                        }
                        a.checked_div(*b)
                    }
                    BinaryOp::Mod => {
                        if *b == 0 {
                            return Err(ExecError::TypeError("modulo by zero".into()));
                        }
                        a.checked_rem(*b)
                    }
                    _ => unreachable!(),
                };
                return v
                    .map(Value::Integer)
                    .ok_or_else(|| ExecError::TypeError("integer overflow".into()));
            }
            let (a, b) = (
                l.as_f64().ok_or_else(|| ExecError::TypeError(format!("non-numeric {l}")))?,
                r.as_f64().ok_or_else(|| ExecError::TypeError(format!("non-numeric {r}")))?,
            );
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(ExecError::TypeError("division by zero".into()));
                    }
                    a / b
                }
                BinaryOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
        BinaryOp::Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Text(format!("{a}{b}"))),
        },
        BinaryOp::Like => match (l, r) {
            (Value::Text(s), Value::Text(p)) => Ok(Value::Boolean(like_match(s, p))),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Boolean(false)),
            _ => Err(ExecError::TypeError("LIKE requires text operands".into())),
        },
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char); case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // % matches zero or more characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType};
    use qb_sqlparse::parse_statement;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Integer),
                ColumnDef::new("b", ColumnType::Text),
                ColumnDef::new("c", ColumnType::Float),
            ],
        )
    }

    /// Evaluates the WHERE clause of `SELECT * FROM t WHERE <pred>`.
    fn eval_pred(pred: &str, row: &[Value]) -> bool {
        let sql = format!("SELECT * FROM t WHERE {pred}");
        let qb_sqlparse::Statement::Select(sel) = parse_statement(&sql).unwrap() else {
            panic!()
        };
        let s = schema();
        let ctx = RowContext::single("t", &s);
        truthy(&eval(&sel.where_clause.unwrap(), &ctx, row).unwrap())
    }

    fn row(a: i64, b: &str, c: f64) -> Vec<Value> {
        vec![Value::Integer(a), Value::Text(b.into()), Value::Float(c)]
    }

    #[test]
    fn comparisons() {
        assert!(eval_pred("a = 5", &row(5, "x", 0.0)));
        assert!(!eval_pred("a = 5", &row(6, "x", 0.0)));
        assert!(eval_pred("a < 10 AND c >= 1.5", &row(5, "x", 1.5)));
        assert!(eval_pred("a <> 4 OR b = 'zzz'", &row(5, "x", 0.0)));
    }

    #[test]
    fn between_and_in() {
        assert!(eval_pred("a BETWEEN 1 AND 10", &row(5, "x", 0.0)));
        assert!(!eval_pred("a NOT BETWEEN 1 AND 10", &row(5, "x", 0.0)));
        assert!(eval_pred("a IN (1, 5, 9)", &row(5, "x", 0.0)));
        assert!(eval_pred("a NOT IN (1, 9)", &row(5, "x", 0.0)));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_l"));
        assert!(like_match("", "%"));
        assert!(!like_match("a", "_%_"));
        assert!(eval_pred("b LIKE 'al%'", &row(0, "alice", 0.0)));
    }

    #[test]
    fn null_semantics() {
        let null_row = vec![Value::Null, Value::Text("x".into()), Value::Float(0.0)];
        assert!(!eval_pred("a = 5", &null_row), "NULL = 5 is not true");
        assert!(!eval_pred("a <> 5", &null_row), "NULL <> 5 is not true");
        assert!(eval_pred("a IS NULL", &null_row));
        assert!(!eval_pred("a IS NOT NULL", &null_row));
    }

    #[test]
    fn arithmetic() {
        assert!(eval_pred("a + 1 = 6", &row(5, "x", 0.0)));
        assert!(eval_pred("a * 2 > 9", &row(5, "x", 0.0)));
        assert!(eval_pred("c / 2.0 = 0.75", &row(0, "x", 1.5)));
        assert!(eval_pred("a % 3 = 2", &row(5, "x", 0.0)));
    }

    #[test]
    fn division_by_zero_is_error() {
        let sql = "SELECT * FROM t WHERE a / 0 = 1";
        let qb_sqlparse::Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
        let s = schema();
        let ctx = RowContext::single("t", &s);
        assert!(matches!(
            eval(&sel.where_clause.unwrap(), &ctx, &row(5, "x", 0.0)),
            Err(ExecError::TypeError(_))
        ));
    }

    #[test]
    fn case_expression() {
        assert!(eval_pred("CASE WHEN a > 3 THEN TRUE ELSE FALSE END", &row(5, "x", 0.0)));
        assert!(!eval_pred("CASE WHEN a > 30 THEN TRUE ELSE FALSE END", &row(5, "x", 0.0)));
    }

    #[test]
    fn scalar_functions() {
        assert!(eval_pred("coalesce(a, 0) = 5", &row(5, "x", 0.0)));
        assert!(eval_pred("abs(a - 8) = 3", &row(5, "x", 0.0)));
        assert!(eval_pred("lower(b) = 'alice'", &row(0, "ALICE", 0.0)));
    }

    #[test]
    fn qualified_and_ambiguous_columns() {
        let s1 = schema();
        let mut s2 = schema();
        s2.name = "u".into();
        let ctx = RowContext::single("t", &s1).join("u", &s2);
        // Qualified resolution reaches the second table's columns.
        let e = qb_sqlparse::Expr::qcol("u", "a");
        let r: Vec<Value> = [row(1, "x", 0.0), row(2, "y", 0.0)].concat();
        assert_eq!(eval(&e, &ctx, &r).unwrap(), Value::Integer(2));
        // Unqualified `a` is ambiguous.
        let e = qb_sqlparse::Expr::col("a");
        assert!(matches!(eval(&e, &ctx, &r), Err(ExecError::AmbiguousColumn(_))));
    }
}
