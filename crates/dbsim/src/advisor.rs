//! AutoAdmin-style index selection (§7.6, after Chaudhuri & Narasayya \[12\]).
//!
//! "AutoAdmin first selects the best index for each query in a sample
//! workload to form a candidate set of indexes. It then uses a heuristic
//! search algorithm to find the best-bounded subset of indexes within the
//! candidates."
//!
//! The advisor consumes a *weighted workload* — `(statement, weight)` pairs
//! where the weight is the (predicted or observed) execution count. QB5000
//! feeds it the per-cluster forecasts (§7.6: "Instead of using a sample
//! workload to generate the candidate indexes, we use the predicted
//! workload of the three largest clusters").

use std::collections::BTreeMap;

use qb_sqlparse::{BinaryOp, Expr, Statement};

use crate::cost::Cost;
use crate::Database;

/// A candidate (or hypothetical) index: a table plus a column list.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexCandidate {
    pub table: String,
    pub columns: Vec<String>,
}

impl std::fmt::Display for IndexCandidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.table, self.columns.join(", "))
    }
}

/// The index advisor.
pub struct IndexAdvisor {
    /// Maximum indexes the selection may return.
    pub budget: usize,
}

impl IndexAdvisor {
    pub fn new(budget: usize) -> Self {
        Self { budget }
    }

    /// The candidate columns of one statement: every `col <op> literal`
    /// comparison and BETWEEN in its predicates, grouped per table, plus
    /// two-column combinations of equality predicates (AutoAdmin's
    /// multi-column candidate expansion, bounded at width 2).
    pub fn candidates_for(stmt: &Statement) -> Vec<IndexCandidate> {
        let (table, where_clause): (&str, Option<&Expr>) = match stmt {
            Statement::Select(s) => {
                let Some(from) = &s.from else { return Vec::new() };
                (&from.name, s.where_clause.as_ref())
            }
            Statement::Update(u) => (&u.table, u.where_clause.as_ref()),
            Statement::Delete(d) => (&d.table, d.where_clause.as_ref()),
            // INSERTs never benefit from new indexes (they only pay).
            Statement::Insert(_) => return Vec::new(),
        };
        let Some(where_clause) = where_clause else { return Vec::new() };

        let mut eq_cols = Vec::new();
        let mut range_cols = Vec::new();
        collect_pred_columns(where_clause, &mut eq_cols, &mut range_cols);

        let mut out = Vec::new();
        let mut push = |cols: Vec<String>| {
            let cand = IndexCandidate { table: table.to_string(), columns: cols };
            if !out.contains(&cand) {
                out.push(cand);
            }
        };
        for c in &eq_cols {
            push(vec![c.clone()]);
        }
        for c in &range_cols {
            push(vec![c.clone()]);
        }
        // Two-column composites: equality column leading, paired with any
        // other predicate column.
        for lead in &eq_cols {
            for second in eq_cols.iter().chain(&range_cols) {
                if lead != second {
                    push(vec![lead.clone(), second.clone()]);
                }
            }
        }
        out
    }

    /// The single best index for one weighted statement: the candidate with
    /// the greatest estimated cost reduction (`None` if nothing helps).
    pub fn best_index_for(
        &self,
        db: &Database,
        stmt: &Statement,
    ) -> Option<(IndexCandidate, f64)> {
        let base = db.estimate_cost(stmt, &[]).ok()?.total();
        let mut best: Option<(IndexCandidate, f64)> = None;
        for cand in Self::candidates_for(stmt) {
            let with = db.estimate_cost(stmt, std::slice::from_ref(&cand)).ok()?.total();
            let gain = base - with;
            if gain > 1e-12 && best.as_ref().is_none_or(|(_, g)| gain > *g) {
                best = Some((cand, gain));
            }
        }
        best
    }

    /// Full AutoAdmin pass: candidate generation from the per-query best
    /// indexes, then greedy subset selection maximizing total workload
    /// benefit under the budget. Returns the chosen indexes, best first.
    pub fn select(
        &self,
        db: &Database,
        workload: &[(Statement, f64)],
    ) -> Vec<IndexCandidate> {
        self.select_with_gains(db, workload).into_iter().map(|(c, _)| c).collect()
    }

    /// [`IndexAdvisor::select`], returning alongside each chosen index the
    /// total weighted cost reduction measured at the greedy step that
    /// picked it — the evidence behind the decision (trace lineage,
    /// reporting). Gains are non-increasing down the list.
    pub fn select_with_gains(
        &self,
        db: &Database,
        workload: &[(Statement, f64)],
    ) -> Vec<(IndexCandidate, f64)> {
        // Phase 1: candidate set = best index per query.
        let mut candidate_set: Vec<IndexCandidate> = Vec::new();
        for (stmt, _) in workload {
            if let Some((cand, _)) = self.best_index_for(db, stmt) {
                if !candidate_set.contains(&cand) {
                    candidate_set.push(cand);
                }
            }
        }

        // Phase 2: greedy selection. At each step pick the candidate whose
        // addition reduces total weighted workload cost the most.
        let mut chosen: Vec<IndexCandidate> = Vec::new();
        let mut gains: Vec<f64> = Vec::new();
        let mut current_costs: BTreeMap<usize, f64> = workload
            .iter()
            .enumerate()
            .map(|(i, (stmt, w))| {
                (i, db.estimate_cost(stmt, &chosen).map_or(0.0, |c: Cost| c.total()) * w)
            })
            .collect();

        while chosen.len() < self.budget && !candidate_set.is_empty() {
            let mut best: Option<(usize, f64, BTreeMap<usize, f64>)> = None;
            for (ci, cand) in candidate_set.iter().enumerate() {
                let mut trial = chosen.clone();
                trial.push(cand.clone());
                let mut gain = 0.0;
                let mut new_costs = BTreeMap::new();
                for (i, (stmt, w)) in workload.iter().enumerate() {
                    let c = db.estimate_cost(stmt, &trial).map_or(0.0, |c| c.total()) * w;
                    gain += current_costs[&i] - c;
                    new_costs.insert(i, c);
                }
                if gain > 1e-9 && best.as_ref().is_none_or(|(_, g, _)| gain > *g) {
                    best = Some((ci, gain, new_costs));
                }
            }
            let Some((ci, gain, new_costs)) = best else { break };
            chosen.push(candidate_set.remove(ci));
            gains.push(gain);
            current_costs = new_costs;
        }
        chosen.into_iter().zip(gains).collect()
    }
}

fn collect_pred_columns(expr: &Expr, eq: &mut Vec<String>, range: &mut Vec<String>) {
    match expr {
        Expr::Binary { left, op: BinaryOp::And, right }
        | Expr::Binary { left, op: BinaryOp::Or, right } => {
            collect_pred_columns(left, eq, range);
            collect_pred_columns(right, eq, range);
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let col = match (&**left, &**right) {
                (Expr::Column { column, .. }, Expr::Literal(_)) => Some(column.clone()),
                (Expr::Literal(_), Expr::Column { column, .. }) => Some(column.clone()),
                _ => None,
            };
            if let Some(col) = col {
                let bucket = if *op == BinaryOp::Eq { eq } else { range };
                if !bucket.contains(&col) {
                    bucket.push(col);
                }
            }
        }
        Expr::Between { expr, negated: false, .. } => {
            if let Expr::Column { column, .. } = &**expr {
                if !range.contains(column) {
                    range.push(column.clone());
                }
            }
        }
        Expr::InList { expr, negated: false, .. } => {
            if let Expr::Column { column, .. } = &**expr {
                if !eq.contains(column) {
                    eq.push(column.clone());
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, ColumnType, TableSchema};
    use crate::cost::CostModel;

    fn setup() -> Database {
        let mut db = Database::new(CostModel::default());
        db.create_table(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Integer),
                ColumnDef::new("b", ColumnType::Integer),
                ColumnDef::new("c", ColumnType::Integer),
            ],
        ));
        for i in 0..5000 {
            db.execute_sql(&format!(
                "INSERT INTO t (a, b, c) VALUES ({i}, {}, {})",
                i % 50,
                i % 3
            ))
            .unwrap();
        }
        db
    }

    fn stmt(sql: &str) -> Statement {
        qb_sqlparse::parse_statement(sql).unwrap()
    }

    #[test]
    fn candidates_cover_predicates() {
        let cands = IndexAdvisor::candidates_for(&stmt(
            "SELECT a FROM t WHERE b = 5 AND c BETWEEN 1 AND 2",
        ));
        let names: Vec<String> = cands.iter().map(ToString::to_string).collect();
        assert!(names.contains(&"t(b)".to_string()), "{names:?}");
        assert!(names.contains(&"t(c)".to_string()));
        assert!(names.contains(&"t(b, c)".to_string()));
    }

    #[test]
    fn inserts_yield_no_candidates() {
        assert!(IndexAdvisor::candidates_for(&stmt("INSERT INTO t (a) VALUES (1)")).is_empty());
    }

    #[test]
    fn best_index_targets_selective_column() {
        let db = setup();
        let advisor = IndexAdvisor::new(5);
        // `a` is unique (selectivity 1/5000); `c` has 3 values.
        let (best, gain) =
            advisor.best_index_for(&db, &stmt("SELECT b FROM t WHERE a = 42")).unwrap();
        assert_eq!(best.to_string(), "t(a)");
        assert!(gain > 0.0);
        // An unselective predicate should gain little or nothing.
        let unhelpful = advisor.best_index_for(&db, &stmt("SELECT b FROM t WHERE c = 1"));
        if let Some((_, g)) = unhelpful {
            assert!(g < gain, "low-selectivity gain {g} should trail {gain}");
        }
    }

    #[test]
    fn greedy_selection_respects_budget() {
        let db = setup();
        let advisor = IndexAdvisor::new(1);
        let workload = vec![
            (stmt("SELECT b FROM t WHERE a = 10"), 100.0),
            (stmt("SELECT a FROM t WHERE b = 3"), 1.0),
        ];
        let chosen = advisor.select(&db, &workload);
        assert_eq!(chosen.len(), 1);
        // The heavily-weighted query wins the single slot.
        assert_eq!(chosen[0].to_string(), "t(a)");
    }

    #[test]
    fn selection_orders_by_benefit() {
        let db = setup();
        let advisor = IndexAdvisor::new(2);
        let workload = vec![
            (stmt("SELECT b FROM t WHERE a = 10"), 1.0),
            (stmt("SELECT a FROM t WHERE b = 3"), 500.0),
        ];
        let chosen = advisor.select(&db, &workload);
        assert_eq!(chosen.len(), 2);
        assert_eq!(chosen[0].to_string(), "t(b)", "heavier query's index chosen first");
    }

    #[test]
    fn weights_shift_selection() {
        let db = setup();
        let advisor = IndexAdvisor::new(1);
        let run = |wa: f64, wb: f64| {
            advisor.select(
                &db,
                &[
                    (stmt("SELECT b FROM t WHERE a = 10"), wa),
                    (stmt("SELECT a FROM t WHERE b = 3"), wb),
                ],
            )[0]
            .to_string()
        };
        assert_eq!(run(1000.0, 1.0), "t(a)");
        assert_eq!(run(1.0, 1000.0), "t(b)");
    }

    #[test]
    fn gains_are_positive_and_non_increasing() {
        let db = setup();
        let advisor = IndexAdvisor::new(3);
        let workload = vec![
            (stmt("SELECT b FROM t WHERE a = 10"), 50.0),
            (stmt("SELECT a FROM t WHERE b = 3"), 1.0),
        ];
        let with_gains = advisor.select_with_gains(&db, &workload);
        assert!(!with_gains.is_empty());
        assert!(with_gains.iter().all(|(_, g)| *g > 0.0));
        for w in with_gains.windows(2) {
            assert!(w[0].1 >= w[1].1, "greedy gains must not increase: {with_gains:?}");
        }
        // The plain selection is exactly the gains list minus the gains.
        let plain = advisor.select(&db, &workload);
        assert_eq!(plain, with_gains.into_iter().map(|(c, _)| c).collect::<Vec<_>>());
    }

    #[test]
    fn existing_index_not_rechosen() {
        let mut db = setup();
        db.create_index("t", &["a"]).unwrap();
        let advisor = IndexAdvisor::new(3);
        let workload = vec![(stmt("SELECT b FROM t WHERE a = 10"), 1.0)];
        let chosen = advisor.select(&db, &workload);
        // The real index already serves the query; adding the hypothetical
        // duplicate yields no gain.
        assert!(chosen.is_empty(), "{chosen:?}");
    }
}
