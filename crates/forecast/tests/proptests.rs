//! Property-based tests: every model is total (finite, non-negative
//! output) on arbitrary non-negative series, and the composites respect
//! their defining identities.

use proptest::prelude::*;
use qb_forecast::{Forecaster, WindowSpec};

fn series_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 1-2 clusters, 60-120 steps, arbitrary non-negative rates incl. zeros
    // and large spikes.
    (1usize..3, 60usize..120).prop_flat_map(|(clusters, len)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0f64), 0.0f64..100.0, 1e4f64..1e6],
                len,
            ),
            clusters,
        )
    })
}

fn check_model(
    mut model: Box<dyn Forecaster>,
    series: &[Vec<f64>],
) -> Result<(), TestCaseError> {
    let spec = WindowSpec { window: 12, horizon: 3 };
    model.fit(series, spec).map_err(|e| {
        TestCaseError::fail(format!("{} failed to fit: {e}", model.name()))
    })?;
    let recent: Vec<Vec<f64>> =
        series.iter().map(|s| s[s.len() - 12..].to_vec()).collect();
    let pred = model.predict(&recent);
    prop_assert_eq!(pred.len(), series.len());
    for p in &pred {
        prop_assert!(p.is_finite(), "{} produced non-finite {}", model.name(), p);
        prop_assert!(*p >= 0.0, "{} produced negative rate {}", model.name(), p);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lr_total(series in series_strategy()) {
        check_model(Box::new(qb_forecast::LinearRegression::default()), &series)?;
    }

    #[test]
    fn kr_total(series in series_strategy()) {
        check_model(Box::new(qb_forecast::KernelRegression::default()), &series)?;
    }

    #[test]
    fn arma_total(series in series_strategy()) {
        check_model(Box::new(qb_forecast::Arma::default()), &series)?;
    }

    #[test]
    fn fnn_total(series in series_strategy()) {
        let cfg = qb_forecast::fnn::FnnConfig { epochs: 3, hidden: 8, ..Default::default() };
        check_model(Box::new(qb_forecast::Fnn::new(cfg)), &series)?;
    }

    #[test]
    fn rnn_total(series in series_strategy()) {
        let cfg = qb_forecast::RnnConfig {
            epochs: 2,
            hidden: 6,
            embedding: 4,
            ..Default::default()
        };
        check_model(Box::new(qb_forecast::Rnn::new(cfg)), &series)?;
    }

    #[test]
    fn psrnn_total(series in series_strategy()) {
        let cfg = qb_forecast::psrnn::PsrnnConfig { epochs: 2, state_dim: 6, ..Default::default() };
        check_model(Box::new(qb_forecast::Psrnn::new(cfg)), &series)?;
    }

    /// HYBRID's defining identity: its prediction is elementwise either
    /// the ensemble's or KR's, never anything else.
    #[test]
    fn hybrid_picks_member_predictions(series in series_strategy()) {
        let spec = WindowSpec { window: 12, horizon: 3 };
        let rnn = qb_forecast::RnnConfig {
            epochs: 2, hidden: 6, embedding: 4, ..Default::default()
        };
        let mut hybrid = qb_forecast::Hybrid::new(qb_forecast::HybridConfig {
            gamma: 1.5,
            kr_window: None,
            rnn: rnn.clone(),
        });
        hybrid.fit(&series, spec).expect("fit hybrid");
        let mut ensemble = qb_forecast::Ensemble::new(rnn);
        ensemble.fit(&series, spec).expect("fit ensemble");
        let mut kr = qb_forecast::KernelRegression::default();
        kr.fit(&series, spec).expect("fit kr");

        let recent: Vec<Vec<f64>> =
            series.iter().map(|s| s[s.len() - 12..].to_vec()).collect();
        let h = hybrid.predict(&recent);
        let e = ensemble.predict(&recent);
        let k = kr.predict(&recent);
        for i in 0..h.len() {
            let matches_member =
                (h[i] - e[i]).abs() < 1e-9 || (h[i] - k[i]).abs() < 1e-9;
            prop_assert!(matches_member, "hybrid[{}]={} not ens {} nor kr {}", i, h[i], e[i], k[i]);
        }
    }

    /// The ensemble is exactly the member average.
    #[test]
    fn ensemble_is_average(series in series_strategy()) {
        let spec = WindowSpec { window: 12, horizon: 3 };
        let rnn_cfg = qb_forecast::RnnConfig {
            epochs: 2, hidden: 6, embedding: 4, ..Default::default()
        };
        let mut e = qb_forecast::Ensemble::new(rnn_cfg);
        e.fit(&series, spec).expect("fit");
        let recent: Vec<Vec<f64>> =
            series.iter().map(|s| s[s.len() - 12..].to_vec()).collect();
        let pred = e.predict(&recent);
        let (lr, rnn) = e.members();
        let lr_p = lr.predict(&recent);
        let rnn_p = rnn.predict(&recent);
        for i in 0..pred.len() {
            prop_assert!((pred[i] - 0.5 * (lr_p[i] + rnn_p[i])).abs() < 1e-9);
        }
    }
}
