//! Shared neural-network building blocks: parameter tensors with Adam
//! state, dense layers, activations, and an LSTM cell with full
//! backpropagation-through-time. Everything is plain `f64` on CPU — the
//! paper's models are small (embedding 25, two LSTM layers of 20 cells) so
//! a GPU substrate is unnecessary for the reproduction (see DESIGN.md).

use qb_linalg::Matrix;
use rand::Rng;

/// A parameter matrix with its gradient accumulator and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Matrix,
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        Self::new(Matrix::random_uniform(rows, cols, scale, rng))
    }

    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::zeros(rows, cols))
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// One Adam update; `t` is the 1-based global step for bias correction.
    pub fn adam_step(&mut self, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        let g = self.grad.as_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        let p = self.value.as_mut_slice();
        for i in 0..p.len() {
            m[i] = B1 * m[i] + (1.0 - B1) * g[i];
            v[i] = B2 * v[i] + (1.0 - B2) * g[i] * g[i];
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            p[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
    }

    /// Global-norm gradient clipping across a set of parameters.
    pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f64) {
        let total: f64 = params
            .iter()
            .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
            .sum::<f64>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let scale = max_norm / total;
            for p in params.iter_mut() {
                p.grad.scale_mut(scale);
            }
        }
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A fully-connected layer `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    pub w: Param,
    pub b: Param,
}

impl Dense {
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Self {
        Self { w: Param::xavier(output, input, rng), b: Param::zeros(output, 1) }
    }

    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.w.value.matvec(x);
        for (yi, bi) in y.iter_mut().zip(self.b.value.as_slice()) {
            *yi += bi;
        }
        y
    }

    /// Backward pass: accumulates `dW`, `db`, returns `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let (out, inp) = self.w.value.shape();
        debug_assert_eq!(x.len(), inp);
        debug_assert_eq!(dy.len(), out);
        for o in 0..out {
            let g = dy[o];
            if g == 0.0 {
                continue;
            }
            let grow = self.w.grad.row_mut(o);
            for (gi, &xi) in grow.iter_mut().zip(x) {
                *gi += g * xi;
            }
            self.b.grad.as_mut_slice()[o] += g;
        }
        self.w.value.tr_matvec(dy)
    }

    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    pub fn adam_step(&mut self, lr: f64, t: usize) {
        self.w.adam_step(lr, t);
        self.b.adam_step(lr, t);
    }

    pub fn num_parameters(&self) -> usize {
        let (r, c) = self.w.value.shape();
        r * c + r
    }
}

/// One LSTM layer (Hochreiter & Schmidhuber \[27\]); gate order `i, f, g, o`.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    pub wx: Param,
    pub wh: Param,
    pub b: Param,
    pub hidden: usize,
    pub input: usize,
}

/// Cached activations for one time step (needed by BPTT).
#[derive(Debug, Clone)]
pub struct LstmStep {
    pub x: Vec<f64>,
    pub i: Vec<f64>,
    pub f: Vec<f64>,
    pub g: Vec<f64>,
    pub o: Vec<f64>,
    pub c: Vec<f64>,
    pub h: Vec<f64>,
    pub c_prev: Vec<f64>,
    pub h_prev: Vec<f64>,
}

impl LstmLayer {
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let mut b = Param::zeros(4 * hidden, 1);
        // Forget-gate bias starts at 1.0: the standard trick that lets
        // memory persist early in training.
        for j in hidden..2 * hidden {
            b.value.as_mut_slice()[j] = 1.0;
        }
        Self {
            wx: Param::xavier(4 * hidden, input, rng),
            wh: Param::xavier(4 * hidden, hidden, rng),
            b,
            hidden,
            input,
        }
    }

    /// One forward step; returns the cached activations.
    pub fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> LstmStep {
        let hidden = self.hidden;
        let mut z = self.wx.value.matvec(x);
        let zh = self.wh.value.matvec(h_prev);
        for ((zi, &zhi), &bi) in z.iter_mut().zip(&zh).zip(self.b.value.as_slice()) {
            *zi += zhi + bi;
        }
        let mut i = vec![0.0; hidden];
        let mut f = vec![0.0; hidden];
        let mut g = vec![0.0; hidden];
        let mut o = vec![0.0; hidden];
        for j in 0..hidden {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[hidden + j]);
            g[j] = z[2 * hidden + j].tanh();
            o[j] = sigmoid(z[3 * hidden + j]);
        }
        let mut c = vec![0.0; hidden];
        let mut h = vec![0.0; hidden];
        for j in 0..hidden {
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            h[j] = o[j] * c[j].tanh();
        }
        LstmStep {
            x: x.to_vec(),
            i,
            f,
            g,
            o,
            c,
            h,
            c_prev: c_prev.to_vec(),
            h_prev: h_prev.to_vec(),
        }
    }

    /// Backward through one step. `dh`/`dc` are the gradients flowing into
    /// this step's outputs; returns `(dx, dh_prev, dc_prev)` and
    /// accumulates weight gradients.
    pub fn backward_step(
        &mut self,
        s: &LstmStep,
        dh: &[f64],
        dc_in: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hidden = self.hidden;
        let mut dz = vec![0.0; 4 * hidden];
        let mut dc_prev = vec![0.0; hidden];
        for j in 0..hidden {
            let tanh_c = s.c[j].tanh();
            let dc = dc_in[j] + dh[j] * s.o[j] * (1.0 - tanh_c * tanh_c);
            let do_ = dh[j] * tanh_c;
            // Gate pre-activation gradients.
            dz[3 * hidden + j] = do_ * s.o[j] * (1.0 - s.o[j]);
            dz[j] = dc * s.g[j] * s.i[j] * (1.0 - s.i[j]);
            dz[hidden + j] = dc * s.c_prev[j] * s.f[j] * (1.0 - s.f[j]);
            dz[2 * hidden + j] = dc * s.i[j] * (1.0 - s.g[j] * s.g[j]);
            dc_prev[j] = dc * s.f[j];
        }
        // Accumulate weight gradients: dWx += dz xᵀ, dWh += dz h_prevᵀ.
        for r in 0..4 * hidden {
            let gz = dz[r];
            if gz == 0.0 {
                continue;
            }
            for (gw, &xv) in self.wx.grad.row_mut(r).iter_mut().zip(&s.x) {
                *gw += gz * xv;
            }
            for (gw, &hv) in self.wh.grad.row_mut(r).iter_mut().zip(&s.h_prev) {
                *gw += gz * hv;
            }
            self.b.grad.as_mut_slice()[r] += gz;
        }
        let dx = self.wx.value.tr_matvec(&dz);
        let dh_prev = self.wh.value.tr_matvec(&dz);
        (dx, dh_prev, dc_prev)
    }

    pub fn zero_grad(&mut self) {
        self.wx.zero_grad();
        self.wh.zero_grad();
        self.b.zero_grad();
    }

    pub fn adam_step(&mut self, lr: f64, t: usize) {
        self.wx.adam_step(lr, t);
        self.wh.adam_step(lr, t);
        self.b.adam_step(lr, t);
    }

    pub fn num_parameters(&self) -> usize {
        4 * self.hidden * (self.input + self.hidden + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_forward_known_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w.value = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        d.b.value = Matrix::from_rows(&[vec![0.5], vec![-0.5]]);
        assert_eq!(d.forward(&[1.0, 1.0]), vec![3.5, 6.5]);
    }

    /// Finite-difference check of the dense layer's gradients.
    #[test]
    fn dense_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = vec![0.5, -1.0, 2.0];
        let target = vec![1.0, -1.0];
        let loss = |d: &Dense, x: &[f64]| {
            let y = d.forward(x);
            y.iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum::<f64>()
        };
        // Analytic gradient.
        let y = d.forward(&x);
        let dy: Vec<f64> = y.iter().zip(&target).map(|(a, b)| a - b).collect();
        d.zero_grad();
        let dx = d.backward(&x, &dy);
        // Finite difference on one weight and one input.
        let eps = 1e-6;
        let mut d2 = d.clone();
        d2.w.value[(1, 2)] += eps;
        let fd_w = (loss(&d2, &x) - loss(&d, &x)) / eps;
        assert!((fd_w - d.w.grad[(1, 2)]).abs() < 1e-4, "{fd_w} vs {}", d.w.grad[(1, 2)]);
        let mut x2 = x.clone();
        x2[0] += eps;
        let fd_x = (loss(&d, &x2) - loss(&d, &x)) / eps;
        assert!((fd_x - dx[0]).abs() < 1e-4);
    }

    /// Full BPTT finite-difference check over a 3-step sequence.
    #[test]
    fn lstm_gradients_match_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = LstmLayer::new(2, 3, &mut rng);
        let xs = [vec![0.3, -0.7], vec![1.1, 0.2], vec![-0.5, 0.9]];
        let target = vec![0.5, -0.2, 0.8];

        // Loss: 0.5‖h_T − target‖² after running the sequence.
        let run = |layer: &LstmLayer| {
            let mut h = vec![0.0; 3];
            let mut c = vec![0.0; 3];
            let mut steps = Vec::new();
            for x in &xs {
                let s = layer.step(x, &h, &c);
                h = s.h.clone();
                c = s.c.clone();
                steps.push(s);
            }
            let loss: f64 =
                h.iter().zip(&target).map(|(a, b)| 0.5 * (a - b) * (a - b)).sum();
            (loss, steps, h)
        };

        let (_, steps, h_t) = run(&layer);
        layer.zero_grad();
        let mut dh: Vec<f64> = h_t.iter().zip(&target).map(|(a, b)| a - b).collect();
        let mut dc = vec![0.0; 3];
        for s in steps.iter().rev() {
            let (_dx, dh_prev, dc_prev) = layer.backward_step(s, &dh, &dc);
            dh = dh_prev;
            dc = dc_prev;
        }

        // Check several weights across all three parameter tensors.
        let eps = 1e-6;
        let checks: Vec<(&str, usize, usize)> =
            vec![("wx", 0, 1), ("wx", 7, 0), ("wh", 3, 2), ("wh", 11, 0)];
        for (which, r, c) in checks {
            let mut pert = layer.clone();
            let (base, _, _) = run(&layer);
            let (grad, val) = match which {
                "wx" => {
                    pert.wx.value[(r, c)] += eps;
                    (layer.wx.grad[(r, c)], {
                        let (l, _, _) = run(&pert);
                        (l - base) / eps
                    })
                }
                _ => {
                    pert.wh.value[(r, c)] += eps;
                    (layer.wh.grad[(r, c)], {
                        let (l, _, _) = run(&pert);
                        (l - base) / eps
                    })
                }
            };
            assert!(
                (grad - val).abs() < 1e-4,
                "{which}[{r},{c}]: analytic {grad} vs fd {val}"
            );
        }
    }

    #[test]
    fn adam_reduces_simple_quadratic() {
        // Minimize (w − 3)² with Adam: w must approach 3.
        let mut p = Param::new(Matrix::zeros(1, 1));
        for t in 1..=2000 {
            let w = p.value[(0, 0)];
            p.grad[(0, 0)] = 2.0 * (w - 3.0);
            p.adam_step(0.05, t);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 0.05, "{}", p.value[(0, 0)]);
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut a = Param::new(Matrix::zeros(2, 2));
        a.grad = Matrix::from_rows(&[vec![30.0, 0.0], vec![0.0, 40.0]]);
        Param::clip_global_norm(&mut [&mut a], 5.0);
        let norm: f64 =
            a.grad.as_slice().iter().map(|g| g * g).sum::<f64>().sqrt();
        assert!((norm - 5.0).abs() < 1e-9);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::seed_from_u64(4);
        let layer = LstmLayer::new(3, 4, &mut rng);
        for j in 4..8 {
            assert_eq!(layer.b.value.as_slice()[j], 1.0);
        }
        assert_eq!(layer.b.value.as_slice()[0], 0.0);
    }
}
