//! Model serialization.
//!
//! Table 4 accounts for each model's storage footprint: "LR Model: ... the
//! size of the learned weights. RNN Model: ... the size of the serialized
//! model object ..., which contains both the model parameters and network
//! structure." This module provides that serialization as a small
//! self-describing binary format (magic, version, shape header, little-
//! endian `f64` payload) — no external serialization crates needed.

use crate::dataset::WindowSpec;

/// Serialization format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Magic or version mismatch, or truncated input.
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Malformed(m) => write!(f, "malformed model bytes: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Little-endian byte sink.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new(magic: &[u8; 4], version: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&version.to_le_bytes());
        Self { buf }
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }

    pub fn spec(&mut self, s: WindowSpec) {
        self.u64(s.window as u64);
        self.u64(s.horizon as u64);
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte source with bounds checking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8], magic: &[u8; 4], version: u16) -> Result<Self, PersistError> {
        let mut r = Self { buf, pos: 0 };
        let got = r.take(4)?;
        if got != magic {
            return Err(PersistError::Malformed(format!(
                "bad magic {:?} (expected {:?})",
                got, magic
            )));
        }
        let v = u16::from_le_bytes(
            r.take(2)?.try_into().expect("take(2) returns 2 bytes"),
        );
        if v != version {
            return Err(PersistError::Malformed(format!(
                "version {v} unsupported (expected {version})"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Malformed(format!(
                "truncated: need {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn usize(&mut self) -> Result<usize, PersistError> {
        Ok(self.u64()? as usize)
    }

    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.usize()?;
        // Guard against absurd lengths from corrupt headers.
        if n > self.buf.len() / 8 + 1 {
            return Err(PersistError::Malformed(format!("implausible vector length {n}")));
        }
        (0..n).map(|_| self.f64()).collect()
    }

    pub fn spec(&mut self) -> Result<WindowSpec, PersistError> {
        Ok(WindowSpec { window: self.usize()?, horizon: self.usize()? })
    }

    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new(b"TEST", 3);
        w.u64(42);
        w.f64(1.5);
        w.f64s(&[1.0, 2.0, 3.0]);
        w.spec(WindowSpec { window: 24, horizon: 7 });
        let bytes = w.finish();

        let mut r = Reader::new(&bytes, b"TEST", 3).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.f64s().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.spec().unwrap(), WindowSpec { window: 24, horizon: 7 });
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let w = Writer::new(b"AAAA", 1);
        let bytes = w.finish();
        assert!(Reader::new(&bytes, b"BBBB", 1).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let w = Writer::new(b"TEST", 1);
        let bytes = w.finish();
        assert!(Reader::new(&bytes, b"TEST", 2).is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new(b"TEST", 1);
        w.f64s(&[1.0, 2.0]);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 4);
        let mut r = Reader::new(&bytes, b"TEST", 1).unwrap();
        assert!(r.f64s().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new(b"TEST", 1);
        w.u64(1);
        let mut bytes = w.finish();
        bytes.push(0);
        let mut r = Reader::new(&bytes, b"TEST", 1).unwrap();
        let _ = r.u64().unwrap();
        assert!(r.expect_end().is_err());
    }
}
