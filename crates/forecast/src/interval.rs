//! Automatic prediction-interval selection.
//!
//! §7.4 measures the accuracy/cost trade-off of the prediction interval and
//! concludes: "One must consider these trade-offs when setting the
//! interval ... Automatically determining the interval is beyond the scope
//! of this paper and we leave it as future work." This module implements
//! that future work: given the per-minute history, it evaluates candidate
//! intervals with a held-out validation split and picks the finest interval
//! whose training cost fits a caller-supplied budget — the same rule a
//! planning module would apply (§7.4: finer is more accurate but more
//! expensive).

use std::time::{Duration, Instant};

use crate::dataset::{ForecastError, WindowSpec};
use crate::lr::LinearRegression;
use crate::Forecaster;

/// One evaluated candidate interval.
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Interval width in minutes.
    pub minutes: i64,
    /// Validation MSE in log space (per-hour totals, the §7.4 protocol).
    pub validation_mse: f64,
    /// Wall-clock cost of fitting the probe model at this interval.
    pub train_time: Duration,
    /// Whether the candidate fit inside the training budget.
    pub within_budget: bool,
}

/// The outcome of a selection run.
#[derive(Debug, Clone)]
pub struct IntervalSelection {
    /// The chosen interval, in minutes.
    pub chosen_minutes: i64,
    /// Every candidate's report, finest first.
    pub reports: Vec<IntervalReport>,
}

/// Aggregates per-minute series into `k`-minute buckets (summing counts).
/// A partial trailing chunk is dropped: it would undercount the final
/// bucket and bias the validation window.
fn aggregate(series: &[f64], k: usize) -> Vec<f64> {
    series.chunks_exact(k).map(|c| c.iter().sum()).collect()
}

/// Selects a prediction interval for the given per-minute cluster series.
///
/// * `minute_series` — cluster-major per-minute history;
/// * `horizon_minutes` — the horizon the final model will serve;
/// * `candidates` — interval widths to consider, in minutes;
/// * `budget` — maximum acceptable probe-training time. The probe is the
///   closed-form LR model: its cost scales with the same example count and
///   input width that dominate every other model's cost, so it ranks
///   intervals correctly at a fraction of the price.
///
/// Returns the candidate with the lowest validation MSE among those within
/// budget; if none fit, the cheapest candidate.
pub fn select_interval(
    minute_series: &[Vec<f64>],
    horizon_minutes: usize,
    candidates: &[i64],
    budget: Duration,
) -> Result<IntervalSelection, ForecastError> {
    if minute_series.is_empty() {
        return Err(ForecastError::MalformedSeries("no cluster series".into()));
    }
    assert!(!candidates.is_empty(), "select_interval: no candidate intervals");
    let mut reports = Vec::with_capacity(candidates.len());

    for &k in candidates {
        assert!(k > 0, "interval must be positive");
        let k_us = k as usize;
        // An interval coarser than the horizon cannot express the requested
        // prediction; mark it unusable rather than silently evaluating a
        // longer effective horizon.
        if k_us > horizon_minutes.max(1) {
            reports.push(IntervalReport {
                minutes: k,
                validation_mse: f64::INFINITY,
                train_time: Duration::ZERO,
                within_budget: false,
            });
            continue;
        }
        let series: Vec<Vec<f64>> =
            minute_series.iter().map(|s| aggregate(s, k_us)).collect();
        let len = series[0].len();
        // Window = one day; horizon converted to steps (≥ 1).
        let window = (24 * 60 / k_us).max(2);
        let horizon = (horizon_minutes / k_us).max(1);
        let spec = WindowSpec { window, horizon };
        let min_len = spec.min_len() + 8;
        if len < min_len {
            reports.push(IntervalReport {
                minutes: k,
                validation_mse: f64::INFINITY,
                train_time: Duration::ZERO,
                within_budget: false,
            });
            continue;
        }
        let test_start = (len - len / 5).max(spec.min_len() + 1);

        let t0 = Instant::now();
        let mut probe = LinearRegression::default();
        let train: Vec<Vec<f64>> = series.iter().map(|s| s[..test_start].to_vec()).collect();
        probe.fit(&train, spec)?;
        let train_time = t0.elapsed();

        let (actual, predicted) = crate::rolling_forecast(&probe, &series, spec, test_start);
        // Normalize to per-hour totals before scoring (§7.4's protocol:
        // "we compute the total prediction for each hour ... by summing
        // the predictions across the intervals within that hour"), so MSEs
        // at different bucket widths are comparable.
        let buckets_per_hour = (60 / k_us).max(1);
        let to_hourly = |xs: &[f64]| -> Vec<f64> {
            if k_us >= 60 {
                // Coarser than an hour: split the bucket evenly (§7.4:
                // "dividing the interval that contains that hour into two").
                let parts = k_us / 60;
                xs.iter().flat_map(|&v| std::iter::repeat_n(v / parts as f64, parts)).collect()
            } else {
                xs.chunks_exact(buckets_per_hour).map(|c| c.iter().sum()).collect()
            }
        };
        let per: Vec<f64> = actual
            .iter()
            .zip(&predicted)
            .filter(|(a, _)| !a.is_empty())
            .map(|(a, p)| {
                let (ah, ph) = (to_hourly(a), to_hourly(p));
                if ah.is_empty() {
                    f64::NAN
                } else {
                    qb_timeseries::mse_log_space(&ah, &ph)
                }
            })
            .filter(|m| m.is_finite())
            .collect();
        let validation_mse = if per.is_empty() {
            f64::INFINITY
        } else {
            per.iter().sum::<f64>() / per.len() as f64
        };

        reports.push(IntervalReport {
            minutes: k,
            validation_mse,
            train_time,
            within_budget: train_time <= budget,
        });
    }

    let usable = |r: &&IntervalReport| r.validation_mse.is_finite();
    let chosen = reports
        .iter()
        .filter(|r| r.within_budget)
        .filter(usable)
        .min_by(|a, b| a.validation_mse.total_cmp(&b.validation_mse))
        // Over budget everywhere: fall back to the cheapest interval that
        // was actually evaluable (never a skipped/unusable candidate).
        .or_else(|| reports.iter().filter(usable).min_by_key(|r| r.train_time));
    let Some(chosen) = chosen else {
        return Err(ForecastError::NotEnoughData {
            needed: 24 * 60,
            got: minute_series[0].len(),
        });
    };
    Ok(IntervalSelection { chosen_minutes: chosen.minutes, reports })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10 days of per-minute data with a strong daily cycle.
    fn cyclic_minutes() -> Vec<Vec<f64>> {
        vec![(0..10 * 1440)
            .map(|t| {
                let h = (t / 60) % 24;
                if (7..22).contains(&h) {
                    8.0
                } else {
                    1.0
                }
            })
            .collect()]
    }

    #[test]
    fn picks_a_candidate_and_reports_all() {
        let sel = select_interval(
            &cyclic_minutes(),
            60,
            &[10, 30, 60, 120],
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(sel.reports.len(), 4);
        // 120-minute buckets cannot express a 60-minute horizon: excluded.
        assert!([10, 30, 60].contains(&sel.chosen_minutes));
        for r in &sel.reports {
            if r.minutes <= 60 {
                assert!(r.validation_mse.is_finite(), "{r:?}");
            } else {
                assert!(!r.within_budget, "coarser-than-horizon must be unusable: {r:?}");
            }
        }
    }

    #[test]
    fn tight_budget_forces_coarser_interval() {
        let series = cyclic_minutes();
        // Horizon of 2h so both candidates can express it.
        let generous =
            select_interval(&series, 120, &[10, 120], Duration::from_secs(60)).unwrap();
        // A budget of zero excludes everything; the fallback is the
        // cheapest usable probe, which is the coarsest interval.
        let strict = select_interval(&series, 120, &[10, 120], Duration::ZERO).unwrap();
        assert_eq!(strict.chosen_minutes, 120);
        // With time to spare, the finer (more accurate) interval can win.
        let fine = generous.reports.iter().find(|r| r.minutes == 10).unwrap();
        let coarse = generous.reports.iter().find(|r| r.minutes == 120).unwrap();
        assert!(fine.train_time >= coarse.train_time);
    }

    #[test]
    fn coarser_than_horizon_never_chosen_via_fallback() {
        // Even with zero budget, the fallback must not pick the unusable
        // 120-minute candidate for a 60-minute horizon.
        let strict =
            select_interval(&cyclic_minutes(), 60, &[10, 120], Duration::ZERO).unwrap();
        assert_eq!(strict.chosen_minutes, 10);
    }

    #[test]
    fn short_history_marks_candidate_unusable() {
        // Two days of data cannot support a 120-minute interval with a
        // one-day window plus slack.
        let series = vec![vec![5.0; 2 * 1440]];
        let sel =
            select_interval(&series, 60, &[60, 2880], Duration::from_secs(30)).unwrap();
        let too_coarse = sel.reports.iter().find(|r| r.minutes == 2880).unwrap();
        assert!(!too_coarse.within_budget);
        assert_eq!(sel.chosen_minutes, 60);
    }

    #[test]
    fn empty_series_errors() {
        assert!(matches!(
            select_interval(&[], 60, &[60], Duration::from_secs(1)),
            Err(ForecastError::MalformedSeries(_))
        ));
    }
}
